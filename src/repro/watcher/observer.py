"""Directory observers: the cross-platform watcher application.

The paper's trigger is "a cross-compatible Python application for
Windows 10, macOS, and Linux that uses the watchdog package to start a
new flow when files are created on the user machine".  Two observers
share one handler interface:

* :class:`PollingObserver` — watches a **real** directory by scanning it
  (the portable fallback watchdog itself uses); drive it with
  :meth:`PollingObserver.poll_once` or :meth:`PollingObserver.run_for`.
* :class:`SimObserver` — watches a :class:`~repro.storage.VirtualFS`
  inside the simulation, receiving creation events in event order.

Handlers are callables ``(FileCreatedEvent) -> None``; filtering by
suffix keeps temporary files from triggering flows.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from ..errors import WatcherError
from ..storage import VirtualFS, VirtualFile
from .events import FileCreatedEvent

__all__ = ["PollingObserver", "SimObserver"]

Handler = Callable[[FileCreatedEvent], None]


class PollingObserver:
    """Scan-based watcher over a real directory tree.

    ``clock`` and ``sleep`` are injectable so :meth:`run_for` is testable
    without wall-clock waits: pass a fake pair advancing virtual time and
    the poll loop runs instantly and deterministically.  The defaults are
    the real ``time.monotonic``/``time.sleep`` (references only — this
    module never calls the wall clock outside the injected pair).
    """

    def __init__(
        self,
        root: "str | os.PathLike",
        suffixes: tuple[str, ...] = (".emd",),
        recursive: bool = True,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.root = os.fspath(root)
        if not os.path.isdir(self.root):
            raise WatcherError(f"watched root is not a directory: {self.root}")
        self.suffixes = suffixes
        self.recursive = recursive
        self._clock = clock
        self._sleep = sleep
        self._handlers: list[Handler] = []
        self._known: set[str] = set(self._scan())

    def add_handler(self, handler: Handler) -> None:
        self._handlers.append(handler)

    def _scan(self) -> list[str]:
        if not os.path.isdir(self.root):
            raise WatcherError(f"watched root disappeared: {self.root}")
        out = []
        if self.recursive:
            for dirpath, _dirnames, filenames in os.walk(self.root):
                for name in filenames:
                    out.append(os.path.join(dirpath, name))
        else:
            with os.scandir(self.root) as it:
                out = [e.path for e in it if e.is_file()]
        return [p for p in out if p.endswith(self.suffixes)] if self.suffixes else out

    def poll_once(self) -> list[FileCreatedEvent]:
        """Scan once; dispatch and return events for files new since the
        previous scan."""
        current = set(self._scan())
        created = sorted(current - self._known)
        self._known = current
        events = []
        for path in created:
            try:
                st = os.stat(path)
            except OSError:
                continue  # vanished between scan and stat
            ev = FileCreatedEvent(path=path, size_bytes=st.st_size, mtime=st.st_mtime)
            events.append(ev)
            for h in list(self._handlers):
                h(ev)
        return events

    def run_for(self, duration_s: float, interval_s: float = 0.2) -> int:
        """Blocking poll loop for ``duration_s`` clock seconds; returns
        the number of events dispatched.  Uses the injected
        ``clock``/``sleep`` pair, so with the defaults this blocks for
        real wall time (examples/demos) and with fakes it runs instantly
        (tests); simulations use :class:`SimObserver` instead."""
        if interval_s <= 0:
            raise WatcherError("interval must be positive")
        deadline = self._clock() + duration_s
        n = 0
        while self._clock() < deadline:
            n += len(self.poll_once())
            # Clamp the trailing sleep to the remaining budget so the
            # loop never overshoots ``duration_s`` by a full interval.
            remaining = deadline - self._clock()
            if remaining <= 0:
                break
            self._sleep(min(interval_s, remaining))
        return n


class SimObserver:
    """Creation-event watcher over a virtual filesystem."""

    def __init__(
        self,
        vfs: VirtualFS,
        prefix: str = "/",
        suffixes: tuple[str, ...] = (".emd",),
    ) -> None:
        self.vfs = vfs
        self.prefix = "/" + prefix.strip("/")
        self.suffixes = suffixes
        self._handlers: list[Handler] = []
        self._unsubscribe: Optional[Callable[[], None]] = vfs.subscribe(self._on_create)
        self.events_seen = 0

    def add_handler(self, handler: Handler) -> None:
        self._handlers.append(handler)

    def _matches(self, path: str) -> bool:
        """Prefix/suffix filter shared by live events and crash-replay.

        The root prefix (``"/"``) accepts every path, agreeing with
        ``VirtualFS.listdir`` rather than testing against ``"//"``.
        """
        if self.prefix != "/" and not path.startswith(self.prefix + "/"):
            return False
        if self.suffixes and not path.endswith(self.suffixes):
            return False
        return True

    def _on_create(self, f: VirtualFile) -> None:
        if not self._matches(f.path):
            return
        self.events_seen += 1
        ev = FileCreatedEvent(
            path=f.path, size_bytes=f.size_bytes, mtime=f.created_at, virtual=f
        )
        for h in list(self._handlers):
            h(ev)

    @property
    def running(self) -> bool:
        """True while subscribed to filesystem creation events."""
        return self._unsubscribe is not None

    def stop(self) -> None:
        """Detach from the filesystem (a crashed watcher process).

        Files created while stopped are missed until :meth:`restart`
        replays the directory listing."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def restart(self, replay: bool = True) -> int:
        """Re-attach after :meth:`stop`, recovering missed files.

        With ``replay=True`` (the crash-recovery protocol) every file
        currently under the watched prefix is pushed back through the
        handlers, exactly like the watcher app's startup scan; handlers
        dedup via their checkpoint store, so already-dispatched files are
        skipped rather than double-triggered.  Returns the number of
        files actually dispatched to handlers (listdir entries rejected
        by the prefix/suffix filter are not counted).  Restarting a
        running observer is an error — it would double-subscribe and
        dispatch every event twice.
        """
        if self._unsubscribe is not None:
            raise WatcherError("observer is already running")
        self._unsubscribe = self.vfs.subscribe(self._on_create)
        if not replay:
            return 0
        before = self.events_seen
        for f in self.vfs.listdir(self.prefix):
            self._on_create(f)
        return self.events_seen - before
