"""Flow-trigger checkpointing.

The paper: "We also provide an automatic checkpointing mechanism to
avoid undesired flow repeats in cases where a user needs to resume
experimentation after interruption, e.g., if the user computer needs to
be rebooted or the user resumes a set of experiments on a subsequent
day."

:class:`CheckpointStore` records which files have already triggered a
flow, keyed by path + checksum (so a *re-acquired* file with new content
does trigger again).  With a ``path`` it persists as JSON and survives
restarts; without one it is in-memory (simulation use).

A corrupt or malformed store never aborts the restart: the bad file is
quarantined next to itself (renamed to ``<path>.corrupt``), the watcher
continues with an empty store, and a warning metric is emitted.  The
cost is bounded — at worst already-processed files trigger once more,
and downstream dedup absorbs that — whereas refusing to start would
stall the whole instrument after a crash.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional

from ..errors import CheckpointError
from ..obs.metrics import NULL_METRICS

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Persistent (or in-memory) set of already-processed files."""

    def __init__(
        self,
        path: "str | os.PathLike | None" = None,
        metrics: Any = None,
    ) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._metrics = metrics if metrics is not None else NULL_METRICS
        #: Where a corrupt store was moved on load, if that happened.
        self.quarantined_path: Optional[str] = None
        self.quarantine_reason: Optional[str] = None
        self._seen: dict[str, str] = {}  # file path -> checksum
        if self.path is not None and os.path.exists(self.path):
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except json.JSONDecodeError as exc:
            self._quarantine(f"corrupt checkpoint file {self.path}: {exc}")
            return
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {self.path}: {exc}") from exc
        if not isinstance(doc, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in doc.items()
        ):
            self._quarantine(f"malformed checkpoint file {self.path}")
            return
        self._seen = doc

    def _quarantine(self, reason: str) -> None:
        """Move the unreadable store aside and continue empty."""
        assert self.path is not None
        quarantined = f"{self.path}.corrupt"
        try:
            os.replace(self.path, quarantined)
        except OSError:
            # Can't even move it aside; keep going with the empty store —
            # the next flush overwrites the bad file atomically.
            quarantined = None
        self.quarantined_path = quarantined
        self.quarantine_reason = reason
        self._seen = {}
        self._metrics.counter("watcher.checkpoint_quarantined").inc()

    def _flush(self) -> None:
        if self.path is None:
            return
        # Atomic replace so a crash mid-write never corrupts the store.
        d = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp = tempfile.mkstemp(dir=d, prefix=".ckpt-")
        fd_owned = True
        try:
            fh = os.fdopen(fd, "w", encoding="utf-8")
            fd_owned = False  # fh now owns (and always closes) the fd
            with fh:
                json.dump(self._seen, fh)
            os.replace(tmp, self.path)
        except BaseException as exc:
            # Any failure — not just OSError: a TypeError/ValueError from
            # json.dump used to leak the temp file (and, pre-fdopen, the
            # fd).  Clean up unconditionally, then surface the error.
            if fd_owned:
                try:
                    os.close(fd)
                except OSError:
                    pass
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if isinstance(exc, Exception):
                raise CheckpointError(
                    f"cannot write checkpoint {self.path}: {exc}"
                ) from exc
            raise

    # -- API ---------------------------------------------------------------
    def is_processed(self, path: str, checksum: str) -> bool:
        """Has this exact content at this path already triggered a flow?"""
        return self._seen.get(path) == checksum

    def mark_processed(self, path: str, checksum: str) -> None:
        """Record (and persist) that ``path``/``checksum`` was handled."""
        self._seen[path] = checksum
        self._flush()

    def forget(self, path: str) -> None:
        """Drop a record (e.g. to force reprocessing)."""
        self._seen.pop(path, None)
        self._flush()

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, path: str) -> bool:
        return path in self._seen
