"""Flow-trigger checkpointing.

The paper: "We also provide an automatic checkpointing mechanism to
avoid undesired flow repeats in cases where a user needs to resume
experimentation after interruption, e.g., if the user computer needs to
be rebooted or the user resumes a set of experiments on a subsequent
day."

:class:`CheckpointStore` records which files have already triggered a
flow, keyed by path + checksum (so a *re-acquired* file with new content
does trigger again).  With a ``path`` it persists as JSON and survives
restarts; without one it is in-memory (simulation use).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from ..errors import CheckpointError

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Persistent (or in-memory) set of already-processed files."""

    def __init__(self, path: "str | os.PathLike | None" = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._seen: dict[str, str] = {}  # file path -> checksum
        if self.path is not None and os.path.exists(self.path):
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"corrupt checkpoint file {self.path}: {exc}") from exc
        if not isinstance(doc, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in doc.items()
        ):
            raise CheckpointError(f"malformed checkpoint file {self.path}")
        self._seen = doc

    def _flush(self) -> None:
        if self.path is None:
            return
        # Atomic replace so a crash mid-write never corrupts the store.
        d = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp = tempfile.mkstemp(dir=d, prefix=".ckpt-")
        fd_owned = True
        try:
            fh = os.fdopen(fd, "w", encoding="utf-8")
            fd_owned = False  # fh now owns (and always closes) the fd
            with fh:
                json.dump(self._seen, fh)
            os.replace(tmp, self.path)
        except BaseException as exc:
            # Any failure — not just OSError: a TypeError/ValueError from
            # json.dump used to leak the temp file (and, pre-fdopen, the
            # fd).  Clean up unconditionally, then surface the error.
            if fd_owned:
                try:
                    os.close(fd)
                except OSError:
                    pass
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if isinstance(exc, Exception):
                raise CheckpointError(
                    f"cannot write checkpoint {self.path}: {exc}"
                ) from exc
            raise

    # -- API ---------------------------------------------------------------
    def is_processed(self, path: str, checksum: str) -> bool:
        """Has this exact content at this path already triggered a flow?"""
        return self._seen.get(path) == checksum

    def mark_processed(self, path: str, checksum: str) -> None:
        """Record (and persist) that ``path``/``checksum`` was handled."""
        self._seen[path] = checksum
        self._flush()

    def forget(self, path: str) -> None:
        """Drop a record (e.g. to force reprocessing)."""
        self._seen.pop(path, None)
        self._flush()

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, path: str) -> bool:
        return path in self._seen
