"""Directory-watching substrate (watchdog stand-in): observers over real
and virtual filesystems plus the flow-repeat checkpoint store."""

from .checkpoint import CheckpointStore
from .events import FileCreatedEvent
from .observer import PollingObserver, SimObserver

__all__ = ["FileCreatedEvent", "PollingObserver", "SimObserver", "CheckpointStore"]
