"""File-event types dispatched by the observers (watchdog stand-in)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..storage import VirtualFile

__all__ = ["FileCreatedEvent"]


@dataclass(frozen=True)
class FileCreatedEvent:
    """A new file appeared under a watched root.

    ``virtual`` is set when the event came from a simulated filesystem;
    real-filesystem events carry only path/size/mtime.
    """

    path: str
    size_bytes: float
    mtime: float
    virtual: Optional[VirtualFile] = None

    @property
    def is_emd(self) -> bool:
        return self.path.endswith(".emd") or (
            self.virtual is not None and self.virtual.kind == "emd"
        )
