"""h5lite — a from-scratch hierarchical scientific container format.

The paper stores microscopy data in EMD, a subset of HDF5.  HDF5 itself is
unavailable here, so this module implements the features EMD actually
exercises, in a compact single-file binary format:

* a tree of **groups**, each carrying typed **attributes**;
* n-dimensional **datasets** (NumPy arrays) stored contiguously or in
  **chunks**, optionally zlib-compressed per block;
* **lazy partial reads**: opening a file reads only the footer; slicing a
  chunked dataset touches only the intersecting chunks (this matters for
  the spatiotemporal flow, which reads one 640×640 frame at a time out of
  a 600-frame cube);
* **zero-copy views**: files are memory-mapped when the platform allows,
  so :meth:`Dataset.view` can hand back hyperslabs that alias the page
  cache directly — no read, no decompress, no copy — whenever the
  selection lands in uncompressed contiguous storage or a single
  uncompressed chunk.  Everything else degrades to a minimal-copy
  gather over only the intersecting chunks.

On-disk layout::

    [ 8 B magic ][ payload blocks … ][ zlib(footer JSON) ]
    [ 8 B footer offset ][ 8 B footer length ][ 8 B tail magic ]

The footer is a JSON document describing the tree; every dataset
descriptor records the byte extent of each of its blocks, which is what
makes partial reads possible without a global index structure.
"""

from __future__ import annotations

import io
import itertools
import json
import math
import mmap
import os
import zlib
from typing import Any, Iterator, Optional, Sequence, Union

import numpy as np

from ..errors import FormatError

__all__ = ["H5LiteWriter", "H5LiteFile", "Dataset", "Group", "Attributes"]

MAGIC = b"H5LITE\x01\n"
TAIL_MAGIC = b"ETILH5\x01\n"
FORMAT_VERSION = 1

_SCALAR_TAGS = {"i": int, "f": float, "s": str, "b": bool, "n": type(None)}


def _encode_attr(value: Any) -> dict:
    """Encode an attribute value with an explicit type tag so reads
    round-trip exactly (JSON alone would conflate ints/floats/arrays)."""
    if isinstance(value, bool):  # before int: bool is an int subclass
        return {"t": "b", "v": value}
    if isinstance(value, (int, np.integer)):
        return {"t": "i", "v": int(value)}
    if isinstance(value, (float, np.floating)):
        return {"t": "f", "v": float(value)}
    if isinstance(value, str):
        return {"t": "s", "v": value}
    if value is None:
        return {"t": "n", "v": None}
    if isinstance(value, (list, tuple, np.ndarray)):
        arr = np.asarray(value)
        if arr.dtype.kind in "iu":
            return {"t": "ai", "v": arr.ravel().tolist(), "shape": list(arr.shape)}
        if arr.dtype.kind == "f":
            return {"t": "af", "v": arr.ravel().tolist(), "shape": list(arr.shape)}
        if arr.dtype.kind in "US":
            return {"t": "as", "v": [str(x) for x in arr.ravel()], "shape": list(arr.shape)}
        raise FormatError(f"unsupported attribute array dtype: {arr.dtype}")
    raise FormatError(f"unsupported attribute type: {type(value).__name__}")


def _decode_attr(doc: dict) -> Any:
    tag = doc.get("t")
    if tag in _SCALAR_TAGS:
        return doc["v"]
    if tag == "ai":
        return np.asarray(doc["v"], dtype=np.int64).reshape(doc["shape"])
    if tag == "af":
        return np.asarray(doc["v"], dtype=np.float64).reshape(doc["shape"])
    if tag == "as":
        return np.asarray(doc["v"], dtype=object).reshape(doc["shape"])
    raise FormatError(f"unknown attribute tag: {tag!r}")


class Attributes:
    """Mutable, dict-like attribute set attached to a group or dataset."""

    def __init__(self, store: Optional[dict] = None) -> None:
        self._store: dict[str, dict] = store if store is not None else {}

    def __setitem__(self, key: str, value: Any) -> None:
        if not isinstance(key, str) or not key:
            raise FormatError(f"attribute name must be a non-empty str, got {key!r}")
        self._store[key] = _encode_attr(value)

    def __getitem__(self, key: str) -> Any:
        try:
            return _decode_attr(self._store[key])
        except KeyError:
            raise KeyError(key) from None

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def __delitem__(self, key: str) -> None:
        del self._store[key]

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[str]:
        return iter(self._store)

    def keys(self):
        return self._store.keys()

    def items(self) -> Iterator[tuple[str, Any]]:
        for k in self._store:
            yield k, self[k]

    def get(self, key: str, default: Any = None) -> Any:
        return self[key] if key in self else default

    def to_dict(self) -> dict[str, Any]:
        """Plain-Python snapshot (arrays become lists)."""
        out: dict[str, Any] = {}
        for k, v in self.items():
            out[k] = v.tolist() if isinstance(v, np.ndarray) else v
        return out


def _split_path(path: str) -> list[str]:
    parts = [p for p in path.strip("/").split("/") if p]
    for p in parts:
        if p in (".", ".."):
            raise FormatError(f"illegal path component {p!r} in {path!r}")
    return parts


def _chunk_grid(shape: Sequence[int], chunks: Sequence[int]) -> tuple[int, ...]:
    return tuple(math.ceil(s / c) for s, c in zip(shape, chunks))


class _Node:
    """Internal tree node shared by writer and reader."""

    def __init__(self) -> None:
        self.attrs_doc: dict[str, dict] = {}
        self.groups: dict[str, _Node] = {}
        self.datasets: dict[str, dict] = {}

    def to_doc(self) -> dict:
        return {
            "attrs": self.attrs_doc,
            "groups": {k: v.to_doc() for k, v in self.groups.items()},
            "datasets": self.datasets,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "_Node":
        node = cls()
        node.attrs_doc = doc.get("attrs", {})
        node.datasets = doc.get("datasets", {})
        for name, sub in doc.get("groups", {}).items():
            node.groups[name] = cls.from_doc(sub)
        return node


class H5LiteWriter:
    """Streaming writer.  Dataset payloads go to disk as soon as
    :meth:`create_dataset` is called; the footer is written on close.

    Use as a context manager::

        with H5LiteWriter(path) as w:
            g = w.require_group("/data/movie")
            g.attrs["emd_group_type"] = 1
            w.create_dataset("/data/movie/cube", data=arr,
                             chunks=(1, 640, 640), compression="zlib")
    """

    def __init__(self, path: "str | os.PathLike") -> None:
        self.path = os.fspath(path)
        self._fh: Optional[io.BufferedWriter] = open(self.path, "wb")
        self._fh.write(MAGIC)
        self._offset = len(MAGIC)
        self._root = _Node()
        self._closed = False

    # -- tree -------------------------------------------------------------
    def require_group(self, path: str) -> "WriterGroup":
        """Create intermediate groups as needed and return a handle."""
        self._check_open()
        node = self._root
        for part in _split_path(path):
            if part in node.datasets:
                raise FormatError(f"{path!r}: {part!r} is a dataset, not a group")
            node = node.groups.setdefault(part, _Node())
        return WriterGroup(self, node, path)

    def create_dataset(
        self,
        path: str,
        data: np.ndarray,
        chunks: Optional[Sequence[int]] = None,
        compression: Optional[str] = None,
    ) -> None:
        """Write an array under ``path``.

        ``chunks`` enables chunked layout (required for partial reads);
        ``compression`` may be ``"zlib"`` or ``None``.
        """
        self._check_open()
        data = np.asarray(data)
        if data.ndim and not data.flags.c_contiguous:
            data = np.ascontiguousarray(data)
        if data.dtype.kind not in "iufb":
            raise FormatError(f"unsupported dataset dtype: {data.dtype}")
        if compression not in (None, "zlib"):
            raise FormatError(f"unsupported compression: {compression!r}")
        parts = _split_path(path)
        if not parts:
            raise FormatError("dataset path must not be the root")
        name = parts[-1]
        parent = self.require_group("/".join(parts[:-1]))._node if parts[:-1] else self._root
        if name in parent.datasets or name in parent.groups:
            raise FormatError(f"path already exists: {path!r}")

        if chunks is not None:
            chunks = tuple(int(c) for c in chunks)
            if len(chunks) != data.ndim or any(c < 1 for c in chunks):
                raise FormatError(
                    f"chunks {chunks} incompatible with shape {data.shape}"
                )
            blocks = self._write_chunked(data, chunks, compression)
            layout = "chunked"
        else:
            blocks = [self._write_block(data.tobytes(), compression)]
            layout = "contiguous"

        parent.datasets[name] = {
            "dtype": data.dtype.str,
            "shape": list(data.shape),
            "layout": layout,
            "chunks": list(chunks) if chunks is not None else None,
            "compression": compression if compression else None,
            "blocks": blocks,
        }

    def _write_chunked(
        self, data: np.ndarray, chunks: tuple[int, ...], compression: Optional[str]
    ) -> list:
        blocks = []
        grid = _chunk_grid(data.shape, chunks)
        for idx in np.ndindex(*grid):
            sel = tuple(
                slice(i * c, min((i + 1) * c, s))
                for i, c, s in zip(idx, chunks, data.shape)
            )
            chunk = np.ascontiguousarray(data[sel])
            blocks.append(self._write_block(chunk.tobytes(), compression))
        return blocks

    def _write_block(self, raw: bytes, compression: Optional[str]) -> list:
        payload = zlib.compress(raw, 4) if compression == "zlib" else raw
        assert self._fh is not None
        self._fh.write(payload)
        entry = [self._offset, len(payload), len(raw)]
        self._offset += len(payload)
        return entry

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Write the footer and finalize the file."""
        if self._closed:
            return
        assert self._fh is not None
        footer_doc = {"format_version": FORMAT_VERSION, "root": self._root.to_doc()}
        footer = zlib.compress(json.dumps(footer_doc).encode("utf-8"), 6)
        footer_offset = self._offset
        self._fh.write(footer)
        self._fh.write(footer_offset.to_bytes(8, "little"))
        self._fh.write(len(footer).to_bytes(8, "little"))
        self._fh.write(TAIL_MAGIC)
        self._fh.close()
        self._fh = None
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise FormatError("writer is closed")

    def __enter__(self) -> "H5LiteWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class WriterGroup:
    """Handle onto a group in an open writer (attribute access + nesting)."""

    def __init__(self, writer: H5LiteWriter, node: _Node, path: str) -> None:
        self._writer = writer
        self._node = node
        self._path = path.strip("/")

    @property
    def attrs(self) -> Attributes:
        return Attributes(self._node.attrs_doc)

    def require_group(self, relpath: str) -> "WriterGroup":
        full = f"{self._path}/{relpath}" if self._path else relpath
        return self._writer.require_group(full)

    def create_dataset(self, name: str, data: np.ndarray, **kw: Any) -> None:
        full = f"{self._path}/{name}" if self._path else name
        self._writer.create_dataset(full, data, **kw)


class Dataset:
    """Read-side dataset handle supporting lazy slicing.

    Basic indexing only (ints and slices), which covers how EMD data is
    consumed: whole-cube reads, per-frame reads, and axis subsets.
    """

    def __init__(self, file: "H5LiteFile", path: str, desc: dict) -> None:
        self._file = file
        self.path = path
        self.dtype = np.dtype(desc["dtype"])
        self.shape = tuple(desc["shape"])
        self.layout = desc["layout"]
        self.chunks = tuple(desc["chunks"]) if desc.get("chunks") else None
        self.compression = desc.get("compression")
        self._blocks = desc["blocks"]
        self._base: Optional[np.ndarray] = None  # zero-copy contiguous cache

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of a scalar dataset")
        return self.shape[0]

    # -- reading ------------------------------------------------------------
    def read(self) -> np.ndarray:
        """Materialize the full array."""
        return self[(slice(None),) * len(self.shape)] if self.shape else self._read_scalar()

    def _read_scalar(self) -> np.ndarray:
        raw = self._read_block(self._blocks[0])
        return np.frombuffer(raw, dtype=self.dtype)[0]

    def _read_block(self, entry: Sequence[int]) -> "bytes | memoryview":
        offset, nbytes, raw_nbytes = entry
        payload = self._file._pread(offset, nbytes)
        if self.compression == "zlib":
            raw: "bytes | memoryview" = zlib.decompress(payload)
        else:
            raw = payload
        if len(raw) != raw_nbytes:
            raise FormatError(
                f"{self.path}: block at {offset} decoded to {len(raw)} bytes, "
                f"expected {raw_nbytes}"
            )
        stats = self._file.read_stats
        stats["block_reads"] += 1
        stats["payload_bytes"] += nbytes
        stats["raw_bytes"] += raw_nbytes
        return raw

    def __getitem__(self, key: Any) -> np.ndarray:
        sel, squeeze = self._normalize_key(key)
        if self.layout == "contiguous":
            raw = self._read_block(self._blocks[0])
            arr = np.frombuffer(raw, dtype=self.dtype).reshape(self.shape)
            out = arr[sel].copy()
        else:
            out = self._read_chunked(sel)
        if squeeze:
            out = out.reshape(tuple(s for s, sq in zip(out.shape, squeeze) if not sq))
        return out

    def _normalize_key(self, key: Any) -> tuple[tuple[slice, ...], list[bool]]:
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) > len(self.shape):
            raise IndexError(
                f"too many indices for dataset of shape {self.shape}: {key!r}"
            )
        key = key + (slice(None),) * (len(self.shape) - len(key))
        sel: list[slice] = []
        squeeze: list[bool] = []
        for k, dim in zip(key, self.shape):
            if isinstance(k, (int, np.integer)):
                i = int(k)
                if i < 0:
                    i += dim
                if not 0 <= i < dim:
                    raise IndexError(f"index {k} out of range for axis of size {dim}")
                sel.append(slice(i, i + 1))
                squeeze.append(True)
            elif isinstance(k, slice):
                start, stop, step = k.indices(dim)
                if step != 1:
                    raise IndexError("h5lite datasets support step-1 slices only")
                sel.append(slice(start, max(start, stop)))
                squeeze.append(False)
            else:
                raise IndexError(f"unsupported index: {k!r}")
        return tuple(sel), squeeze

    def _read_chunked(self, sel: tuple[slice, ...]) -> np.ndarray:
        assert self.chunks is not None
        out_shape = tuple(s.stop - s.start for s in sel)
        out = np.empty(out_shape, dtype=self.dtype)
        if 0 in out_shape:
            return out
        grid = _chunk_grid(self.shape, self.chunks)
        # Chunk-index ranges intersecting the selection on each axis.
        lo = [s.start // c for s, c in zip(sel, self.chunks)]
        hi = [(s.stop - 1) // c for s, c in zip(sel, self.chunks)]
        strides = np.ones(len(grid), dtype=np.int64)
        for ax in range(len(grid) - 2, -1, -1):
            strides[ax] = strides[ax + 1] * grid[ax + 1]
        for idx in np.ndindex(*[h - l + 1 for l, h in zip(lo, hi)]):
            cidx = tuple(l + i for l, i in zip(lo, idx))
            flat = int(np.dot(np.asarray(cidx, dtype=np.int64), strides))
            chunk_extent = tuple(
                min((ci + 1) * c, s) - ci * c
                for ci, c, s in zip(cidx, self.chunks, self.shape)
            )
            raw = self._read_block(self._blocks[flat])
            chunk = np.frombuffer(raw, dtype=self.dtype).reshape(chunk_extent)
            # Overlap between this chunk and the selection, in both frames.
            src, dst = [], []
            for ax, (ci, c, s) in enumerate(zip(cidx, self.chunks, sel)):
                c0 = ci * c
                a = max(s.start, c0)
                b = min(s.stop, c0 + chunk_extent[ax])
                src.append(slice(a - c0, b - c0))
                dst.append(slice(a - s.start, b - s.start))
            out[tuple(dst)] = chunk[tuple(src)]
        return out

    # -- zero-copy views ------------------------------------------------------
    def view(self, key: Any = (slice(None),)) -> np.ndarray:
        """Slice-on-demand read materializing only the requested hyperslab.

        Unlike ``__getitem__`` (which pins the historical step-1 API),
        ``view`` accepts full basic indexing — ints, negative indices,
        and slices with any step, including negative.  Three tiers:

        * **contiguous + uncompressed + mmap** — the result is a NumPy
          view straight onto the memory-mapped file: zero bytes read or
          copied until the caller touches the data;
        * **single uncompressed chunk + mmap** — when every axis of the
          selection lands inside one chunk, the result aliases that
          chunk's pages the same way;
        * **anything else** — a minimal-copy gather that decodes only
          the chunks intersecting the selection (chunks the selection
          steps over entirely are never read).

        Zero-copy results are read-only (they alias the file); copy-path
        results are fresh writable arrays.  Negative steps are served by
        reading the equivalent ascending hyperslab and flipping, so the
        chunk I/O pattern is identical either way.
        """
        axes = self._normalize_view_key(key)
        if self.layout == "contiguous":
            base = self._contiguous_base()
            out = base[
                tuple(
                    a[1]
                    if a[0] == "int"
                    else slice(a[1], a[1] + a[2] * a[3], a[3])
                    for a in axes
                )
            ]
            return self._apply_flips(out, axes)
        return self._view_chunked(axes)

    def _normalize_view_key(self, key: Any) -> list[tuple]:
        """Each axis becomes ``("int", i)`` or an ascending
        ``("slice", start, n, step, flipped)`` with ``step >= 1``."""
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) > len(self.shape):
            raise IndexError(
                f"too many indices for dataset of shape {self.shape}: {key!r}"
            )
        key = key + (slice(None),) * (len(self.shape) - len(key))
        axes: list[tuple] = []
        for k, dim in zip(key, self.shape):
            if isinstance(k, (int, np.integer)):
                i = int(k)
                if i < 0:
                    i += dim
                if not 0 <= i < dim:
                    raise IndexError(f"index {k} out of range for axis of size {dim}")
                axes.append(("int", i))
            elif isinstance(k, slice):
                try:
                    start, stop, step = k.indices(dim)
                except (ValueError, TypeError) as exc:  # e.g. zero step
                    raise IndexError(str(exc)) from exc
                n = len(range(start, stop, step))
                flipped = step < 0
                if flipped:
                    # Same index set read ascending, flipped afterwards.
                    start = start + (n - 1) * step if n else 0
                    step = -step
                axes.append(("slice", start, n, step, flipped))
            else:
                raise IndexError(f"unsupported index: {k!r}")
        return axes

    @staticmethod
    def _apply_flips(out: np.ndarray, axes: Sequence[tuple]) -> np.ndarray:
        """Reverse the axes whose original slice had a negative step
        (int axes are already dropped from ``out``)."""
        flips = [a[4] for a in axes if a[0] == "slice"]
        if any(flips):
            out = out[tuple(slice(None, None, -1) if f else slice(None) for f in flips)]
        return out

    def _contiguous_base(self) -> np.ndarray:
        """Full contiguous array; a zero-copy alias of the mmap when the
        payload is uncompressed (cached — aliasing is free), otherwise a
        per-call decompression (never cached, to keep peak memory at
        the historical one-block transient)."""
        if self._base is not None:
            return self._base
        raw = self._read_block(self._blocks[0])
        arr = np.frombuffer(raw, dtype=self.dtype).reshape(self.shape)
        if self.compression is None and isinstance(raw, memoryview):
            self._base = arr
        return arr

    def _view_chunked(self, axes: Sequence[tuple]) -> np.ndarray:
        assert self.chunks is not None
        # Per-axis (start, n, step): ints are width-1 rows dropped at the end.
        params = [
            (a[1], 1, 1) if a[0] == "int" else (a[1], a[2], a[3]) for a in axes
        ]
        drop = tuple(0 if a[0] == "int" else slice(None) for a in axes)
        if any(n == 0 for _, n, _ in params):
            out = np.empty(tuple(n for _, n, _ in params), dtype=self.dtype)
            return self._apply_flips(out[drop], axes)

        grid = _chunk_grid(self.shape, self.chunks)
        strides = np.ones(len(grid), dtype=np.int64)
        for ax in range(len(grid) - 2, -1, -1):
            strides[ax] = strides[ax + 1] * grid[ax + 1]

        # Fast path: the whole selection inside one uncompressed chunk →
        # a view onto that chunk's mapped pages.
        span = [(s // c, (s + (n - 1) * st) // c) for (s, n, st), c in zip(params, self.chunks)]
        if (
            self.compression is None
            and self._file._mm is not None
            and all(lo == hi for lo, hi in span)
        ):
            cidx = tuple(lo for lo, _ in span)
            flat = int(np.dot(np.asarray(cidx, dtype=np.int64), strides))
            extent = tuple(
                min((ci + 1) * c, s) - ci * c
                for ci, c, s in zip(cidx, self.chunks, self.shape)
            )
            raw = self._read_block(self._blocks[flat])
            chunk = np.frombuffer(raw, dtype=self.dtype).reshape(extent)
            local = tuple(
                (a[1] - ci * c)
                if a[0] == "int"
                else slice(a[1] - ci * c, a[1] - ci * c + a[2] * a[3], a[3])
                for a, ci, c in zip(axes, cidx, self.chunks)
            )
            return self._apply_flips(chunk[local], axes)

        # General gather: per axis, the chunk rows the selection actually
        # crosses (a large step can hop whole chunks — those are skipped
        # before any byte is read).
        ax_rows: list[list[tuple[int, int, int]]] = []
        for (start, n, step), c, dim in zip(params, self.chunks, self.shape):
            rows = []
            last = start + (n - 1) * step
            for ci in range(start // c, last // c + 1):
                c0, c1 = ci * c, min(ci * c + c, dim)
                k0 = max(0, (c0 - start + step - 1) // step)
                k1 = min(n - 1, (c1 - 1 - start) // step)
                if k1 >= k0:
                    rows.append((ci, k0, k1))
            ax_rows.append(rows)

        out = np.empty(tuple(n for _, n, _ in params), dtype=self.dtype)
        for combo in itertools.product(*ax_rows):
            cidx = tuple(e[0] for e in combo)
            flat = int(np.dot(np.asarray(cidx, dtype=np.int64), strides))
            extent = tuple(
                min((ci + 1) * c, s) - ci * c
                for ci, c, s in zip(cidx, self.chunks, self.shape)
            )
            raw = self._read_block(self._blocks[flat])
            chunk = np.frombuffer(raw, dtype=self.dtype).reshape(extent)
            src = tuple(
                slice(start + k0 * step - ci * c, start + k1 * step - ci * c + 1, step)
                for (start, _, step), (ci, k0, k1), c in zip(
                    params, combo, self.chunks
                )
            )
            dst = tuple(slice(k0, k1 + 1) for _, k0, k1 in combo)
            out[dst] = chunk[src]
        return self._apply_flips(out[drop], axes)


class Group:
    """Read-side group handle."""

    def __init__(self, file: "H5LiteFile", node: _Node, path: str) -> None:
        self._file = file
        self._node = node
        self.path = "/" + path.strip("/")

    @property
    def attrs(self) -> Attributes:
        return Attributes(self._node.attrs_doc)

    def keys(self) -> list[str]:
        return sorted(set(self._node.groups) | set(self._node.datasets))

    def groups(self) -> list[str]:
        return sorted(self._node.groups)

    def datasets(self) -> list[str]:
        return sorted(self._node.datasets)

    def __contains__(self, name: str) -> bool:
        try:
            self[name]
            return True
        except KeyError:
            return False

    def __getitem__(self, relpath: str) -> "Group | Dataset":
        base = self.path.strip("/")
        full = f"{base}/{relpath}" if base else relpath
        return self._file[full]

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())


class H5LiteFile:
    """Read-only view of an h5lite file.  Only the footer is read at
    open; dataset payloads load on demand."""

    def __init__(self, path: "str | os.PathLike") -> None:
        self.path = os.fspath(path)
        self._fh = open(self.path, "rb")
        #: I/O accounting for this handle: decoded blocks, payload bytes
        #: touched, raw bytes produced.  Zero-copy views do count their
        #: aliased block once (the mapping, not a read), so chunk-access
        #: regressions stay observable.
        self.read_stats: dict[str, int] = {
            "block_reads": 0,
            "payload_bytes": 0,
            "raw_bytes": 0,
        }
        self._mm: Optional[mmap.mmap] = None
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError):
            self._mm = None  # empty file / exotic fs: plain reads still work
        try:
            self._root = self._load_footer()
        except Exception:
            self.close()
            raise

    def _load_footer(self) -> _Node:
        fh = self._fh
        fh.seek(0, os.SEEK_END)
        end = fh.tell()
        tail_len = 8 + 8 + len(TAIL_MAGIC)
        if end < len(MAGIC) + tail_len:
            raise FormatError(f"{self.path}: file too small to be h5lite")
        fh.seek(0)
        if fh.read(len(MAGIC)) != MAGIC:
            raise FormatError(f"{self.path}: bad magic (not an h5lite file)")
        fh.seek(end - tail_len)
        tail = fh.read(tail_len)
        if tail[16:] != TAIL_MAGIC:
            raise FormatError(f"{self.path}: bad tail magic (truncated file?)")
        footer_offset = int.from_bytes(tail[0:8], "little")
        footer_len = int.from_bytes(tail[8:16], "little")
        if footer_offset + footer_len > end - tail_len:
            raise FormatError(f"{self.path}: footer extends past end of file")
        fh.seek(footer_offset)
        try:
            doc = json.loads(zlib.decompress(fh.read(footer_len)).decode("utf-8"))
        except (zlib.error, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FormatError(f"{self.path}: corrupt footer: {exc}") from exc
        if doc.get("format_version") != FORMAT_VERSION:
            raise FormatError(
                f"{self.path}: unsupported format version {doc.get('format_version')}"
            )
        return _Node.from_doc(doc["root"])

    def _pread(self, offset: int, nbytes: int) -> "bytes | memoryview":
        """Positioned read.  With a live mmap this is a zero-copy
        memoryview onto the page cache; otherwise a buffered file read."""
        if self._mm is not None:
            if offset + nbytes > len(self._mm):
                raise FormatError(f"{self.path}: short read at offset {offset}")
            return memoryview(self._mm)[offset : offset + nbytes]
        self._fh.seek(offset)
        data = self._fh.read(nbytes)
        if len(data) != nbytes:
            raise FormatError(f"{self.path}: short read at offset {offset}")
        return data

    # -- traversal ------------------------------------------------------------
    @property
    def root(self) -> Group:
        return Group(self, self._root, "/")

    @property
    def attrs(self) -> Attributes:
        return self.root.attrs

    def __getitem__(self, path: str) -> "Group | Dataset":
        parts = _split_path(path)
        node = self._root
        for i, part in enumerate(parts):
            if part in node.groups:
                node = node.groups[part]
            elif part in node.datasets and i == len(parts) - 1:
                return Dataset(self, "/" + "/".join(parts), node.datasets[part])
            else:
                raise KeyError("/" + "/".join(parts[: i + 1]))
        return Group(self, node, "/".join(parts))

    def __contains__(self, path: str) -> bool:
        try:
            self[path]
            return True
        except KeyError:
            return False

    def walk(self) -> Iterator[tuple[str, "Group | Dataset"]]:
        """Yield ``(path, handle)`` for every group and dataset,
        depth-first, groups before their children."""

        def rec(node: _Node, prefix: str) -> Iterator[tuple[str, "Group | Dataset"]]:
            for name in sorted(node.groups):
                path = f"{prefix}/{name}"
                yield path, Group(self, node.groups[name], path)
                yield from rec(node.groups[name], path)
            for name in sorted(node.datasets):
                path = f"{prefix}/{name}"
                yield path, Dataset(self, path, node.datasets[name])

        yield from rec(self._root, "")

    def close(self) -> None:
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                # Live zero-copy views still pin the mapping; it is
                # released when the last view dies.  The views stay
                # valid either way — an mmap outlives its fd.
                pass
            else:
                self._mm = None
        self._fh.close()

    def __enter__(self) -> "H5LiteFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
