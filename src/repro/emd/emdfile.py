"""EMD files: the Electron Microscopy Dataset layout on top of h5lite.

An EMD file (a subset of HDF5 by convention) stores one or more *signal
groups* under ``/data/<name>``, each marked with ``emd_group_type = 1``
and containing:

* ``data`` — the n-D tensor (hyperspectral cubes are H×W×E; spatiotemporal
  movies are T×H×W, time first, exactly as in the paper);
* ``dim1`` … ``dimN`` — one axis-coordinate vector per tensor axis, each
  with ``name`` and ``units`` attributes;
* experiment metadata as a JSON payload at ``/metadata/json`` (stored as a
  uint8 dataset, the same trick Velox EMD uses).

The module also provides :func:`estimate_emd_size`, the size model used by
the transfer simulator so campaigns can move "91 MB" and "1200 MB" files
without materializing them on disk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..errors import FormatError
from .h5lite import Dataset, H5LiteFile, H5LiteWriter
from .schema import AcquisitionMetadata

__all__ = [
    "DimVector",
    "EmdSignal",
    "EmdSignalHandle",
    "EmdFile",
    "write_emd",
    "read_emd",
    "estimate_emd_size",
]

EMD_VERSION = (0, 2)
EMD_GROUP_TYPE = 1

#: Canonical axis descriptions per signal type; index i describes dim(i+1).
HYPERSPECTRAL_AXES = (("height", "px"), ("width", "px"), ("energy", "eV"))
SPATIOTEMPORAL_AXES = (("time", "s"), ("height", "px"), ("width", "px"))


@dataclass(frozen=True)
class DimVector:
    """One axis of a signal: coordinate values plus name/units."""

    name: str
    units: str
    values: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", np.asarray(self.values, dtype=np.float64))
        if self.values.ndim != 1:
            raise FormatError(f"dim vector {self.name!r} must be 1-D")


@dataclass
class EmdSignal:
    """An in-memory signal ready to be written to an EMD file."""

    name: str
    data: np.ndarray
    dims: tuple[DimVector, ...]
    metadata: AcquisitionMetadata

    def __post_init__(self) -> None:
        if len(self.dims) != self.data.ndim:
            raise FormatError(
                f"signal {self.name!r}: {len(self.dims)} dim vectors for "
                f"{self.data.ndim}-D data"
            )
        for ax, dim in enumerate(self.dims):
            if len(dim.values) != self.data.shape[ax]:
                raise FormatError(
                    f"signal {self.name!r}: dim{ax + 1} has {len(dim.values)} "
                    f"values for axis of size {self.data.shape[ax]}"
                )


def default_dims(shape: Sequence[int], signal_type: str) -> tuple[DimVector, ...]:
    """Canonical pixel/energy/time axes for a signal of ``shape``."""
    if signal_type == "hyperspectral":
        axes = HYPERSPECTRAL_AXES
    elif signal_type == "spatiotemporal":
        axes = SPATIOTEMPORAL_AXES
    else:
        raise FormatError(f"unknown signal type: {signal_type!r}")
    if len(shape) != len(axes):
        raise FormatError(
            f"{signal_type} signals are {len(axes)}-D, got shape {tuple(shape)}"
        )
    return tuple(
        DimVector(name=name, units=units, values=np.arange(n, dtype=np.float64))
        for (name, units), n in zip(axes, shape)
    )


def write_emd(
    path: "str | os.PathLike",
    signal: EmdSignal,
    chunks: Optional[Sequence[int]] = None,
    compression: Optional[str] = None,
) -> None:
    """Write a single-signal EMD file.

    ``chunks=None`` picks a sensible default: per-frame chunks for
    spatiotemporal data (axis 0), whole-array contiguous otherwise.
    """
    if chunks is None and signal.data.ndim == 3 and signal.dims[0].name == "time":
        chunks = (1,) + signal.data.shape[1:]
    with H5LiteWriter(path) as w:
        root = w.require_group("/")
        root.attrs["version_major"] = EMD_VERSION[0]
        root.attrs["version_minor"] = EMD_VERSION[1]
        root.attrs["file_format"] = "EMD (h5lite)"

        g = w.require_group(f"data/{signal.name}")
        g.attrs["emd_group_type"] = EMD_GROUP_TYPE
        g.attrs["signal_type"] = signal.metadata.signal_type
        w.create_dataset(
            f"data/{signal.name}/data",
            signal.data,
            chunks=chunks,
            compression=compression,
        )
        for ax, dim in enumerate(signal.dims, start=1):
            w.create_dataset(f"data/{signal.name}/dim{ax}", dim.values)
            dg = w.require_group(f"data/{signal.name}")
            # dim attributes live on per-dim marker groups to keep the
            # dataset descriptors lean.
            mg = w.require_group(f"data/{signal.name}/_dim{ax}_meta")
            mg.attrs["name"] = dim.name
            mg.attrs["units"] = dim.units
            del dg

        meta_bytes = np.frombuffer(
            signal.metadata.to_json().encode("utf-8"), dtype=np.uint8
        )
        w.create_dataset("metadata/json", meta_bytes)


class EmdSignalHandle:
    """Lazy view of one signal group inside an open EMD file."""

    def __init__(self, file: "EmdFile", name: str) -> None:
        self._file = file
        self.name = name
        group = file._h5[f"data/{name}"]
        if group.attrs.get("emd_group_type") != EMD_GROUP_TYPE:
            raise FormatError(f"group data/{name} is not an EMD signal group")
        self.signal_type: str = group.attrs.get("signal_type", "unknown")
        self._data: Dataset = file._h5[f"data/{name}/data"]  # type: ignore[assignment]

    @property
    def data(self) -> Dataset:
        """Lazy dataset handle — slice it to read frames without loading
        the whole tensor."""
        return self._data

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    def dim(self, axis: int) -> DimVector:
        """The axis vector for 1-based ``axis`` (EMD convention)."""
        values = self._file._h5[f"data/{self.name}/dim{axis}"].read()  # type: ignore[union-attr]
        meta = self._file._h5[f"data/{self.name}/_dim{axis}_meta"]
        return DimVector(
            name=meta.attrs.get("name", f"dim{axis}"),
            units=meta.attrs.get("units", ""),
            values=values,
        )

    def dims(self) -> tuple[DimVector, ...]:
        return tuple(self.dim(ax) for ax in range(1, len(self.shape) + 1))


class EmdFile:
    """Read-only EMD file: signals + metadata, loaded lazily."""

    def __init__(self, path: "str | os.PathLike") -> None:
        self._h5 = H5LiteFile(path)
        self.path = os.fspath(path)
        ver = (
            self._h5.attrs.get("version_major"),
            self._h5.attrs.get("version_minor"),
        )
        if ver != EMD_VERSION:
            raise FormatError(f"{self.path}: unsupported EMD version {ver}")

    def signal_names(self) -> list[str]:
        if "data" not in self._h5:
            return []
        group = self._h5["data"]
        return [n for n in group.groups()]  # type: ignore[union-attr]

    def signal(self, name: Optional[str] = None) -> EmdSignalHandle:
        """Open a signal by name, or the only signal if unambiguous."""
        names = self.signal_names()
        if name is None:
            if len(names) != 1:
                raise FormatError(
                    f"{self.path}: expected exactly one signal, found {names}"
                )
            name = names[0]
        if name not in names:
            raise KeyError(name)
        return EmdSignalHandle(self, name)

    def metadata(self) -> AcquisitionMetadata:
        """Parse the embedded JSON metadata payload."""
        if "metadata/json" not in self._h5:
            raise FormatError(f"{self.path}: no /metadata/json payload")
        raw = self._h5["metadata/json"].read()  # type: ignore[union-attr]
        return AcquisitionMetadata.from_json(bytes(raw.tobytes()).decode("utf-8"))

    def close(self) -> None:
        self._h5.close()

    def __enter__(self) -> "EmdFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_emd(path: "str | os.PathLike") -> EmdFile:
    """Open an EMD file for lazy reading."""
    return EmdFile(path)


def estimate_emd_size(
    shape: Sequence[int],
    dtype: "str | np.dtype" = np.float64,
    overhead_fraction: float = 0.002,
) -> float:
    """Bytes an EMD file of ``shape``/``dtype`` occupies (uncompressed).

    Used by the campaign simulator to derive transfer volumes from tensor
    dimensions: the paper's 91 MB hyperspectral file corresponds to e.g. a
    256×256 map with ~680 energy channels at float64 + container overhead,
    and the 1200 MB movie to 600 frames of 1000×1000 float64 (downsampled
    to 640×640 for inference).
    """
    n = float(np.prod(np.asarray(shape, dtype=np.float64)))
    payload = n * np.dtype(dtype).itemsize
    return payload * (1.0 + float(overhead_fraction))
