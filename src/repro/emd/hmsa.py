"""HMSA (Hyperdimensional Microscopy & Spectroscopy data) support.

Sec. 2.2.1: "Provisions are also incorporated to use other
cross-platform formats such as the proposed ISO standard HMSA format."
HMSA (MSA/ISO draft, Torpy et al. 2019) stores one acquisition as a
**pair of files**: a UTF-8 XML document describing conditions and datum
layout, plus a sibling ``.dat`` binary blob holding the raw array.  The
two are linked by a shared 64-bit UID recorded in both files.

This module implements the subset the data flows exercise: n-D datum
arrays of the supported numeric types, acquisition conditions mapped
from :class:`~repro.emd.AcquisitionMetadata`, UID generation and
cross-file validation.
"""

from __future__ import annotations

import os
import secrets
import xml.etree.ElementTree as ET
from typing import Optional

import numpy as np

from ..errors import FormatError
from .emdfile import EmdSignal, default_dims
from .schema import AcquisitionMetadata

__all__ = ["write_hmsa", "read_hmsa"]

#: HMSA datum type names for the dtypes we support.
_DTYPE_TO_HMSA = {
    np.dtype(np.uint8): "byte",
    np.dtype(np.int16): "int16",
    np.dtype(np.int32): "int32",
    np.dtype(np.int64): "int64",
    np.dtype(np.float32): "float32",
    np.dtype(np.float64): "float64",
}
_HMSA_TO_DTYPE = {v: k for k, v in _DTYPE_TO_HMSA.items()}


def _paths(base: "str | os.PathLike") -> tuple[str, str]:
    base = os.fspath(base)
    if base.endswith((".xml", ".dat")):
        base = base[:-4]
    return base + ".xml", base + ".dat"


def write_hmsa(base_path: "str | os.PathLike", signal: EmdSignal) -> tuple[str, str]:
    """Write ``signal`` as an HMSA pair; returns (xml_path, dat_path)."""
    dtype = np.dtype(signal.data.dtype)
    if dtype not in _DTYPE_TO_HMSA:
        raise FormatError(f"HMSA does not support dtype {dtype}")
    xml_path, dat_path = _paths(base_path)
    uid = secrets.token_hex(8).upper()

    root = ET.Element("MSAHyperDimensionalDataFile")
    header = ET.SubElement(root, "Header")
    ET.SubElement(header, "Title").text = signal.metadata.acquisition_id
    ET.SubElement(header, "Date").text = signal.metadata.acquired_at_iso.split("T")[0]
    ET.SubElement(header, "Time").text = (
        signal.metadata.acquired_at_iso.split("T")[1]
        if "T" in signal.metadata.acquired_at_iso
        else ""
    )
    ET.SubElement(header, "Author").text = signal.metadata.operator
    ET.SubElement(header, "UID").text = uid

    conditions = ET.SubElement(root, "Conditions")
    instr = ET.SubElement(
        conditions, "Instrument", attrib={"Name": signal.metadata.microscope.instrument}
    )
    ET.SubElement(instr, "BeamEnergy", attrib={"Unit": "kV"}).text = str(
        signal.metadata.microscope.beam_energy_kev
    )
    ET.SubElement(instr, "Magnification").text = str(
        signal.metadata.microscope.magnification
    )
    probe = ET.SubElement(conditions, "Probe")
    ET.SubElement(probe, "ProbeSize", attrib={"Unit": "pm"}).text = str(
        signal.metadata.microscope.probe_size_pm
    )
    spec = ET.SubElement(
        conditions, "Specimen", attrib={"Name": signal.metadata.sample.name}
    )
    ET.SubElement(spec, "Composition").text = ",".join(
        signal.metadata.sample.elements
    )

    data_el = ET.SubElement(root, "Data")
    datum = ET.SubElement(
        data_el,
        "Dataset",
        attrib={
            "Name": signal.name,
            "Class": signal.metadata.signal_type,
            "DatumType": _DTYPE_TO_HMSA[dtype],
        },
    )
    for ax, dim in enumerate(signal.dims, start=1):
        ET.SubElement(
            datum,
            "Dimension",
            attrib={
                "Index": str(ax),
                "Name": dim.name,
                "Unit": dim.units,
                "Size": str(len(dim.values)),
            },
        )

    arr = np.ascontiguousarray(signal.data)
    with open(dat_path, "wb") as fh:
        fh.write(bytes.fromhex(uid))  # the UID prefixes the binary file
        fh.write(arr.tobytes())

    tree = ET.ElementTree(root)
    tree.write(xml_path, encoding="utf-8", xml_declaration=True)
    return xml_path, dat_path


def read_hmsa(base_path: "str | os.PathLike") -> EmdSignal:
    """Read an HMSA pair back into an :class:`EmdSignal`.

    Validates the UID link between the XML and the binary file.
    """
    xml_path, dat_path = _paths(base_path)
    try:
        tree = ET.parse(xml_path)
    except (ET.ParseError, OSError) as exc:
        raise FormatError(f"cannot parse HMSA XML {xml_path}: {exc}") from exc
    root = tree.getroot()
    if root.tag != "MSAHyperDimensionalDataFile":
        raise FormatError(f"{xml_path}: not an HMSA document (root {root.tag!r})")

    uid = root.findtext("Header/UID") or ""
    title = root.findtext("Header/Title") or "unknown"
    author = root.findtext("Header/Author") or ""
    datum = root.find("Data/Dataset")
    if datum is None:
        raise FormatError(f"{xml_path}: no Data/Dataset element")
    dtype_name = datum.get("DatumType", "")
    if dtype_name not in _HMSA_TO_DTYPE:
        raise FormatError(f"{xml_path}: unsupported DatumType {dtype_name!r}")
    dtype = _HMSA_TO_DTYPE[dtype_name]
    signal_type = datum.get("Class", "unknown")

    dims_meta = sorted(
        datum.findall("Dimension"), key=lambda d: int(d.get("Index", "0"))
    )
    shape = tuple(int(d.get("Size", "0")) for d in dims_meta)
    if not shape or any(s <= 0 for s in shape):
        raise FormatError(f"{xml_path}: invalid dimension sizes {shape}")

    with open(dat_path, "rb") as fh:
        file_uid = fh.read(8).hex().upper()
        payload = fh.read()
    if uid and file_uid != uid:
        raise FormatError(
            f"UID mismatch: XML {uid} vs binary {file_uid} (files are not a pair)"
        )
    expected = int(np.prod(shape)) * dtype.itemsize
    if len(payload) != expected:
        raise FormatError(
            f"{dat_path}: payload is {len(payload)} bytes, expected {expected}"
        )
    data = np.frombuffer(payload, dtype=dtype).reshape(shape)

    instr = root.find("Conditions/Instrument")
    beam_kev = float(instr.findtext("BeamEnergy", "300")) if instr is not None else 300.0
    spec = root.find("Conditions/Specimen")
    elements = tuple(
        e for e in (spec.findtext("Composition", "") if spec is not None else "").split(",") if e
    )

    from .schema import MicroscopeState, SampleInfo

    md = AcquisitionMetadata(
        acquisition_id=title,
        acquired_at=0.0,
        acquired_at_iso=f"{root.findtext('Header/Date', '')}T{root.findtext('Header/Time', '')}",
        operator=author,
        signal_type=signal_type,
        shape=shape,
        dtype=np.dtype(dtype).str,
        microscope=MicroscopeState(
            instrument=(instr.get("Name") if instr is not None else "unknown") or "unknown",
            beam_energy_kev=beam_kev,
        ),
        sample=SampleInfo(
            name=(spec.get("Name") if spec is not None else "") or "",
            elements=elements,
        ),
    )
    try:
        dims = default_dims(shape, signal_type)
    except FormatError:
        from .emdfile import DimVector

        dims = tuple(
            DimVector(
                name=d.get("Name", f"dim{i+1}"),
                units=d.get("Unit", ""),
                values=np.arange(shape[i], dtype=np.float64),
            )
            for i, d in enumerate(dims_meta)
        )
    return EmdSignal(name=title, data=data, dims=dims, metadata=md)
