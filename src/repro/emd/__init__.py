"""EMD / h5lite: the microscopy file-format substrate.

:mod:`repro.emd.h5lite` is a from-scratch hierarchical binary container
(the HDF5-subset stand-in); :mod:`repro.emd.emdfile` layers the Electron
Microscopy Dataset conventions on top; :mod:`repro.emd.schema` defines the
experiment metadata embedded in every file.
"""

from .h5lite import Attributes, Dataset, Group, H5LiteFile, H5LiteWriter
from .emdfile import (
    DimVector,
    EmdFile,
    EmdSignal,
    EmdSignalHandle,
    default_dims,
    estimate_emd_size,
    read_emd,
    write_emd,
)
from .hmsa import read_hmsa, write_hmsa
from .schema import (
    SOFTWARE_VERSION,
    AcquisitionMetadata,
    DetectorConfig,
    MicroscopeState,
    SampleInfo,
    StagePosition,
    iso_from_campaign_seconds,
)

__all__ = [
    "H5LiteWriter",
    "H5LiteFile",
    "Dataset",
    "Group",
    "Attributes",
    "EmdSignal",
    "EmdSignalHandle",
    "EmdFile",
    "DimVector",
    "write_emd",
    "read_emd",
    "default_dims",
    "estimate_emd_size",
    "AcquisitionMetadata",
    "MicroscopeState",
    "DetectorConfig",
    "StagePosition",
    "SampleInfo",
    "SOFTWARE_VERSION",
    "iso_from_campaign_seconds",
    "write_hmsa",
    "read_hmsa",
]
