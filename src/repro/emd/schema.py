"""Experiment metadata model for EMD files.

Mirrors the metadata the paper extracts with HyperSpy (Sec. 2.2.2):
sample collection date/time; acquisition instrument details such as stage
and detector positions, beam energy, and magnification; and software
versioning.  Stored inside EMD files as a JSON payload (the same
convention Velox/EMD uses), and re-parsed by
:mod:`repro.analysis.metadata` on the HPC side.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Optional

from ..errors import FormatError

__all__ = [
    "StagePosition",
    "DetectorConfig",
    "MicroscopeState",
    "SampleInfo",
    "AcquisitionMetadata",
    "SOFTWARE_VERSION",
]

#: Version string recorded in every file (the "software versioning" field).
SOFTWARE_VERSION = "picoprobe-dataflow/1.0.0"


@dataclass(frozen=True)
class StagePosition:
    """Specimen-stage pose: position in micrometres, tilts in degrees."""

    x_um: float = 0.0
    y_um: float = 0.0
    z_um: float = 0.0
    alpha_deg: float = 0.0
    beta_deg: float = 0.0


@dataclass(frozen=True)
class DetectorConfig:
    """One detector channel on the instrument.

    The Dynamic PicoProbe's headline detector is the XPAD hyperspectral
    X-ray array (~4.5 sR collection); spatiotemporal imaging uses a
    camera-style detector.
    """

    name: str
    kind: str  # "xray-hyperspectral" | "camera" | "haadf"
    solid_angle_sr: float = 0.0
    pixel_size_um: float = 0.0
    energy_resolution_ev: float = 0.0
    enabled: bool = True


@dataclass(frozen=True)
class MicroscopeState:
    """Instrument settings at acquisition time."""

    instrument: str = "Dynamic PicoProbe"
    beam_energy_kev: float = 300.0  # 30-300 kV monochromated probe
    probe_size_pm: float = 50.0  # ~50 pm aberration-corrected probe
    magnification: float = 1.0e6
    camera_length_mm: float = 100.0
    stage: StagePosition = field(default_factory=StagePosition)
    detectors: tuple[DetectorConfig, ...] = ()
    vacuum_environment: str = "high-vacuum"  # | cryogenic | liquid | gaseous


@dataclass(frozen=True)
class SampleInfo:
    """What was in the holder."""

    name: str = ""
    description: str = ""
    elements: tuple[str, ...] = ()
    preparation: str = ""


@dataclass(frozen=True)
class AcquisitionMetadata:
    """Everything the data-analysis step extracts and the search index
    catalogs for one acquisition."""

    acquisition_id: str
    acquired_at: float  # experiment-campaign time, seconds
    acquired_at_iso: str  # human-readable timestamp for the portal
    operator: str
    signal_type: str  # "hyperspectral" | "spatiotemporal"
    shape: tuple[int, ...]
    dtype: str
    microscope: MicroscopeState = field(default_factory=MicroscopeState)
    sample: SampleInfo = field(default_factory=SampleInfo)
    software_version: str = SOFTWARE_VERSION
    extra: dict[str, Any] = field(default_factory=dict)

    # -- serialization ------------------------------------------------------
    def to_json(self) -> str:
        doc = asdict(self)
        doc["shape"] = list(self.shape)
        return json.dumps(doc, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AcquisitionMetadata":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FormatError(f"invalid metadata JSON: {exc}") from exc
        return cls.from_dict(doc)

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "AcquisitionMetadata":
        try:
            mic = doc.get("microscope", {})
            stage = StagePosition(**mic.get("stage", {}))
            detectors = tuple(
                DetectorConfig(**d) for d in mic.get("detectors", ())
            )
            microscope = MicroscopeState(
                instrument=mic.get("instrument", "Dynamic PicoProbe"),
                beam_energy_kev=mic.get("beam_energy_kev", 300.0),
                probe_size_pm=mic.get("probe_size_pm", 50.0),
                magnification=mic.get("magnification", 1.0e6),
                camera_length_mm=mic.get("camera_length_mm", 100.0),
                stage=stage,
                detectors=detectors,
                vacuum_environment=mic.get("vacuum_environment", "high-vacuum"),
            )
            samp = doc.get("sample", {})
            sample = SampleInfo(
                name=samp.get("name", ""),
                description=samp.get("description", ""),
                elements=tuple(samp.get("elements", ())),
                preparation=samp.get("preparation", ""),
            )
            return cls(
                acquisition_id=doc["acquisition_id"],
                acquired_at=float(doc["acquired_at"]),
                acquired_at_iso=doc.get("acquired_at_iso", ""),
                operator=doc.get("operator", ""),
                signal_type=doc["signal_type"],
                shape=tuple(doc["shape"]),
                dtype=doc.get("dtype", ""),
                microscope=microscope,
                sample=sample,
                software_version=doc.get("software_version", ""),
                extra=doc.get("extra", {}),
            )
        except KeyError as exc:
            raise FormatError(f"metadata missing required field: {exc}") from exc


def iso_from_campaign_seconds(t: float, campaign_epoch: str = "2023-06-01T00:00:00") -> str:
    """Render campaign-relative seconds as an ISO-8601 timestamp.

    The DES clock starts at 0; portals and search indices want calendar
    timestamps, so campaigns anchor themselves at a nominal epoch.
    """
    import datetime as _dt

    base = _dt.datetime.fromisoformat(campaign_epoch)
    return (base + _dt.timedelta(seconds=float(t))).isoformat()
