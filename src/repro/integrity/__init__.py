"""``repro.integrity`` — end-to-end data integrity for the data plane.

The paper's pipeline moves every acquisition through at least three
custody hops (instrument → facility storage/stream → analysis → search
portal); this subsystem makes each hop *verifiable* and the whole chain
*auditable*:

* :mod:`~repro.integrity.digest` — the byte-less digest arithmetic the
  simulation uses (payload digests, per-chunk derivation, deterministic
  mangling for injected corruption);
* :mod:`~repro.integrity.chain` — the per-acquisition
  :class:`DigestChain` attesting ``acquired`` →
  ``transferred``/``streamed`` → ``analyzed``;
* :mod:`~repro.integrity.ledger` — the campaign-wide
  :class:`IntegrityLedger`: detections, repairs, the quarantine
  dead-letter, the search-publish gate, verify-on-read, and the
  end-of-campaign scrub;
* :mod:`~repro.integrity.audit` — the span-walking proof that every
  injected corruption was repaired or quarantined (zero silent
  acceptances), with the file-vs-stream detection-latency breakdown
  behind ``python -m repro integrity``.
"""

from .audit import (
    InjectionRecord,
    IntegrityAuditReport,
    audit_spans,
    format_audit,
    run_integrity_campaign,
)
from .chain import STAGES, ChainLink, DigestChain
from .digest import chunk_digest, mangle
from .ledger import IntegrityLedger, QuarantineRecord

__all__ = [
    "STAGES",
    "ChainLink",
    "DigestChain",
    "InjectionRecord",
    "IntegrityAuditReport",
    "IntegrityLedger",
    "QuarantineRecord",
    "audit_spans",
    "chunk_digest",
    "format_audit",
    "mangle",
    "run_integrity_campaign",
]
