"""The integrity audit: prove zero silent acceptances from spans alone.

:func:`audit_spans` walks a campaign's span list (no access to the
ledger's in-memory state — the audit is an *independent* derivation,
like :mod:`repro.obs.analysis` re-deriving Fig. 4) and joins:

* every ``chaos.corruption`` injection to its first ``integrity.detect``
  — chunk faults by ``(session_id, seq)``, at-rest faults by path —
  classifying each as **repaired** (a matching ``integrity.repair``
  after the detection), **quarantined** (the path was dead-lettered),
  or **SILENT** (no detection at all — the failure the subsystem
  exists to rule out);
* every detected path to its resolution — a path whose last detection
  is followed by neither a repair nor a quarantine is an unresolved
  acceptance (this also covers the transfer layer's own per-attempt
  wire-checksum faults, which are injected by :class:`FaultPlan`
  rather than the chaos corruption spec);
* every ``integrity.publish`` receipt against the quarantine log —
  publishing a record quarantined *earlier* is a gate violation.

The report's Fig.-4-style detection-latency breakdown (injection →
detection, split file vs stream by the detecting verifier's mode) shows
*where* each corruption class is caught: wire faults within a chunk
round-trip, at-rest rot not until the next consumer — or the
end-of-campaign scrub — touches the file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from ..obs.analysis import derive_integrity_events

__all__ = [
    "InjectionRecord",
    "IntegrityAuditReport",
    "audit_spans",
    "format_audit",
    "run_integrity_campaign",
]


@dataclass(frozen=True)
class InjectionRecord:
    """One injected corruption and what the data plane did about it."""

    kind: str
    path: str
    at: float
    seq: Optional[int]
    session_id: Optional[str]
    detected_at: Optional[float]
    #: Mode of the detecting verifier ("stream" | "file"), when detected.
    detect_mode: Optional[str]
    #: "repaired" | "quarantined" | "silent"
    resolution: str

    @property
    def latency_s(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.at


def _stats(values: Sequence[float]) -> dict[str, float]:
    if not values:
        return {"n": 0.0}
    arr = np.asarray(list(values))
    return {
        "n": float(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }


@dataclass
class IntegrityAuditReport:
    """What :func:`audit_spans` proved (or failed to prove)."""

    injections: list[InjectionRecord] = field(default_factory=list)
    #: Paths with a detection that neither a repair nor a quarantine
    #: resolved — corruption seen but silently accepted.
    unresolved_paths: list[str] = field(default_factory=list)
    #: Publish receipts for paths quarantined before the publish.
    publish_violations: list[str] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def silent(self) -> list[InjectionRecord]:
        return [i for i in self.injections if i.resolution == "silent"]

    @property
    def ok(self) -> bool:
        """True iff zero silent acceptances and no gate violations."""
        return not self.silent and not self.unresolved_paths and not self.publish_violations

    def by_resolution(self) -> dict[str, int]:
        out = {"repaired": 0, "quarantined": 0, "silent": 0}
        for i in self.injections:
            out[i.resolution] = out.get(i.resolution, 0) + 1
        return out

    def latency_breakdown(self) -> dict[str, dict[str, float]]:
        """Injection→detection latency stats, file vs stream verifiers."""
        by_mode: dict[str, list[float]] = {"file": [], "stream": []}
        for i in self.injections:
            lat = i.latency_s
            if lat is not None and i.detect_mode in by_mode:
                by_mode[i.detect_mode].append(lat)
        return {mode: _stats(vals) for mode, vals in by_mode.items()}


def audit_spans(spans: Sequence[Any]) -> IntegrityAuditReport:
    """Join injections to detections/repairs/quarantines (see module
    docstring) and return the :class:`IntegrityAuditReport`."""
    events = derive_integrity_events(spans)

    detects_by_key: dict[tuple, list[Any]] = {}
    detects_by_path: dict[str, list[Any]] = {}
    for d in events["detections"]:
        path = d.attrs.get("path", "")
        detects_by_path.setdefault(path, []).append(d)
        sid = d.attrs.get("session_id")
        if sid is not None:
            detects_by_key.setdefault((sid, d.attrs.get("seq")), []).append(d)

    repairs_by_key: dict[tuple, list[float]] = {}
    repairs_by_path: dict[str, list[float]] = {}
    for r in events["repairs"]:
        repairs_by_path.setdefault(r.attrs.get("path", ""), []).append(r.start)
        sid = r.attrs.get("session_id")
        if sid is not None:
            repairs_by_key.setdefault((sid, r.attrs.get("seq")), []).append(r.start)

    quarantined_at: dict[str, float] = {}
    for q in events["quarantines"]:
        quarantined_at.setdefault(q.attrs.get("path", ""), q.start)

    records: list[InjectionRecord] = []
    for inj in events["injections"]:
        kind = inj.attrs.get("kind", "")
        path = inj.attrs.get("path", "")
        sid = inj.attrs.get("session_id")
        seq = inj.attrs.get("seq")
        if sid is not None:
            candidates = detects_by_key.get((sid, seq), [])
        else:
            candidates = detects_by_path.get(path, [])
        hits = [d for d in candidates if d.start >= inj.start]
        detected = min(hits, key=lambda d: d.start) if hits else None
        if detected is not None:
            if sid is not None:
                # A chunk fault is healed by a clean retransmit of the
                # same sequence; the session-level quarantine is the
                # fallback when the retransmit budget ran out.
                if any(
                    t >= detected.start
                    for t in repairs_by_key.get((sid, seq), [])
                ):
                    resolution = "repaired"
                elif path in quarantined_at:
                    resolution = "quarantined"
                else:
                    resolution = "silent"
            else:
                # At-rest rot is never repairable in place — quarantine
                # is the expected resolution; a path-level repair can
                # only come from the transfer wire-fault retry.
                if path in quarantined_at:
                    resolution = "quarantined"
                elif any(
                    t >= detected.start for t in repairs_by_path.get(path, [])
                ):
                    resolution = "repaired"
                else:
                    resolution = "silent"
        elif path in quarantined_at and quarantined_at[path] >= inj.start:
            resolution = "quarantined"
        else:
            resolution = "silent"
        records.append(
            InjectionRecord(
                kind=kind,
                path=path,
                at=inj.start,
                seq=seq,
                session_id=sid,
                detected_at=detected.start if detected is not None else None,
                detect_mode=(
                    detected.attrs.get("mode") if detected is not None else None
                ),
                resolution=resolution,
            )
        )

    # Half 2 of the invariant: every detection is resolved.  Covers the
    # transfer FaultPlan's wire faults, which emit detect/repair spans
    # without a chaos.corruption injection span.
    unresolved: list[str] = []
    for path in sorted(detects_by_path):
        if path in quarantined_at:
            continue
        last_detect = max(d.start for d in detects_by_path[path])
        last_repair = max(repairs_by_path.get(path, [-1.0]), default=-1.0)
        if last_repair < last_detect:
            unresolved.append(path)

    violations: list[str] = []
    for p in events["publishes"]:
        path = p.attrs.get("path", "")
        q_at = quarantined_at.get(path)
        if q_at is not None and q_at <= p.start:
            violations.append(
                f"{path}: published at t={p.start:.3f} after quarantine "
                f"at t={q_at:.3f}"
            )

    wire_detects = sum(
        1 for d in events["detections"] if d.attrs.get("kind") == "wire"
    )
    report = IntegrityAuditReport(
        injections=records,
        unresolved_paths=unresolved,
        publish_violations=violations,
        counts={
            "injections": len(events["injections"]),
            "detections": len(events["detections"]),
            "repairs": len(events["repairs"]),
            "quarantines": len(events["quarantines"]),
            "publishes": len(events["publishes"]),
            "wire_fault_detections": wire_detects,
        },
    )
    return report


def format_audit(report: IntegrityAuditReport) -> str:
    """Render an :class:`IntegrityAuditReport` as an aligned text block."""
    c = report.counts
    lines = [
        "integrity audit",
        f"  injections   {c.get('injections', 0):>5}",
        f"  detections   {c.get('detections', 0):>5}"
        f"   (wire faults: {c.get('wire_fault_detections', 0)})",
        f"  repairs      {c.get('repairs', 0):>5}",
        f"  quarantines  {c.get('quarantines', 0):>5}",
        f"  publishes    {c.get('publishes', 0):>5}",
    ]
    by_kind: dict[str, dict[str, int]] = {}
    for i in report.injections:
        by_kind.setdefault(i.kind, {"repaired": 0, "quarantined": 0, "silent": 0})[
            i.resolution
        ] += 1
    if by_kind:
        lines.append(
            f"  {'injection kind':<16}{'repaired':>10}{'quarantined':>13}{'SILENT':>9}"
        )
        for kind in sorted(by_kind):
            r = by_kind[kind]
            lines.append(
                f"  {kind:<16}{r['repaired']:>10}{r['quarantined']:>13}"
                f"{r['silent']:>9}"
            )
    lines.append("  detection latency (s), injection -> first detect:")
    lines.append(
        f"    {'verifier':<8}{'n':>5}{'mean':>10}{'p50':>10}{'p95':>10}{'max':>10}"
    )
    for mode, st in report.latency_breakdown().items():
        if not st.get("n"):
            lines.append(f"    {mode:<8}{0:>5}{'-':>10}")
            continue
        lines.append(
            f"    {mode:<8}{int(st['n']):>5}{st['mean']:>10.2f}"
            f"{st['p50']:>10.2f}{st['p95']:>10.2f}{st['max']:>10.2f}"
        )
    for path in report.unresolved_paths:
        lines.append(f"  UNRESOLVED detection: {path}")
    for v in report.publish_violations:
        lines.append(f"  PUBLISH VIOLATION: {v}")
    verdict = (
        "PASS: every injected corruption was repaired or quarantined; "
        "zero silent acceptances"
        if report.ok
        else f"FAIL: {len(report.silent)} silent acceptance(s), "
        f"{len(report.unresolved_paths)} unresolved detection(s), "
        f"{len(report.publish_violations)} publish violation(s)"
    )
    lines.append(f"  {verdict}")
    return "\n".join(lines)


def run_integrity_campaign(
    scenario: str = "corruption",
    use_case: str = "hyperspectral",
    duration_s: Optional[float] = None,
    seed: int = 0,
    ingest: str = "stream",
) -> tuple[Any, IntegrityAuditReport]:
    """Run a corruption campaign, scrub the stores, and audit it.

    Convenience wrapper behind ``python -m repro integrity``: runs the
    named chaos scenario with observability on (the audit needs spans),
    sweeps both filesystems for dormant at-rest rot, then proves the
    zero-silent-acceptance invariant.  Returns ``(result, report)``.
    """
    from ..chaos import run_chaos_campaign  # deferred: chaos imports core
    from ..units import hours

    result = run_chaos_campaign(
        scenario,
        use_case=use_case,
        duration_s=duration_s if duration_s is not None else hours(1),
        seed=seed,
        obs=True,
        ingest=ingest,
    )
    tb = result.testbed
    if result.ledger is not None:
        # Dormant rot (landed after its record was last consumed) gets
        # detected + quarantined here, so the audit's join is total.
        result.ledger.scrub((tb.user_fs, tb.eagle_fs))
    report = audit_spans(tb.obs.tracer.spans)
    return result, report
