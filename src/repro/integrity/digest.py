"""Deterministic digest arithmetic for the byte-less data plane.

The simulation never materialises file contents, so "the digest of the
bytes" is modelled exactly the way :meth:`VirtualFile.content_checksum`
models checksums: a short, deterministic hash of the *identity* of the
content.  An intact payload's digest equals the declared checksum; any
corruption replaces it with a :func:`mangle` of the original, which can
never collide back to the declared value.  Verification anywhere in the
pipeline is then a string comparison, and the per-chunk wire digests
are derived from the payload digest plus the chunk coordinates so that
a corrupted, truncated, or rotten source produces a chunk digest the
receiver can reject against the session's declared digest.
"""

from __future__ import annotations

import hashlib

__all__ = ["chunk_digest", "mangle"]


def mangle(digest: str, salt: str = "") -> str:
    """The digest of a corrupted payload: deterministic, salted, and
    guaranteed to differ from ``digest`` itself."""
    h = hashlib.sha256(f"rot:{digest}:{salt}".encode()).hexdigest()[:32]
    if h == digest:  # pragma: no cover - 2^-128
        h = h[1:] + h[0]
    return h


def chunk_digest(payload_digest: str, seq: int, nbytes: float) -> str:
    """The wire digest of chunk ``seq`` of a payload.

    The publisher computes it from the *actual* payload digest at send
    time; the receiver recomputes it from the session's *declared*
    digest and the expected chunk size.  The two match iff the payload
    is intact, the chunk was not mangled in flight, and it arrived at
    full size — one comparison detects bit rot, metadata mismatch,
    wire corruption, and truncation uniformly.
    """
    h = hashlib.sha256(f"chunk:{payload_digest}:{seq}:{nbytes:.0f}".encode())
    return h.hexdigest()[:16]
