"""Digest-chain attestation: provenance the search-publish step requires.

Each record moving through the pipeline accumulates a chain of
:class:`ChainLink` attestations — ``acquired`` at the instrument,
``transferred`` (file mode) or ``streamed`` (stream mode) when the
verified payload reaches the facility, and ``analyzed`` when the
compute function has verified-read it.  A chain is **closed** when all
three hops attested *the same digest* as the declared acquisition
checksum; only closed chains may publish to search.  A record whose
chain does not close is quarantined — dead-lettered with its chain —
never silently indexed.

This mirrors the federated-provenance requirement of Bicer et al.
(PAPERS.md): every facility hop re-attests the payload it actually
saw, so a mismatch pinpoints the hop that corrupted it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ChainLink", "DigestChain", "STAGES"]

#: Attestation stages in pipeline order.  ``transferred`` and
#: ``streamed`` are the two ingest modes' alternatives for hop two.
STAGES = ("acquired", "transferred", "streamed", "analyzed")


@dataclass(frozen=True)
class ChainLink:
    """One hop's attestation: *I saw this digest at this time.*"""

    stage: str
    digest: str
    at: float
    by: str

    def to_dict(self) -> dict:
        return {"stage": self.stage, "digest": self.digest, "at": self.at, "by": self.by}


@dataclass
class DigestChain:
    """The ordered attestations of one record, keyed by source path."""

    path: str
    subject: str
    declared: str
    links: list[ChainLink] = field(default_factory=list)

    def attest(self, stage: str, digest: str, at: float, by: str) -> ChainLink:
        if stage not in STAGES:
            raise ValueError(f"unknown chain stage: {stage!r}")
        link = ChainLink(stage=stage, digest=digest, at=at, by=by)
        self.links.append(link)
        return link

    def digest_at(self, stage: str) -> Optional[str]:
        """The digest attested at ``stage`` (the latest attestation
        wins — a re-transfer after a fault re-attests the hop)."""
        for link in reversed(self.links):
            if link.stage == stage:
                return link.digest
        return None

    @property
    def stages(self) -> set[str]:
        return {link.stage for link in self.links}

    @property
    def closed(self) -> bool:
        """True iff acquisition, arrival (either mode), and analysis
        all attested the declared digest."""
        return self.why_open() is None

    def why_open(self) -> Optional[str]:
        """Human-readable reason the chain does not close, or ``None``."""
        if self.digest_at("acquired") is None:
            return "no acquisition attestation"
        arrival = self.digest_at("transferred")
        if arrival is None:
            arrival = self.digest_at("streamed")
        if arrival is None:
            return "payload never attested at the facility (not transferred/streamed)"
        analyzed = self.digest_at("analyzed")
        if analyzed is None:
            return "no verified-read attestation from analysis"
        for stage, digest in (
            ("acquired", self.digest_at("acquired")),
            ("arrival", arrival),
            ("analyzed", analyzed),
        ):
            if digest != self.declared:
                return (
                    f"{stage} digest {digest} does not match declared {self.declared}"
                )
        return None

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "subject": self.subject,
            "declared": self.declared,
            "closed": self.closed,
            "links": [link.to_dict() for link in self.links],
        }
