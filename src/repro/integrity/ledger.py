"""The in-campaign integrity ledger: chains, detections, quarantine.

One :class:`IntegrityLedger` lives per campaign (created by
:func:`repro.core.run_campaign` when corruption faults are armed, or on
``integrity=True``).  Services hold it duck-typed — like the chaos
``gate`` hook — and call:

* :meth:`begin` — the acquisition attestation, when the watcher/app
  first sees a file;
* :meth:`attest` — a later hop re-attesting the digest it verified;
* :meth:`detect` / :meth:`repair` — a verification failure and its
  retransmit-driven recovery (both emit instantaneous spans, the audit
  layer's raw material);
* :meth:`check_publishable` — the search-publish gate: a subject whose
  chain does not close is quarantined and the publish refused;
* :meth:`verify_read` — the compute-side verify-on-read, raising
  :class:`~repro.errors.IntegrityError` on mismatch;
* :meth:`scrub` — the end-of-campaign at-rest sweep that dead-letters
  rot which landed after its record was last consumed.

Every method is pure bookkeeping on the clean path: no spans, metrics,
or RNG draws happen unless corruption is actually observed, so a
ledger-enabled campaign with zero injected faults emits zero extra
trace material beyond its publish receipts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..errors import IntegrityError
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from .chain import DigestChain

__all__ = ["IntegrityLedger", "QuarantineRecord"]


@dataclass
class QuarantineRecord:
    """A dead-lettered record: its chain travels with it, it is never
    published."""

    path: str
    subject: str
    reason: str
    at: float
    chain: DigestChain

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "subject": self.subject,
            "reason": self.reason,
            "at": self.at,
            "chain": self.chain.to_dict(),
        }


@dataclass
class _Detection:
    mode: str
    kind: str
    path: str
    at: float
    seq: Optional[int] = None
    session_id: Optional[str] = None


class IntegrityLedger:
    """Campaign-wide digest chains plus the quarantine dead-letter."""

    def __init__(self, env: Any, tracer: Any = None, metrics: Any = None) -> None:
        self.env = env
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self.chains: dict[str, DigestChain] = {}
        self._by_subject: dict[str, str] = {}
        self.detections: list[_Detection] = []
        self.repairs: list[_Detection] = []
        self.quarantined: list[QuarantineRecord] = []
        self._quarantined_paths: set[str] = set()
        self.published: list[str] = []
        # Lazy counters: only corruption campaigns ever materialise them.
        self._m_detect: Any = None
        self._m_repair: Any = None
        self._m_quarantine: Any = None

    # -- chain bookkeeping (clean path: no spans, no metrics) --------------
    def begin(self, path: str, declared: str, subject: str, at: float) -> DigestChain:
        """Open (or return) the chain for ``path`` and attest
        ``acquired`` with the declared checksum."""
        chain = self.chains.get(path)
        if chain is None:
            chain = DigestChain(path=path, subject=subject, declared=declared)
            self.chains[path] = chain
            self._by_subject[subject] = path
            chain.attest("acquired", declared, at, by="watcher")
        return chain

    def chain(self, path: str) -> Optional[DigestChain]:
        return self.chains.get(path)

    def chain_for_subject(self, subject: str) -> Optional[DigestChain]:
        path = self._by_subject.get(subject)
        return None if path is None else self.chains.get(path)

    def attest(self, path: str, stage: str, digest: str, at: float, by: str) -> None:
        """Attest a hop for ``path``; a no-op when no chain is open
        (manually driven sessions outside the watched prefix)."""
        chain = self.chains.get(path)
        if chain is not None:
            chain.attest(stage, digest, at, by=by)

    # -- verification events (corruption path: spans + metrics) ------------
    def detect(
        self,
        mode: str,
        kind: str,
        path: str,
        seq: Optional[int] = None,
        session_id: Optional[str] = None,
    ) -> None:
        """Record a digest-verification failure (NAK, at-rest mismatch,
        verify-on-read, scrub hit)."""
        d = _Detection(
            mode=mode, kind=kind, path=path, at=self.env.now,
            seq=seq, session_id=session_id,
        )
        self.detections.append(d)
        if self._m_detect is None:
            self._m_detect = self._metrics.counter("integrity.detections")
        self._m_detect.inc()
        span = self.tracer.start("integrity.detect")
        try:
            span.set("mode", mode).set("kind", kind).set("path", path)
            if seq is not None:
                span.set("seq", seq)
            if session_id is not None:
                span.set("session_id", session_id)
        finally:
            span.finish()

    def repair(
        self,
        mode: str,
        kind: str,
        path: str,
        seq: Optional[int] = None,
        session_id: Optional[str] = None,
    ) -> None:
        """Record that a previously detected corruption was healed
        (a NAK'd chunk re-sent clean, a corrupt transfer retried)."""
        r = _Detection(
            mode=mode, kind=kind, path=path, at=self.env.now,
            seq=seq, session_id=session_id,
        )
        self.repairs.append(r)
        if self._m_repair is None:
            self._m_repair = self._metrics.counter("integrity.repairs")
        self._m_repair.inc()
        span = self.tracer.start("integrity.repair")
        try:
            span.set("mode", mode).set("kind", kind).set("path", path)
            if seq is not None:
                span.set("seq", seq)
            if session_id is not None:
                span.set("session_id", session_id)
        finally:
            span.finish()

    # -- quarantine ---------------------------------------------------------
    def quarantine(self, path: str, reason: str) -> Optional[QuarantineRecord]:
        """Dead-letter ``path`` with its chain.  Idempotent: a record
        already quarantined is not re-recorded (first reason wins)."""
        if path in self._quarantined_paths:
            return None
        chain = self.chains.get(path)
        if chain is None:
            chain = DigestChain(path=path, subject=path, declared="")
        record = QuarantineRecord(
            path=path,
            subject=chain.subject,
            reason=reason,
            at=self.env.now,
            chain=chain,
        )
        self._quarantined_paths.add(path)
        self.quarantined.append(record)
        if self._m_quarantine is None:
            self._m_quarantine = self._metrics.counter("integrity.quarantined")
        self._m_quarantine.inc()
        span = self.tracer.start("integrity.quarantine")
        try:
            span.set("path", path).set("subject", record.subject).set(
                "reason", reason
            )
        finally:
            span.finish()
        return record

    def is_quarantined(self, path: str) -> bool:
        return path in self._quarantined_paths

    # -- the publish gate ---------------------------------------------------
    def check_publishable(self, subject: str) -> tuple[bool, str]:
        """May ``subject`` be published to search?

        Unknown subjects (no chain opened — out-of-band ingests) pass.
        A known subject with an open chain is quarantined on the spot
        and refused; the caller must record the publish as FAILED and
        never index the document.  On success an ``integrity.publish``
        receipt span is emitted — the audit layer's proof that whatever
        reached the index had a closed chain at publish time.
        """
        path = self._by_subject.get(subject)
        if path is None:
            return True, ""
        chain = self.chains[path]
        reason = chain.why_open()
        if reason is not None or path in self._quarantined_paths:
            why = reason or "record already quarantined"
            self.quarantine(path, reason=f"publish blocked: {why}")
            return False, f"digest chain for {subject!r} does not close: {why}"
        self.published.append(path)
        span = self.tracer.start("integrity.publish")
        try:
            span.set("path", path).set("subject", subject)
        finally:
            span.finish()
        return True, ""

    # -- verify-on-read ------------------------------------------------------
    def verify_read(self, fs: Any, descriptor: dict) -> str:
        """Compare the staged payload's digest against the declared
        checksum before analysis touches it; raises
        :class:`IntegrityError` on mismatch (the compute task fails,
        the flow retries, and the record ends up quarantined)."""
        declared = descriptor["checksum"]
        staged = fs.stat(descriptor["dest_path"])
        actual = staged.payload_digest
        if actual != declared:
            self.detect("file", "read", path=descriptor["path"])
            raise IntegrityError(
                f"payload digest mismatch on read: {descriptor['dest_path']} "
                f"has {actual}, declared {declared}"
            )
        return actual

    # -- end-of-campaign scrub ----------------------------------------------
    def scrub(self, filesystems: Iterable[Any]) -> int:
        """Sweep at-rest stores for payloads that no longer match their
        declared checksum and quarantine each (rot that landed after
        the record's last consumption — dormant, but never silent).
        Returns the number of rotten files found."""
        found = 0
        for fs in filesystems:
            for f in fs:  # sorted-path iteration (VirtualFS.__iter__)
                if f.kind != "emd" or f.intact:
                    continue
                found += 1
                self.detect("file", "scrub", path=f.path)
                self.quarantine(
                    f.path,
                    reason=(
                        f"at-rest scrub: {fs.name}:{f.path} digest "
                        f"{f.payload_digest} does not match declared {f.checksum}"
                    ),
                )
        return found
