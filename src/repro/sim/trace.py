"""Step-level event tracing for bit-identity verification.

:class:`EventTraceRecorder` hooks the kernel's dispatch loop and records
one line per processed event — ``(time, priority, event type)`` at full
``repr`` float precision.  Two runs of the same model are *bit-identical*
exactly when their recorded traces are byte-identical: any change in
event ordering, count, timing, or kind shows up as a trace diff.

This is the measurement behind the golden-trace equivalence suite
(``tests/test_golden_traces.py``): traces recorded on a previous
implementation are checked into the repository, and the optimized kernel
and fabric must reproduce them exactly, under both the ``fifo`` and
``lifo`` same-tick tie-breaks.

The recorder deliberately captures the event's *type name*, not its
``repr()`` — reprs embed ``id()`` addresses that differ between
processes and would defeat byte comparison.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from .core import Environment, Event

__all__ = ["EventTraceRecorder"]


class EventTraceRecorder:
    """Record every dispatched event of an :class:`Environment`.

    Attaching a recorder routes the environment through the fully
    instrumented dispatch path (the no-hook fast loop is bypassed), so
    recording never changes *what* is scheduled — only how fast the
    queue drains.  Attach before the first ``run()``::

        env = Environment()
        rec = EventTraceRecorder(env)
        ...
        env.run()
        rec.lines  # ["0.0 0 Initialize", "1.0 1 Timeout", ...]
    """

    def __init__(self, env: Environment) -> None:
        if env._trace_hook is not None:
            raise ValueError("environment already has a trace recorder")
        self.env = env
        self.lines: list[str] = []
        env._trace_hook = self._on_step

    def _on_step(self, now: float, priority: int, event: Event) -> None:
        self.lines.append(f"{now!r} {priority} {type(event).__name__}")

    def detach(self) -> None:
        """Stop recording (the environment regains its fast loop)."""
        if self.env._trace_hook is self._on_step:
            self.env._trace_hook = None

    @property
    def text(self) -> str:
        """The full trace as one newline-joined string."""
        return "\n".join(self.lines)

    def sha256(self) -> str:
        """Digest of the trace text — a compact bit-identity fingerprint."""
        return hashlib.sha256(self.text.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EventTraceRecorder {len(self.lines)} events>"
