"""Shared-resource primitives for the DES kernel.

:class:`Resource`
    A counted resource (e.g. compute nodes, transfer slots) with a FIFO
    wait queue.  Requests are events; use them in ``with`` blocks inside
    process generators so releases happen even on interrupt::

        def job(env, nodes):
            with nodes.request() as req:
                yield req
                yield env.timeout(10)   # hold one unit for 10 s

:class:`Store`
    An unbounded (or capacity-bounded) FIFO queue of Python objects with
    blocking ``get``/``put`` events — the building block for task queues
    and mailboxes between simulated services.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .core import Environment, Event, URGENT

__all__ = ["Resource", "Request", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` unit.

    Usable as a context manager: exiting the block releases the unit (or
    cancels the request if it never succeeded).
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._on_request(self)

    def release(self) -> None:
        """Give the unit back (or withdraw a still-queued request)."""
        self.resource._on_release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.release()


class Resource:
    """``capacity`` interchangeable units with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Units currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim one unit; the returned event fires when granted."""
        return Request(self)

    # -- internal ---------------------------------------------------------
    def _on_request(self, req: Request) -> None:
        self.env.touch(self, "w")
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)

    def _on_release(self, req: Request) -> None:
        self.env.touch(self, "w")
        if req in self.users:
            self.users.remove(req)
            self._grant_next()
        else:
            # Withdrawn before being granted (e.g. interrupted process).
            try:
                self.queue.remove(req)
            except ValueError:
                pass

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class Store:
    """FIFO object queue with blocking ``put``/``get``.

    ``capacity`` bounds the number of stored items (default unbounded).
    An optional ``filter`` on :meth:`get` retrieves the first matching
    item (still FIFO among matches).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def pending_getters(self) -> int:
        """Number of get() requests currently blocked."""
        return len(self._getters)

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` is accepted into the store."""
        self.env.touch(self, "w")
        ev = Event(self.env)
        self._putters.append((ev, item))
        self._dispatch()
        return ev

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event that fires with the next (matching) item."""
        self.env.touch(self, "w")
        ev = Event(self.env)
        self._getters.append((ev, filter))
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Move pending puts into the buffer while there is room.
            while self._putters and len(self.items) < self.capacity:
                ev, item = self._putters.popleft()
                self.items.append(item)
                ev.succeed()
                progress = True
            # Satisfy getters from the buffer.
            i = 0
            while i < len(self._getters):
                ev, flt = self._getters[i]
                idx = None
                if flt is None:
                    if self.items:
                        idx = 0
                else:
                    for j, item in enumerate(self.items):
                        if flt(item):
                            idx = j
                            break
                if idx is None:
                    i += 1
                    continue
                item = self.items[idx]
                del self.items[idx]
                del self._getters[i]
                ev.succeed(item)
                progress = True
