"""Discrete-event simulation kernel.

The kernel executes the paper's 1-hour campaigns deterministically in
milliseconds while preserving event ordering, queueing, and overlap.  See
:mod:`repro.sim.core` for the process model, :mod:`repro.sim.resources`
for shared resources, and :mod:`repro.sim.realtime` for wall-clock pacing.
"""

from .core import (
    URGENT,
    NORMAL,
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from .realtime import RealtimeEnvironment
from .resources import Request, Resource, Store
from .sanitize import RaceReport, ScheduleSanitizer
from .trace import EventTraceRecorder

__all__ = [
    "Environment",
    "RealtimeEnvironment",
    "ScheduleSanitizer",
    "RaceReport",
    "EventTraceRecorder",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Condition",
    "AllOf",
    "AnyOf",
    "Resource",
    "Request",
    "Store",
    "URGENT",
    "NORMAL",
]
