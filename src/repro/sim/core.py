"""Generator-based discrete-event simulation kernel.

This is the substrate every simulated service (network fabric, transfer,
batch scheduler, flow executor) runs on.  The design follows the classic
process-interaction style (as popularized by SimPy): a *process* is a Python
generator that yields events; the kernel resumes it when the yielded
event fires.  The kernel is deliberately small, deterministic, and fully
observable:

* Events scheduled for the same timestamp fire in (priority, insertion)
  order — identical inputs always produce identical traces.
* Failures propagate: a process that yields a failed event has the
  exception thrown into it at the ``yield``; an unhandled failure escapes
  :meth:`Environment.run`.
* Time is a float in seconds and never moves backwards.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Condition",
    "AllOf",
    "AnyOf",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for same-timestamp ordering: urgent events (process
#: initialization, interrupts) fire before normal events (timeouts).
URGENT = 0
NORMAL = 1


class _Pending:
    """Sentinel for 'event has no value yet'."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _Pending()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An event that may succeed (with a value) or fail (with an exception).

    Lifecycle: *pending* → *triggered* (value set, scheduled on the queue)
    → *processed* (callbacks ran).  Callbacks receive the event itself.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_cancelled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._cancelled = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=NORMAL)
        return self

    def defused(self) -> None:
        """Mark a failed event as handled so :meth:`Environment.run` does
        not re-raise its exception."""
        self._defused = True

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after construction."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=self.delay, priority=NORMAL)


class Initialize(Event):
    """Internal: first resumption of a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A running process.  As an :class:`Event`, it triggers when the
    underlying generator returns (value = the generator's return value) or
    raises (failure)."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process() requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a dead process is an error; interrupting a process
        about to be resumed is allowed (the interrupt wins).  If the
        process terminates before the interrupt is delivered, the
        interrupt is dropped silently.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self.env._active_process is self:
            raise SimulationError("a process is not allowed to interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._deliver_interrupt)
        self.env.schedule(event, priority=URGENT)

    def _deliver_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return  # terminated between interrupt() and delivery
        # Detach from whatever the process is currently waiting on so the
        # stale event cannot resume it a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s value."""
        if self._value is not PENDING:
            return  # stale wakeup of a terminated process
        self.env._active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_target = self._generator.send(event._value)
                else:
                    # The awaited event failed: throw into the generator.
                    event.defused()
                    next_target = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                self.env.schedule(self, priority=NORMAL)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env.schedule(self, priority=NORMAL)
                break

            if not isinstance(next_target, Event) or next_target.env is not self.env:
                # Deliver the misuse error at the same yield point.
                msg = (
                    f"process yielded a non-event: {next_target!r}"
                    if not isinstance(next_target, Event)
                    else "cannot yield an event from another environment"
                )
                fake = Event(self.env)
                fake._ok = False
                fake._value = SimulationError(msg)
                fake._defused = True
                event = fake
                continue
            if next_target.processed:
                # Already fired: loop immediately with its value.
                event = next_target
                continue
            next_target.callbacks.append(self._resume)
            self._target = next_target
            break
        self.env._active_process = None


class Condition(Event):
    """Composite event over ``events`` that triggers once ``evaluate``
    says enough of them have fired (see :class:`AllOf` / :class:`AnyOf`).

    Succeeds with a dict mapping each *fired* constituent event to its
    value, in the order the constituents were given.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = tuple(events)
        self._evaluate = evaluate
        self._count = 0
        for e in self._events:
            if e.env is not env:
                raise SimulationError("condition spans multiple environments")
        if not self._events:
            self.succeed({})
            return
        for e in self._events:
            if e.processed:
                self._check(e)
            else:
                e.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self._events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused()
            return
        if not event._ok:
            event.defused()
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._count, len(self._events)):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when all constituent events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda done, total: done == total, events)


class AnyOf(Condition):
    """Fires when any constituent event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda done, total: done >= 1, events)


class _StopRun(BaseException):
    """Internal control-flow exception carrying run()'s return value."""


class Environment:
    """The event loop: a priority queue of (time, priority, seq, event).

    Parameters
    ----------
    initial_time:
        Starting simulation time (seconds).
    sanitize:
        Attach a :class:`~repro.sim.sanitize.ScheduleSanitizer` that
        records same-``(time, priority)`` event cohorts and shared-state
        touches, reporting orderings fixed only by insertion sequence
        (see :meth:`touch` and ``sanitizer.races()``).
    tiebreak:
        How same-``(time, priority)`` events are ordered: ``"fifo"``
        (insertion order, the documented default) or ``"lifo"`` (reverse
        insertion order).  A model free of schedule races produces
        identical traces under both — reversing the tie-break is how
        ``python -m repro sanitize`` confirms suspected races.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        *,
        sanitize: bool = False,
        tiebreak: str = "fifo",
    ) -> None:
        if tiebreak not in ("fifo", "lifo"):
            raise SimulationError(
                f"tiebreak must be 'fifo' or 'lifo', got {tiebreak!r}"
            )
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._cancelled_count = 0
        self._active_process: Optional[Process] = None
        self.tiebreak = tiebreak
        self._tiebreak_sign = 1 if tiebreak == "fifo" else -1
        if sanitize:
            from .sanitize import ScheduleSanitizer

            self.sanitizer: Optional[ScheduleSanitizer] = ScheduleSanitizer(self)
        else:
            self.sanitizer = None

    # -- inspection -------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Timestamp of the next scheduled event, or ``inf`` if none."""
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)
            self._cancelled_count -= 1
        return queue[0][0] if queue else float("inf")

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all of ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: any of ``events``."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Schedule ``event`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, self._tiebreak_sign * self._seq, event),
        )
        self._seq += 1
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(event)

    def cancel(self, event: Event) -> None:
        """Withdraw a scheduled-but-unprocessed event from the queue.

        The event's callbacks never run and its failure (if any) is
        never raised.  Lazy removal with periodic compaction keeps the
        heap bounded by the number of *live* entries, so components that
        routinely abandon timers (e.g. the network fabric re-planning
        around a new stream) do not leak one heap slot per abandonment.

        Only triggered events sit in the queue; cancelling an untriggered
        or already-processed event is an error.
        """
        if event.processed:
            raise SimulationError(f"cannot cancel processed event {event!r}")
        if not event.triggered:
            raise SimulationError(f"cannot cancel unscheduled event {event!r}")
        if event._cancelled:
            return
        event._cancelled = True
        self._cancelled_count += 1
        # Compact once tombstones dominate: O(live) amortized.
        if self._cancelled_count > 8 and self._cancelled_count * 2 > len(self._queue):
            self._queue = [e for e in self._queue if not e[3]._cancelled]
            heapq.heapify(self._queue)
            self._cancelled_count = 0

    def touch(self, obj: Any, mode: str = "r", label: Optional[str] = None) -> None:
        """Report a shared-state access to the schedule sanitizer.

        ``mode`` is ``"r"``, ``"w"``, or ``"rw"``; ``label`` overrides
        the deterministic auto-generated object name.  A no-op unless
        the environment was built with ``sanitize=True``, so hot paths
        may call it unconditionally.
        """
        if self.sanitizer is not None:
            self.sanitizer.touch(obj, mode, label)

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`SimulationError` if the queue is empty, and
        re-raises the exception of any failed event nobody defused.
        """
        while True:
            try:
                now, priority, _, event = heapq.heappop(self._queue)
            except IndexError:
                raise SimulationError("no more events") from None
            if event._cancelled:
                self._cancelled_count -= 1
                continue
            break
        self._now = now
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.begin_event(self._now, priority, event)
        callbacks, event.callbacks = event.callbacks, None
        try:
            for callback in callbacks:
                callback(event)
        finally:
            if sanitizer is not None:
                sanitizer.end_event()
        if event._ok is False and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue drains, simulation time reaches ``until``
        (a number), or ``until`` (an event) fires — returning its value."""
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:
                    # Already processed: nothing to run.
                    if stop._ok is False and not stop._defused:
                        raise stop._value
                    return stop._value
                stop.callbacks.append(self._stop_callback)
            else:
                at = float(until)
                if at < self._now:
                    raise SimulationError(
                        f"run(until={at}) is in the past (now={self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                self.schedule(stop, delay=at - self._now, priority=URGENT)
                stop.callbacks.append(self._stop_callback)
        try:
            while len(self._queue) > self._cancelled_count:
                self.step()
        except _StopRun as stop_exc:
            return stop_exc.args[0]
        if stop is not None and isinstance(until, Event):
            raise SimulationError(
                "run() finished: the until-event was never triggered"
            )
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok is False and not event._defused:
            raise event._value
        raise _StopRun(event._value)
