"""Generator-based discrete-event simulation kernel.

This is the substrate every simulated service (network fabric, transfer,
batch scheduler, flow executor) runs on.  The design follows the classic
process-interaction style (as popularized by SimPy): a *process* is a Python
generator that yields events; the kernel resumes it when the yielded
event fires.  The kernel is deliberately small, deterministic, and fully
observable:

* Events scheduled for the same timestamp fire in (priority, insertion)
  order — identical inputs always produce identical traces.
* Failures propagate: a process that yields a failed event has the
  exception thrown into it at the ``yield``; an unhandled failure escapes
  :meth:`Environment.run`.
* Time is a float in seconds and never moves backwards.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Condition",
    "AllOf",
    "AnyOf",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for same-timestamp ordering: urgent events (process
#: initialization, interrupts) fire before normal events (timeouts).
URGENT = 0
NORMAL = 1


class _Pending:
    """Sentinel for 'event has no value yet'."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _Pending()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An event that may succeed (with a value) or fail (with an exception).

    Lifecycle: *pending* → *triggered* (value set, scheduled on the queue)
    → *processed* (callbacks ran).  Callbacks receive the event itself.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_cancelled", "_skey")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._cancelled = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined ``env.schedule(self, priority=NORMAL)``: succeed() is
        # the hottest scheduling call in flow-heavy campaigns (stores,
        # resources, conditions, process termination), and a delay-0
        # NORMAL event always lands on the immediate lane.
        env = self.env
        seq = env._seq
        env._seq = seq + 1
        env._live += 1
        env._lane_normal_append((env._now, NORMAL, env._tiebreak_sign * seq, self))
        if env.sanitizer is not None:
            env.sanitizer.on_schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=NORMAL)
        return self

    def defused(self) -> None:
        """Mark a failed event as handled so :meth:`Environment.run` does
        not re-raise its exception."""
        self._defused = True

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after construction."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=self.delay, priority=NORMAL)


#: Pre-bound allocator for :meth:`Environment.timeout`'s inlined path.
_new_timeout = Timeout.__new__


class Initialize(Event):
    """Internal: first resumption of a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume_cb)
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A running process.  As an :class:`Event`, it triggers when the
    underlying generator returns (value = the generator's return value) or
    raises (failure)."""

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process() requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        # One bound method for the process's lifetime: _resume is
        # re-registered on every yield, and binding it fresh each time
        # is a per-event allocation.
        self._resume_cb: Callable[[Event], None] = self._resume
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a dead process is an error; interrupting a process
        about to be resumed is allowed (the interrupt wins).  If the
        process terminates before the interrupt is delivered, the
        interrupt is dropped silently.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self.env._active_process is self:
            raise SimulationError("a process is not allowed to interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._deliver_interrupt)
        # kernel-internal: the queue consumes the interrupt at delivery
        self.env.schedule(event, priority=URGENT)  # repro: noqa[R501]

    def _deliver_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return  # terminated between interrupt() and delivery
        # Detach from whatever the process is currently waiting on so the
        # stale event cannot resume it a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event, _PENDING=PENDING, _Event=Event) -> None:
        """Advance the generator with ``event``'s value.

        (The ``_PENDING``/``_Event`` defaults localize module globals —
        this runs once per dispatched event.)
        """
        if self._value is not _PENDING:
            return  # stale wakeup of a terminated process
        env = self.env
        env._active_process = self
        gen = self._generator
        while True:
            try:
                if event._ok:
                    next_target = gen.send(event._value)
                else:
                    # The awaited event failed: throw into the generator.
                    event._defused = True
                    next_target = gen.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                self._target = None
                env.schedule(self, priority=NORMAL)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self._target = None
                env.schedule(self, priority=NORMAL)
                break

            if not isinstance(next_target, _Event) or next_target.env is not env:
                # Deliver the misuse error at the same yield point.
                msg = (
                    f"process yielded a non-event: {next_target!r}"
                    if not isinstance(next_target, Event)
                    else "cannot yield an event from another environment"
                )
                fake = Event(env)
                fake._ok = False
                fake._value = SimulationError(msg)
                fake._defused = True
                event = fake
                continue
            callbacks = next_target.callbacks
            if callbacks is None:
                # Already fired: loop immediately with its value.
                event = next_target
                continue
            callbacks.append(self._resume_cb)
            self._target = next_target
            break
        env._active_process = None


def _defuse_stale(event: Event) -> None:
    """Left behind on a fired condition's unfired constituents: defuse a
    late failure (so it cannot crash the run) without retaining any
    reference to the condition itself."""
    if not event._ok:
        event._defused = True


class Condition(Event):
    """Composite event over ``events`` that triggers once ``evaluate``
    says enough of them have fired (see :class:`AllOf` / :class:`AnyOf`).

    Succeeds with a dict mapping each *fired* constituent event to its
    value, in the order the constituents were given.

    Once the condition triggers, its ``_check`` callback is detached
    from every still-pending constituent and replaced by the
    module-level :func:`_defuse_stale` — late failures stay defused, but
    the constituents no longer pin the condition (and everything its
    result dict references) in memory.  An ``AnyOf`` over one short and
    one long timer would otherwise keep the fired condition alive until
    the long timer drains.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = tuple(events)
        self._evaluate = evaluate
        self._count = 0
        for e in self._events:
            if e.env is not env:
                raise SimulationError("condition spans multiple environments")
        if not self._events:
            self.succeed({})
            return
        for e in self._events:
            if e.processed:
                self._check(e)
            elif self._value is not PENDING:
                # Triggered by an earlier constituent mid-loop: watch the
                # rest only for failures to defuse.
                e.callbacks.append(_defuse_stale)
            else:
                e.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self._events if e.processed and e._ok}

    def _detach_pending(self) -> None:
        """Swap ``_check`` for :func:`_defuse_stale` on unfired
        constituents (bound-method equality makes ``remove`` work)."""
        check = self._check
        for e in self._events:
            cbs = e.callbacks
            if cbs is not None:
                try:
                    cbs.remove(check)
                except ValueError:
                    continue
                cbs.append(_defuse_stale)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            # Stale call (constituent fired in the same tick the
            # condition triggered, before detach could see it).
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self._count += 1
            if not self._evaluate(self._count, len(self._events)):
                return
            self.succeed(self._collect())
        self._detach_pending()


class AllOf(Condition):
    """Fires when all constituent events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda done, total: done == total, events)


class AnyOf(Condition):
    """Fires when any constituent event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda done, total: done >= 1, events)


class _StopRun(BaseException):
    """Internal control-flow exception carrying run()'s return value."""


class Environment:
    """The event loop: a priority queue of (time, priority, seq, event).

    Parameters
    ----------
    initial_time:
        Starting simulation time (seconds).
    sanitize:
        Attach a :class:`~repro.sim.sanitize.ScheduleSanitizer` that
        records same-``(time, priority)`` event cohorts and shared-state
        touches, reporting orderings fixed only by insertion sequence
        (see :meth:`touch` and ``sanitizer.races()``).
    tiebreak:
        How same-``(time, priority)`` events are ordered: ``"fifo"``
        (insertion order, the documented default) or ``"lifo"`` (reverse
        insertion order).  A model free of schedule races produces
        identical traces under both — reversing the tie-break is how
        ``python -m repro sanitize`` confirms suspected races.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        *,
        sanitize: bool = False,
        tiebreak: str = "fifo",
    ) -> None:
        if tiebreak not in ("fifo", "lifo"):
            raise SimulationError(
                f"tiebreak must be 'fifo' or 'lifo', got {tiebreak!r}"
            )
        self._now = float(initial_time)
        # The queue is split three ways by traffic class, preserving the
        # single total order (time, priority, tiebreak_sign * seq) the
        # old one-heap design had:
        #
        # * ``_queue`` — a 4-tuple heap, now only for *exotic* entries:
        #   future URGENT events (the run-until stop event) and any
        #   priority outside {URGENT, NORMAL}.  Near-empty in practice.
        # * ``_lane_urgent`` / ``_lane_normal`` — deques of delay-0
        #   events (the dominant traffic: every succeed()/fail()/
        #   process-termination).  Invariant: dispatch always pops the
        #   global minimum, so time cannot advance while a lane is
        #   non-empty — all lane entries share the current timestamp,
        #   and within a lane the (priority, seq) key is monotone in
        #   append order.  fifo reads from the left end, lifo from the
        #   right.
        # * ``_buckets``/``_times`` — the timer store: NORMAL events
        #   with delay > 0 are grouped into per-timestamp buckets
        #   (``{time: [event, ...]}``, append order = seq order; the
        #   tie-break key rides on the event's ``_skey`` slot, saving a
        #   tuple per timer), with a heap over the *distinct* times.  Timestamps
        #   in simulated campaigns repeat heavily (synchronized ticks,
        #   common periods), so heap traffic drops from one push+pop of
        #   a 4-tuple per event to one push+pop of a bare float per
        #   distinct timestamp.  Bucketing by exact float equality is
        #   the same equivalence the heap's tuple comparison applied, so
        #   the dispatch order is bit-identical.
        # * ``_cur``/``_cur_idx`` — the bucket currently being drained
        #   (its time == ``_now``); ``_cur_idx`` is the fifo read
        #   cursor (lifo consumes from the right with ``pop()``).
        self._queue: list[tuple[float, int, int, Event]] = []
        self._lane_urgent: deque[tuple[float, int, int, Event]] = deque()
        self._lane_normal: deque[tuple[float, int, int, Event]] = deque()
        self._buckets: dict[float, list[Event]] = {}
        self._times: list[float] = []
        self._cur: Optional[list[Event]] = None
        self._cur_idx = 0
        # Pre-bound hot-path methods (the containers are only ever
        # mutated in place, never replaced, so these stay valid).
        self._lane_normal_append = self._lane_normal.append
        self._buckets_get = self._buckets.get
        #: Set once any entry with a priority outside {URGENT, NORMAL}
        #: is scheduled; the fast drain falls back to the general pop
        #: path so such entries keep their exact ordering.
        self._has_exotic = False
        self._seq = 0
        self._cancelled_count = 0
        #: Live (scheduled, not yet dispatched, not cancelled) entries —
        #: maintained incrementally at every schedule/cancel/dispatch
        #: site so the run loop's "any work left?" test is O(1) instead
        #: of an O(#buckets) scan per event.  Invariant:
        #: ``_n_pending() - _cancelled_count == _live``.
        self._live = 0
        self._active_process: Optional[Process] = None
        #: Optional ``(now, priority, event)`` callable invoked as each
        #: event is dispatched (see :mod:`repro.sim.trace`).
        self._trace_hook: Optional[Callable[[float, int, "Event"], None]] = None
        self.tiebreak = tiebreak
        self._tiebreak_sign = 1 if tiebreak == "fifo" else -1
        if sanitize:
            from .sanitize import ScheduleSanitizer

            self.sanitizer: Optional[ScheduleSanitizer] = ScheduleSanitizer(self)
        else:
            self.sanitizer = None

    # -- inspection -------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Timestamp of the next scheduled event, or ``inf`` if none."""
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)
            self._cancelled_count -= 1
        best = queue[0][0] if queue else float("inf")
        fifo = self._tiebreak_sign == 1
        for lane in (self._lane_urgent, self._lane_normal):
            while lane and (lane[0] if fifo else lane[-1])[3]._cancelled:
                if fifo:
                    lane.popleft()
                else:
                    lane.pop()
                self._cancelled_count -= 1
            if lane:
                t = (lane[0] if fifo else lane[-1])[0]
                if t < best:
                    best = t
        cur = self._cur
        if cur is not None:
            if fifo:
                idx = self._cur_idx
                while idx < len(cur) and cur[idx]._cancelled:
                    idx += 1
                    self._cancelled_count -= 1
                self._cur_idx = idx
                if idx >= len(cur):
                    self._cur = None
                elif self._now < best:
                    best = self._now
            else:
                while cur and cur[-1]._cancelled:
                    cur.pop()
                    self._cancelled_count -= 1
                if not cur:
                    self._cur = None
                elif self._now < best:
                    best = self._now
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            while bucket and (bucket[0] if fifo else bucket[-1])._cancelled:
                if fifo:
                    del bucket[0]
                else:
                    bucket.pop()
                self._cancelled_count -= 1
            if bucket:
                if t < best:
                    best = t
                break
            heapq.heappop(times)
            del buckets[t]
        return best

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(
        self,
        delay: float,
        value: Any = None,
        # Private defaults: module/builtin lookups hoisted to definition
        # time for the kernel's hottest factory.
        _new=_new_timeout,
        _Timeout=Timeout,
        _float=float,
        _heappush=heapq.heappush,
    ) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        # Inlined construction: timeout() is the kernel's hottest factory
        # (every simulated wait), so skip the Event.__init__ super-call
        # chain and the schedule() indirection.  Timeout(...) remains the
        # equivalent spelled-out path for direct constructor use.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        ev = _new(_Timeout)
        ev.env = self
        ev.callbacks = []
        ev._ok = True
        ev._value = value
        ev._defused = False
        ev._cancelled = False
        ev.delay = delay = delay if delay.__class__ is _float else _float(delay)
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        t = self._now + delay
        if t == self._now:
            # delay == 0, or small enough to underflow the addition:
            # either way the event fires at the current timestamp, which
            # is exactly what the immediate lane holds (a ``t == now``
            # bucket would escape the bucket-drain's preemption checks
            # under the lifo tie-break).
            self._lane_normal_append((t, NORMAL, self._tiebreak_sign * seq, ev))
        else:
            ev._skey = self._tiebreak_sign * seq
            bucket = self._buckets_get(t)
            if bucket is None:
                self._buckets[t] = [ev]
                _heappush(self._times, t)
            else:
                bucket.append(ev)
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(ev)
        return ev

    def process(self, generator: Generator) -> Process:
        """Start a process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all of ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: any of ``events``."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Schedule ``event`` to fire ``delay`` seconds from now."""
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0 and (priority == NORMAL or priority == URGENT):
            # Immediate lane: same (time, priority, seq) key the heap
            # would assign, minus the heap.
            entry = (self._now, priority, self._tiebreak_sign * seq, event)
            if priority == NORMAL:
                self._lane_normal.append(entry)
            else:
                self._lane_urgent.append(entry)
        elif priority == NORMAL:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            # Timer store: bucket by exact target timestamp.  A delay
            # small enough to underflow (t == now) belongs on the
            # immediate lane, like timeout().
            t = self._now + delay
            if t == self._now:
                self._lane_normal.append(
                    (t, NORMAL, self._tiebreak_sign * seq, event)
                )
            else:
                event._skey = self._tiebreak_sign * seq
                bucket = self._buckets.get(t)
                if bucket is None:
                    self._buckets[t] = [event]
                    heapq.heappush(self._times, t)
                else:
                    bucket.append(event)
        else:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            if priority != URGENT:
                self._has_exotic = True
            heapq.heappush(
                self._queue,
                (self._now + delay, priority, self._tiebreak_sign * seq, event),
            )
        self._live += 1
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(event)

    def cancel(self, event: Event) -> None:
        """Withdraw a scheduled-but-unprocessed event from the queue.

        The event's callbacks never run and its failure (if any) is
        never raised.  Lazy removal with periodic compaction keeps the
        heap bounded by the number of *live* entries, so components that
        routinely abandon timers (e.g. the network fabric re-planning
        around a new stream) do not leak one heap slot per abandonment.

        Only triggered events sit in the queue; cancelling an untriggered
        or already-processed event is an error.
        """
        if event.processed:
            raise SimulationError(f"cannot cancel processed event {event!r}")
        if not event.triggered:
            raise SimulationError(f"cannot cancel unscheduled event {event!r}")
        if event._cancelled:
            return
        event._cancelled = True
        self._cancelled_count += 1
        self._live -= 1
        if self._cancelled_count > 8 and self._cancelled_count * 2 > self._n_pending():
            self._compact()

    def _n_pending(self) -> int:
        """Total scheduled-but-undispatched entries, tombstones included."""
        n = len(self._queue) + len(self._lane_urgent) + len(self._lane_normal)
        if self._buckets:
            # integer sum: exact and associative, so bucket-dict order
            # (which tracks timer churn) cannot perturb the count.
            n += sum(map(len, self._buckets.values()))  # repro: noqa[N703]
        cur = self._cur
        if cur is not None:
            n += len(cur)
            if self._tiebreak_sign == 1:
                n -= self._cur_idx
        return n

    def _compact(self) -> None:
        """Drop tombstones from every structure: O(live) amortized.
        All filtering is in-place (``[:] =`` / ``clear``+``extend``) so
        local references held by the fast run loop stay valid across a
        compaction triggered from inside a callback."""
        self._queue[:] = [e for e in self._queue if not e[3]._cancelled]
        heapq.heapify(self._queue)
        for lane in (self._lane_urgent, self._lane_normal):
            if lane:
                live = [e for e in lane if not e[3]._cancelled]
                lane.clear()
                lane.extend(live)
        buckets = self._buckets
        if buckets:
            dead_times = []
            for t, bucket in buckets.items():
                bucket[:] = [e for e in bucket if not e._cancelled]
                if not bucket:
                    dead_times.append(t)
            if dead_times:
                for t in dead_times:
                    del buckets[t]
                self._times[:] = buckets.keys()
                heapq.heapify(self._times)
        cur = self._cur
        if cur is not None:
            if self._tiebreak_sign == 1:
                # Filter only the unread tail; the fifo cursor (local
                # copies included) stays valid.
                idx = self._cur_idx
                cur[idx:] = [e for e in cur[idx:] if not e._cancelled]
            else:
                cur[:] = [e for e in cur if not e._cancelled]
        self._cancelled_count = 0

    def touch(self, obj: Any, mode: str = "r", label: Optional[str] = None) -> None:
        """Report a shared-state access to the schedule sanitizer.

        ``mode`` is ``"r"``, ``"w"``, or ``"rw"``; ``label`` overrides
        the deterministic auto-generated object name.  A no-op unless
        the environment was built with ``sanitize=True``, so hot paths
        may call it unconditionally.
        """
        if self.sanitizer is not None:
            self.sanitizer.touch(obj, mode, label)

    def _open_bucket(self) -> Optional[tuple[float, int, int, Event]]:
        """Pop the head of the *earliest* timer bucket, installing any
        remainder as the current bucket.

        Returns None when the timer store is empty, or when the
        earliest bucket held only tombstones (it is dropped; the caller
        must re-decide against the exotic heap, whose top may now come
        first — skipping ahead here would leapfrog it)."""
        fifo = self._tiebreak_sign == 1
        times = self._times
        if not times:
            return None
        t = heapq.heappop(times)
        bucket = self._buckets.pop(t)
        if fifo:
            idx = 0
            n = len(bucket)
            while idx < n and bucket[idx]._cancelled:
                idx += 1
                self._cancelled_count -= 1
            if idx >= n:
                return None
            event = bucket[idx]
            if idx + 1 < n:
                self._cur = bucket
                self._cur_idx = idx + 1
        else:
            while bucket and bucket[-1]._cancelled:
                bucket.pop()
                self._cancelled_count -= 1
            if not bucket:
                return None
            event = bucket.pop()
            if bucket:
                self._cur = bucket
        return (t, NORMAL, event._skey, event)

    def _pop_entry(self) -> Optional[tuple[float, int, int, Event]]:
        """Pop the globally-minimum live entry across all structures."""
        fifo = self._tiebreak_sign == 1
        now = self._now
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)
            self._cancelled_count -= 1
        lane_u = self._lane_urgent
        while lane_u and (lane_u[0] if fifo else lane_u[-1])[3]._cancelled:
            if fifo:
                lane_u.popleft()
            else:
                lane_u.pop()
            self._cancelled_count -= 1
        if lane_u:
            # Urgent-now beats everything except an exotic heap entry at
            # (now, priority < URGENT) or same-priority smaller seq.
            su = (lane_u[0] if fifo else lane_u[-1])[2]
            if queue:
                e = queue[0]
                if e[0] == now and (e[1] < URGENT or (e[1] == URGENT and e[2] < su)):
                    return heapq.heappop(queue)
            return lane_u.popleft() if fifo else lane_u.pop()
        lane_n = self._lane_normal
        while lane_n and (lane_n[0] if fifo else lane_n[-1])[3]._cancelled:
            if fifo:
                lane_n.popleft()
            else:
                lane_n.pop()
            self._cancelled_count -= 1
        # NORMAL candidates at the current timestamp: the immediate
        # lane, the current bucket remainder, or an unopened bucket
        # whose time equals now (a timer landing exactly at a timestamp
        # the clock already reached via an urgent/exotic event).
        sn = (lane_n[0] if fifo else lane_n[-1])[2] if lane_n else None
        cur = self._cur
        sc = None
        if cur is not None:
            if fifo:
                idx = self._cur_idx
                n = len(cur)
                while idx < n and cur[idx]._cancelled:
                    idx += 1
                    self._cancelled_count -= 1
                self._cur_idx = idx
                if idx >= n:
                    cur = self._cur = None
                else:
                    sc = cur[idx]._skey
            else:
                while cur and cur[-1]._cancelled:
                    cur.pop()
                    self._cancelled_count -= 1
                if not cur:
                    cur = self._cur = None
                else:
                    sc = cur[-1]._skey
        sb = None
        times = self._times
        buckets = self._buckets
        while times and times[0] == now:
            bucket = buckets[now]
            while bucket and (bucket[0] if fifo else bucket[-1])._cancelled:
                if fifo:
                    del bucket[0]
                else:
                    bucket.pop()
                self._cancelled_count -= 1
            if bucket:
                sb = (bucket[0] if fifo else bucket[-1])._skey
                break
            heapq.heappop(times)
            del buckets[now]
        # cur and an unopened now-bucket cannot coexist (one bucket per
        # timestamp, removed from the store when opened), but lane_n can
        # accompany either: pick the smallest seq key.
        best = sn
        src = 1
        if sc is not None and (best is None or sc < best):
            best, src = sc, 2
        if sb is not None and (best is None or sb < best):
            best, src = sb, 3
        if best is not None:
            if queue:
                e = queue[0]
                if e[0] == now and e[1] < NORMAL:
                    return heapq.heappop(queue)
            if src == 1:
                return lane_n.popleft() if fifo else lane_n.pop()
            if src == 2:
                if fifo:
                    idx = self._cur_idx
                    event = cur[idx]
                    idx += 1
                    if idx >= len(cur):
                        self._cur = None
                    else:
                        self._cur_idx = idx
                else:
                    event = cur.pop()
                    if not cur:
                        self._cur = None
                return (now, NORMAL, event._skey, event)
            return self._open_bucket()
        # Nothing at the current timestamp: advance to the earliest of
        # the exotic heap and the timer store.
        while True:
            t = times[0] if times else None
            if queue:
                e = queue[0]
                if t is None or e[0] < t or (e[0] == t and e[1] < NORMAL):
                    return heapq.heappop(queue)
            elif t is None:
                return None
            entry = self._open_bucket()
            if entry is not None:
                return entry

    def _has_pending(self) -> bool:
        return self._live > 0

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`SimulationError` if the queue is empty, and
        re-raises the exception of any failed event nobody defused.
        """
        entry = self._pop_entry()
        if entry is None:
            raise SimulationError("no more events")
        self._live -= 1
        now, priority, _, event = entry
        self._now = now
        if self._trace_hook is not None:
            self._trace_hook(now, priority, event)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.begin_event(self._now, priority, event)
        callbacks, event.callbacks = event.callbacks, None
        try:
            for callback in callbacks:
                callback(event)
        finally:
            if sanitizer is not None:
                sanitizer.end_event()
        if event._ok is False and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue drains, simulation time reaches ``until``
        (a number), or ``until`` (an event) fires — returning its value."""
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:
                    # Already processed: nothing to run.
                    if stop._ok is False and not stop._defused:
                        raise stop._value
                    return stop._value
                stop.callbacks.append(self._stop_callback)
            else:
                at = float(until)
                if at < self._now:
                    raise SimulationError(
                        f"run(until={at}) is in the past (now={self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                self.schedule(stop, delay=at - self._now, priority=URGENT)
                stop.callbacks.append(self._stop_callback)
        try:
            if (
                self.sanitizer is None
                and self._trace_hook is None
                and type(self) is Environment
            ):
                # No observers attached and no step() override possible:
                # dispatch in the tight loop.
                self._run_fast()
            else:
                while self._has_pending():
                    self.step()
        except _StopRun as stop_exc:
            return stop_exc.args[0]
        if stop is not None and isinstance(until, Event):
            raise SimulationError(
                "run() finished: the until-event was never triggered"
            )
        return None

    # repro: hotpath
    def _run_fast(self) -> None:
        """Drain the queue without per-event observer checks.

        Byte-identical to ``while self._has_pending(): self.step()`` —
        the same pop order, the same dispatch, the same failure
        propagation — minus the sanitizer/trace-hook tests and the
        method-call overhead per event.  Only entered when no sanitizer
        or trace hook is attached and ``type(self) is Environment`` (a
        subclass overriding :meth:`step` gets the stepping loop).

        The hot branch drains one timer bucket at a stretch.  While a
        bucket drains, already-queued exotic-heap entries cannot
        preempt its remainder (they lost the tie when the bucket was
        opened, on time or on priority, and stay lost), and new
        preemption can only arrive through the urgent lane (delay-0
        URGENT), the normal lane under the lifo tie-break (newer seq
        wins ties), or a fresh exotic-heap push (negative priority) —
        so only those three are checked per event.  Under fifo a
        lane-normal append (newer seq) sorts after every bucket entry
        and needs no check.
        """
        queue = self._queue
        lane_u = self._lane_urgent
        lane_n = self._lane_normal
        times = self._times
        pop_entry = self._pop_entry
        heappop = heapq.heappop
        lifo = self._tiebreak_sign != 1
        while True:
            if lane_u or lane_n:
                if (
                    self._has_exotic
                    or self._cur is not None
                    or (queue and queue[0][0] == self._now)
                    or (times and times[0] == self._now)
                ):
                    # Something else shares the current timestamp: full
                    # multi-way merge, one event at a time.
                    entry = pop_entry()
                    if entry is None:
                        return
                else:
                    # Lean lane drain: nothing outside the lanes exists
                    # at the current timestamp, and nothing can join it
                    # (delay-0 lands in the lanes; delay>0 lands later;
                    # exotic priorities are excluded above).  Urgent
                    # entries precede normal ones outright, so no key
                    # comparisons are needed.
                    nq = len(queue)
                    fifo = not lifo
                    while True:
                        if lane_u:
                            lane = lane_u
                        elif lane_n:
                            lane = lane_n
                        else:
                            break
                        event = (lane.popleft() if fifo else lane.pop())[3]
                        if event._cancelled:
                            self._cancelled_count -= 1
                            continue
                        self._live -= 1
                        callbacks = event.callbacks
                        event.callbacks = None
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
                        if event._ok is False and not event._defused:
                            raise event._value
                        if len(queue) != nq or self._cur is not None:
                            break  # new work may share this timestamp
                    continue
            elif self._has_exotic:
                entry = pop_entry()
                if entry is None:
                    return
            elif self._cur is None:
                # Next source: exotic heap vs timer store.
                if self._cancelled_count:
                    while queue and queue[0][3]._cancelled:
                        heappop(queue)
                        self._cancelled_count -= 1
                if queue:
                    e = queue[0]
                    t = times[0] if times else None
                    if t is None or e[0] < t or (e[0] == t and e[1] < NORMAL):
                        entry = heappop(queue)
                    else:
                        entry = self._open_bucket()
                        if entry is None:
                            continue  # dead bucket dropped; re-decide
                else:
                    entry = self._open_bucket()
                    if entry is None:
                        if not times:
                            return
                        continue  # dead bucket dropped; retry
            else:
                entry = None  # resume the current bucket
            if entry is not None:
                self._live -= 1
                self._now = entry[0]
                event = entry[3]
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
                if self._cur is None:
                    continue
            cur = self._cur
            if (
                cur is None
                or lane_u
                or (lifo and lane_n)
                or self._has_exotic
                or (queue and queue[0][0] == self._now)
            ):
                continue  # outer loop re-dispatches via the general path
            # Inline drain of the current bucket's remainder.  The
            # fifo bound is captured once (``n``); a compaction inside a
            # callback can shrink ``cur`` and leave ``n`` stale, so the
            # read is guarded by the (zero-cost-until-raised)
            # IndexError as a safety net — every introspection path
            # (peek, _pop_entry, _n_pending, _compact) tolerates a
            # fully-read ``_cur``, so exhaustion may be discovered
            # lazily on that read.
            nq = len(queue)
            n = len(cur)
            while True:
                if lifo:
                    try:
                        event = cur.pop()
                    except IndexError:
                        self._cur = None
                        break
                else:
                    idx = self._cur_idx
                    try:
                        event = cur[idx]
                    except IndexError:
                        self._cur = None
                        break
                    self._cur_idx = idx + 1
                if event._cancelled:
                    self._cancelled_count -= 1
                    continue
                self._live -= 1
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
                if lifo:
                    if not cur:
                        if self._cur is cur:
                            self._cur = None
                        break
                elif self._cur_idx >= n:
                    if self._cur is cur:
                        self._cur = None
                    break
                if self._cur is not cur:
                    break  # swapped out by a nested run()
                if lane_u or (lifo and lane_n) or len(queue) != nq:
                    break  # new work may precede the remainder

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok is False and not event._defused:
            raise event._value
        raise _StopRun(event._value)
