"""Dynamic schedule-race sanitizer for the DES kernel.

The kernel guarantees that events scheduled for the same ``(time,
priority)`` fire in insertion order — deterministic, but *arbitrary*: if
two of those events touch the same shared object and at least one
writes, the model's behaviour silently depends on which line of code
happened to schedule first.  Such flows replay identically under one
kernel but reorder under any legitimate alternative tie-break — the
classic schedule race that only shows up after an innocent refactor.

:class:`ScheduleSanitizer` is the dynamic detector.  With
``Environment(sanitize=True)`` the kernel calls :meth:`begin_event` /
:meth:`end_event` around every firing, and instrumented shared state
(:class:`~repro.sim.resources.Resource` / ``Store`` mutations, flow-run
registry writes, scheduler counters) reports accesses through
:meth:`Environment.touch`.  Touches are grouped into same-``(time,
priority)`` *cohorts* — the sets of firings ordered only by insertion
sequence.  A cohort where two distinct firings by two distinct actors
touch one object, at least once as a write, is reported as a
:class:`RaceReport` — unless the firings are *causally ordered*: an
event scheduled while another fires always pops after it under every
tie-break, so a put that resumes the very process whose next get lands
in the same cohort is a chain, not a race.

The static half of the story lives in :mod:`repro.lint`; the
confirmation step — rerunning with ``Environment(tiebreak="lifo")`` and
diffing traces — lives in :mod:`repro.core.sanitize`.

All bookkeeping is deterministic: actors and objects are named in
first-touch order (``Resource#1``, ``Process(run)#3``), never by memory
address, so two identical runs produce byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Environment, Event

__all__ = ["ScheduleSanitizer", "RaceReport"]

#: Access-mode lattice: merging any access with a write stays a write.
_MERGE = {
    ("r", "r"): "r",
    ("r", "w"): "rw",
    ("r", "rw"): "rw",
    ("w", "r"): "rw",
    ("w", "w"): "w",
    ("w", "rw"): "rw",
    ("rw", "r"): "rw",
    ("rw", "w"): "rw",
    ("rw", "rw"): "rw",
}


def _writes(mode: str) -> bool:
    return "w" in mode


@dataclass(frozen=True)
class RaceReport:
    """One same-tick ordering hazard.

    ``actors`` pairs each participating firing with its access mode, in
    firing order — exactly the order the current tie-break imposed and a
    different tie-break would reverse.
    """

    time: float
    priority: int
    obj: str
    actors: tuple[tuple[str, str], ...]  # ((actor name, mode), ...) in firing order

    def describe(self) -> str:
        accesses = ", ".join(f"{name}[{mode}]" for name, mode in self.actors)
        return (
            f"t={self.time!r} priority={self.priority}: {self.obj} touched by "
            f"{accesses} in the same scheduling cohort — their order is fixed "
            f"only by insertion sequence"
        )


class _Firing:
    """One event being processed: its cohort key and display ordinal."""

    __slots__ = ("key", "ordinal")

    def __init__(self, key: tuple[float, int], ordinal: int) -> None:
        self.key = key
        self.ordinal = ordinal


class ScheduleSanitizer:
    """Record shared-state touches per scheduling cohort and report races.

    Created by ``Environment(sanitize=True)``; user code interacts with
    it only through :meth:`Environment.touch` and :meth:`races`.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._current: Optional[_Firing] = None
        self._fired = 0
        #: cohort key -> object label -> (firing ordinal, actor) -> mode
        self._cohorts: dict[
            tuple[float, int], dict[str, dict[tuple[int, str], str]]
        ] = {}
        #: happens-before: event identity -> ordinal of the firing that
        #: scheduled it (strong ref kept until the event pops).
        self._scheduled_during: dict[int, tuple[int, Any]] = {}
        #: firing ordinal -> ordinal of its scheduling firing.
        self._parent: dict[int, int] = {}
        #: deterministic naming: object identity -> assigned label,
        #: with strong refs pinning identities for the run's lifetime.
        self._labels: dict[int, str] = {}
        self._pinned: list[Any] = []
        self._kind_counts: dict[str, int] = {}

    # -- kernel hooks ---------------------------------------------------
    def on_schedule(self, event: "Event") -> None:
        """Record which firing (if any) scheduled ``event``."""
        if self._current is not None:
            self._scheduled_during[id(event)] = (self._current.ordinal, event)

    def begin_event(self, time: float, priority: int, event: "Event") -> None:
        ordinal = self._fired
        self._fired += 1
        parent = self._scheduled_during.pop(id(event), None)
        if parent is not None:
            self._parent[ordinal] = parent[0]
        self._current = _Firing((time, priority), ordinal)

    def end_event(self) -> None:
        self._current = None

    def _ordered(self, earlier: int, later: int) -> bool:
        """Whether firing ``earlier`` happens-before firing ``later``
        through the scheduling chain (parents always fire first, so
        ordinals strictly decrease along the chain)."""
        current: Optional[int] = later
        while current is not None and current > earlier:
            current = self._parent.get(current)
        return current == earlier

    # -- naming ---------------------------------------------------------
    def _kind(self, obj: Any) -> str:
        generator = getattr(obj, "_generator", None)
        if generator is not None:
            fn = getattr(generator, "__name__", "process")
            return f"Process({fn})"
        return type(obj).__name__

    def _name(self, obj: Any) -> str:
        label = self._labels.get(id(obj))
        if label is None:
            kind = self._kind(obj)
            n = self._kind_counts.get(kind, 0) + 1
            self._kind_counts[kind] = n
            label = f"{kind}#{n}"
            self._labels[id(obj)] = label
            self._pinned.append(obj)
        return label

    # -- recording ------------------------------------------------------
    def touch(self, obj: Any, mode: str = "r", label: Optional[str] = None) -> None:
        """Record an access to shared state during the current firing.

        Touches outside event processing (testbed construction, post-run
        inspection) have no scheduling cohort and are ignored.
        """
        firing = self._current
        if firing is None:
            return
        if mode not in ("r", "w", "rw"):
            raise ValueError(f"touch mode must be 'r', 'w' or 'rw', got {mode!r}")
        actor: Any = self.env.active_process
        if actor is None:
            actor_name = f"event@{firing.ordinal}"
        else:
            actor_name = self._name(actor)
        obj_label = label if label is not None else self._name(obj)
        cohort = self._cohorts.setdefault(firing.key, {})
        accesses = cohort.setdefault(obj_label, {})
        entry = (firing.ordinal, actor_name)
        previous = accesses.get(entry)
        accesses[entry] = mode if previous is None else _MERGE[(previous, mode)]

    # -- reporting ------------------------------------------------------
    def _racy_pair(
        self, entries: list[tuple[tuple[int, str], str]]
    ) -> Optional[list[tuple[tuple[int, str], str]]]:
        """The first pair of touches whose ordering is seq-only: distinct
        firings, distinct actors, at least one write, causally unordered."""
        for i, ((ord_a, actor_a), mode_a) in enumerate(entries):
            for (ord_b, actor_b), mode_b in entries[i + 1:]:
                if ord_a == ord_b or actor_a == actor_b:
                    continue
                if not (_writes(mode_a) or _writes(mode_b)):
                    continue
                if self._ordered(ord_a, ord_b):
                    continue
                return [((ord_a, actor_a), mode_a), ((ord_b, actor_b), mode_b)]
        return None

    def races(self) -> list[RaceReport]:
        """All cohorts where ordering is fixed only by insertion sequence.

        A race needs, on one object within one cohort: two firings
        (separately popped events) by two distinct actors, at least one
        of them writing, with neither firing causally scheduled by the
        other.
        """
        out: list[RaceReport] = []
        for key in sorted(self._cohorts):
            time, priority = key
            for obj_label in sorted(self._cohorts[key]):
                accesses = self._cohorts[key][obj_label]
                entries = sorted(accesses.items())  # by (ordinal, actor)
                if self._racy_pair(entries) is None:
                    continue
                out.append(
                    RaceReport(
                        time=time,
                        priority=priority,
                        obj=obj_label,
                        actors=tuple(
                            (name, mode) for (_, name), mode in entries
                        ),
                    )
                )
        return out
