"""Wall-clock-paced environment.

:class:`RealtimeEnvironment` runs the same event queue as
:class:`~repro.sim.core.Environment` but sleeps between events so that one
simulated second takes ``1 / speedup`` wall seconds.  Examples use it to
demo the data flows "live" without waiting a real hour; tests and
benchmarks always use the pure (as-fast-as-possible) environment.
"""

from __future__ import annotations

import time as _time

from ..errors import SimulationError
from .core import Environment

__all__ = ["RealtimeEnvironment"]


class RealtimeEnvironment(Environment):
    """An :class:`Environment` synchronized to the wall clock.

    Parameters
    ----------
    initial_time:
        Starting simulation time (seconds).
    speedup:
        Simulated seconds per wall second.  ``speedup=60`` plays one
        simulated minute per real second.
    strict:
        If True, raise when event processing itself falls behind the wall
        clock (useful to detect oversubscribed demos); if False (default),
        lag is silently absorbed.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        speedup: float = 1.0,
        strict: bool = False,
    ) -> None:
        if speedup <= 0:
            raise SimulationError(f"speedup must be positive, got {speedup}")
        super().__init__(initial_time)
        self.speedup = float(speedup)
        self.strict = bool(strict)
        self._wall_start: float | None = None
        self._sim_start = float(initial_time)

    def step(self) -> None:
        """Sleep until the next event's wall-clock due time, then process it."""
        if self._wall_start is None:
            self._wall_start = _time.monotonic()
        due_sim = self.peek()
        if due_sim == float("inf"):
            super().step()  # raises 'no more events'
            return
        due_wall = self._wall_start + (due_sim - self._sim_start) / self.speedup
        while True:
            delta = due_wall - _time.monotonic()
            if delta <= 0:
                break
            _time.sleep(min(delta, 0.05))
        if self.strict and _time.monotonic() - due_wall > 0.5 / self.speedup:
            raise SimulationError(
                f"realtime environment fell behind at t={due_sim:.3f}s"
            )
        super().step()
