"""Service-side authorization: scope checks and resource ACLs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

from ..errors import PermissionDenied
from .identity import AuthClient, Identity, Token

__all__ = ["Authorizer", "ScopeAuthorizer", "AccessPolicy"]


class Authorizer(Protocol):
    """Anything that can authenticate a token into an identity."""

    def authorize(self, token: Token, now: float) -> Identity:  # pragma: no cover
        ...


class ScopeAuthorizer:
    """Validates that a token is live and carries a required scope.

    Each simulated service owns one of these, mirroring how each Globus
    service validates its own scope on every API call.
    """

    def __init__(self, client: AuthClient, scope: str) -> None:
        self._client = client
        self.scope = scope

    def authorize(self, token: Token, now: float) -> Identity:
        """Return the authenticated identity or raise."""
        return self._client.validate(token, self.scope, now)


@dataclass
class AccessPolicy:
    """Per-resource ACL: which identity URNs may read / write.

    The sentinel ``"public"`` in ``readers`` makes a resource readable by
    anyone — Globus Search uses the same convention for ``visible_to``.
    """

    readers: set[str] = field(default_factory=set)
    writers: set[str] = field(default_factory=set)

    PUBLIC = "public"

    def allow_read(self, *principals: "Identity | str") -> "AccessPolicy":
        self.readers.update(self._urns(principals))
        return self

    def allow_write(self, *principals: "Identity | str") -> "AccessPolicy":
        self.writers.update(self._urns(principals))
        return self

    def can_read(self, identity: Identity) -> bool:
        return (
            self.PUBLIC in self.readers
            or identity.urn in self.readers
            or self.can_write(identity)
        )

    def can_write(self, identity: Identity) -> bool:
        return identity.urn in self.writers

    def check_read(self, identity: Identity, what: str = "resource") -> None:
        if not self.can_read(identity):
            raise PermissionDenied(f"{identity.username!r} may not read {what}")

    def check_write(self, identity: Identity, what: str = "resource") -> None:
        if not self.can_write(identity):
            raise PermissionDenied(f"{identity.username!r} may not write {what}")

    @staticmethod
    def _urns(principals: Iterable["Identity | str"]) -> list[str]:
        out = []
        for p in principals:
            out.append(p.urn if isinstance(p, Identity) else str(p))
        return out
