"""Globus-Auth-style identity and authorization substrate.

The paper's services (Transfer, Compute, Search) all sit behind Globus
Auth: OAuth tokens scoped per service, checked on every request.  This
package reproduces that structure — identities, scoped bearer tokens with
expiry, and authorizers that services consult — so that every simulated
service call carries (and validates) credentials exactly like the real
data flows do.
"""

from .identity import AuthClient, Identity, Token, TokenStore
from .authorizer import AccessPolicy, Authorizer, ScopeAuthorizer

__all__ = [
    "Identity",
    "Token",
    "TokenStore",
    "AuthClient",
    "Authorizer",
    "ScopeAuthorizer",
    "AccessPolicy",
]
