"""Identities and scoped bearer tokens.

A minimal OAuth-like model: an :class:`AuthClient` registers identities
(users, service accounts) and issues :class:`Token` objects bound to an
identity, a set of scopes, and an expiry time.  Services validate tokens
through the same client.  Clock time is supplied by the caller (the DES
environment's ``now``), keeping this module free of wall-clock coupling.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import AuthError, PermissionDenied

__all__ = ["Identity", "Token", "TokenStore", "AuthClient"]

#: Canonical scope names used by the data-flow services, mirroring the
#: Globus service scopes the paper's stack requests.
TRANSFER_SCOPE = "urn:repro:transfer.all"
COMPUTE_SCOPE = "urn:repro:compute.all"
SEARCH_INGEST_SCOPE = "urn:repro:search.ingest"
SEARCH_QUERY_SCOPE = "urn:repro:search.query"
FLOWS_SCOPE = "urn:repro:flows.run"

ALL_SCOPES = (
    TRANSFER_SCOPE,
    COMPUTE_SCOPE,
    SEARCH_INGEST_SCOPE,
    SEARCH_QUERY_SCOPE,
    FLOWS_SCOPE,
)


@dataclass(frozen=True)
class Identity:
    """A principal: a human user or a robot/service account."""

    username: str
    organization: str = ""
    is_robot: bool = False

    @property
    def urn(self) -> str:
        """Stable URN used in ACLs and ``visible_to`` lists."""
        return f"urn:repro:identity:{self.username}"


@dataclass(frozen=True)
class Token:
    """A bearer token bound to an identity, scopes, and expiry."""

    token_id: str
    identity: Identity
    scopes: frozenset[str]
    issued_at: float
    expires_at: float

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def has_scope(self, scope: str) -> bool:
        return scope in self.scopes


class TokenStore:
    """Client-side token cache with transparent refresh.

    The paper's lightweight watcher application holds long-lived refresh
    credentials and mints fresh access tokens as needed; this mirrors
    that: :meth:`get` returns a valid token for the scope, refreshing
    through the :class:`AuthClient` when the cached one is near expiry.
    """

    #: Refresh when less than this many seconds of validity remain.
    REFRESH_MARGIN = 60.0

    def __init__(self, client: "AuthClient", identity: Identity) -> None:
        self._client = client
        self.identity = identity
        self._cache: dict[frozenset[str], Token] = {}

    def get(self, scopes: Iterable[str], now: float) -> Token:
        """A valid token covering ``scopes`` at time ``now``."""
        key = frozenset(scopes)
        tok = self._cache.get(key)
        if tok is None or tok.expires_at - now < self.REFRESH_MARGIN:
            tok = self._client.issue_token(self.identity, key, now)
            self._cache[key] = tok
        return tok


class AuthClient:
    """The identity provider: registers identities, issues and validates
    tokens, supports revocation."""

    #: Default token lifetime (seconds); Globus access tokens live ~48 h,
    #: shortened here so expiry paths are exercised in simulated hours.
    DEFAULT_LIFETIME = 6 * 3600.0

    def __init__(self, lifetime: float = DEFAULT_LIFETIME) -> None:
        if lifetime <= 0:
            raise AuthError(f"token lifetime must be positive, got {lifetime}")
        self.lifetime = float(lifetime)
        self._identities: dict[str, Identity] = {}
        self._tokens: dict[str, Token] = {}
        self._revoked: set[str] = set()

    # -- identity management ------------------------------------------------
    def register_identity(
        self, username: str, organization: str = "", is_robot: bool = False
    ) -> Identity:
        """Create (or return the existing) identity for ``username``."""
        existing = self._identities.get(username)
        if existing is not None:
            return existing
        ident = Identity(username=username, organization=organization, is_robot=is_robot)
        self._identities[username] = ident
        return ident

    def get_identity(self, username: str) -> Identity:
        try:
            return self._identities[username]
        except KeyError:
            raise AuthError(f"unknown identity: {username!r}") from None

    # -- token lifecycle ------------------------------------------------------
    def issue_token(
        self,
        identity: Identity,
        scopes: Iterable[str],
        now: float,
        lifetime: Optional[float] = None,
    ) -> Token:
        """Issue a bearer token for a registered identity."""
        if identity.username not in self._identities:
            raise AuthError(f"identity not registered: {identity.username!r}")
        scopes = frozenset(scopes)
        unknown = scopes - set(ALL_SCOPES)
        if unknown:
            raise AuthError(f"unknown scopes requested: {sorted(unknown)}")
        life = self.lifetime if lifetime is None else float(lifetime)
        tok = Token(
            token_id=secrets.token_hex(16),
            identity=identity,
            scopes=scopes,
            issued_at=float(now),
            expires_at=float(now) + life,
        )
        self._tokens[tok.token_id] = tok
        return tok

    def validate(self, token: Token, scope: str, now: float) -> Identity:
        """Validate ``token`` for ``scope``, returning the authenticated
        identity.  Raises :class:`AuthError` / :class:`PermissionDenied`.
        """
        known = self._tokens.get(token.token_id)
        if known is None or known is not token:
            raise AuthError("token was not issued by this authority")
        if token.token_id in self._revoked:
            raise AuthError("token has been revoked")
        if token.is_expired(now):
            raise AuthError(
                f"token expired at t={token.expires_at:.0f} (now t={now:.0f})"
            )
        if not token.has_scope(scope):
            raise PermissionDenied(
                f"token for {token.identity.username!r} lacks scope {scope!r}"
            )
        return token.identity

    def revoke(self, token: Token) -> None:
        """Invalidate a token immediately."""
        self._revoked.add(token.token_id)
