"""The flows service: deploys definitions and executes runs.

This is the Globus Flows / Gladier execution model (Sec. 2.2): a cloud
state machine advances through action states; on each state it submits
the action to its provider, then **polls** for completion under the
exponential-backoff policy.  Every state transition costs a service
round-trip (``transition_latency_s``), and each poll costs a small API
latency — together these produce the orchestration overhead the paper
measures at 49.2% / 21.1% of median runtime.

Runs execute concurrently ("Globus services allow parallel flow
execution that enables us to start new flows even when previous ones
are still running", Sec. 3.3).

Reliability (Globus Flows "manages the reliable execution of each
step"): each provider may carry a :class:`~repro.flows.retry.RetryPolicy`
— bounded re-submission with seeded-jitter backoff, a per-attempt
sim-time timeout whose deadline timer is withdrawn with
``Environment.cancel`` on normal completion, dead-letter records for
runs that exhaust retries on a critical state, and graceful degradation
(skip + catch-up backlog) for non-critical ones.  With no policies
configured the executor is bit-identical to the retry-free one: no
extra events, no RNG draws, no extra spans.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Iterator, Optional

from ..auth import ScopeAuthorizer, Token
from ..auth.identity import FLOWS_SCOPE, AuthClient
from ..errors import ActionTimeout, FlowError, ServiceUnavailable
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_SPAN, NULL_TRACER
from ..rng import RngRegistry, lognormal_from_median
from ..sim import Environment
from .action import ActionProvider, ActionState, ActionStatus
from .backoff import PAPER_BACKOFF, ExponentialBackoff
from .definition import FlowDefinition
from .retry import (
    AttemptRecord,
    BacklogEntry,
    DEFAULT_RETRY_POLICY,
    DeadLetter,
    RetryPolicy,
)
from .run import FlowRun, RunStatus, StepRecord

__all__ = ["FlowsService"]


class FlowsService:
    """Deploy + run flows against registered action providers.

    Parameters
    ----------
    env:
        Simulation environment.
    auth:
        Identity provider (runs require the flows scope).
    transition_latency_s / transition_sigma:
        Median cloud round-trip per state transition (enter state,
        resolve parameters, submit action) and per flow start/finish.
    poll_latency_s:
        API round-trip added to each poll.
    backoff:
        Polling policy (defaults to the paper's 1 s → 10 min doubling).
    retry_policies:
        Optional ``{provider name: RetryPolicy}``; providers without an
        entry get the no-retry :data:`DEFAULT_RETRY_POLICY`.
    """

    def __init__(
        self,
        env: Environment,
        auth: AuthClient,
        rngs: Optional[RngRegistry] = None,
        transition_latency_s: float = 1.5,
        transition_sigma: float = 0.35,
        poll_latency_s: float = 0.15,
        backoff: "ExponentialBackoff | Any" = PAPER_BACKOFF,
        retry_policies: "dict[str, RetryPolicy] | None" = None,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        self.env = env
        self.authorizer = ScopeAuthorizer(auth, FLOWS_SCOPE)
        self.rngs = rngs or RngRegistry(seed=0)
        self.transition_latency_s = float(transition_latency_s)
        self.transition_sigma = float(transition_sigma)
        self.poll_latency_s = float(poll_latency_s)
        self.backoff = backoff
        self.retry_policies: dict[str, RetryPolicy] = dict(retry_policies or {})
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        m = self._metrics
        self._m_started = m.counter("flows.runs_started")
        self._m_succeeded = m.counter("flows.runs_succeeded")
        self._m_failed = m.counter("flows.runs_failed")
        self._m_polls = m.counter("flows.polls")
        self._m_transitions = m.counter("flows.transitions")
        self._m_runtime = m.histogram("flows.runtime_s")
        self._m_active_runs = m.gauge("flows.active_runs")
        #: Chaos-path instruments, registered lazily on first use so a
        #: clean campaign's metrics export is bit-identical to one built
        #: before the retry machinery existed.
        self._lazy_counters: dict[str, Any] = {}
        self._providers: dict[str, ActionProvider] = {}
        self._definitions: dict[str, FlowDefinition] = {}
        self._runs: dict[str, FlowRun] = {}
        self._flow_ids = itertools.count(1)
        self._run_ids = itertools.count(1)
        #: Dead-letter records for runs that exhausted critical retries.
        self.dead_letters: list[DeadLetter] = []
        #: Catch-up queue of degraded (skipped) non-critical actions.
        self.backlog: list[BacklogEntry] = []

    # -- registry ----------------------------------------------------------
    def register_provider(self, provider: ActionProvider) -> None:
        if provider.name in self._providers:
            raise FlowError(f"provider already registered: {provider.name!r}")
        self._providers[provider.name] = provider

    def provider(self, name: str) -> ActionProvider:
        try:
            return self._providers[name]
        except KeyError:
            raise FlowError(f"unknown action provider: {name!r}") from None

    def retry_policy(self, provider_name: str) -> RetryPolicy:
        """The retry policy in force for ``provider_name``."""
        return self.retry_policies.get(provider_name, DEFAULT_RETRY_POLICY)

    def deploy(self, definition: FlowDefinition) -> str:
        """Validate provider references and register the flow."""
        for state in definition.states:
            self.provider(state.provider)  # raises if missing
        flow_id = f"flow-{next(self._flow_ids):03d}"
        self._definitions[flow_id] = definition
        return flow_id

    def definition(self, flow_id: str) -> FlowDefinition:
        try:
            return self._definitions[flow_id]
        except KeyError:
            raise FlowError(f"unknown flow id: {flow_id!r}") from None

    # -- execution ------------------------------------------------------------
    def run_flow(self, token: Token, flow_id: str, input: dict[str, Any]) -> FlowRun:
        """Start a run; returns immediately with an ACTIVE FlowRun."""
        self.authorizer.authorize(token, self.env.now)
        definition = self.definition(flow_id)
        run = FlowRun(
            run_id=f"run-{next(self._run_ids):06d}",
            flow_title=definition.title,
            input=dict(input),
            started_at=self.env.now,
            completed=self.env.event(),
        )
        self.env.touch(self._runs, "w", label="flows.runs")
        self._runs[run.run_id] = run
        self._m_started.inc()
        self._m_active_runs.add(1)
        run_span = (
            self.tracer.start("flow.run")
            .set("run_id", run.run_id)
            .set("flow", definition.title)
        )
        self.env.process(self._execute(definition, run, run_span))
        return run

    def get_run(self, run_id: str) -> FlowRun:
        try:
            return self._runs[run_id]
        except KeyError:
            raise FlowError(f"unknown run id: {run_id!r}") from None

    @property
    def runs(self) -> list[FlowRun]:
        return sorted(self._runs.values(), key=lambda r: r.run_id)

    @property
    def active_run_count(self) -> int:
        return sum(1 for r in self._runs.values() if not r.status.terminal)

    # -- internals ---------------------------------------------------------------
    def _counter(self, name: str):
        """Lazily registered counter (see ``_lazy_counters``)."""
        c = self._lazy_counters.get(name)
        if c is None:
            c = self._metrics.counter(name)
            self._lazy_counters[name] = c
        return c

    def _transition(self) -> Generator:
        rng = self.rngs.stream("flows.latency")
        delay = lognormal_from_median(
            rng, self.transition_latency_s, self.transition_sigma
        )
        if delay > 0:
            yield self.env.timeout(delay)

    def _attempt(
        self,
        provider: ActionProvider,
        body: dict[str, Any],
        step: StepRecord,
        step_span: Any,
        policy: RetryPolicy,
    ) -> Generator:
        """Drive one submission attempt to a terminal :class:`ActionStatus`.

        Raises :class:`ServiceUnavailable` when the provider's service is
        in an outage window, and :class:`ActionTimeout` when the policy's
        per-attempt sim-time budget runs out.  The deadline timer (when
        configured) is withdrawn via :meth:`Environment.cancel` on every
        exit path so abandoned attempts never leak queue entries.
        """
        deadline = (
            self.env.timeout(policy.attempt_timeout_s)
            if policy.attempt_timeout_s is not None
            else None
        )
        try:
            step.action_id = provider.run(body)
            step.submitted_at = self.env.now
            step_span.set("action_id", step.action_id)
            for interval in self.backoff.intervals():
                poll_span = self.tracer.start("flow.poll", step_span)
                try:
                    wait = self.env.timeout(interval + self.poll_latency_s)
                    if deadline is None:
                        yield wait
                    else:
                        yield self.env.any_of([wait, deadline])
                        if deadline.processed and not wait.processed:
                            self.env.cancel(wait)
                            poll_span.set("state", "TIMEOUT")
                            raise ActionTimeout(
                                f"action {step.action_id} exceeded its "
                                f"{policy.attempt_timeout_s}s attempt budget"
                            )
                    step.polls += 1
                    self._m_polls.inc()
                    try:
                        status = provider.status(step.action_id)
                    except ServiceUnavailable:
                        poll_span.set("state", "UNAVAILABLE")
                        raise
                    poll_span.set("state", status.state.value)
                    if status.state.terminal:
                        return status
                finally:
                    poll_span.finish()
        finally:
            if deadline is not None and not deadline.processed:
                self.env.cancel(deadline)

    def _retry_intervals(self, policy: RetryPolicy) -> Iterator[float]:
        """Backoff intervals between attempts; jitter draws come from the
        dedicated ``flows.retry`` stream (touched only on retries)."""
        rng = (
            self.rngs.stream("flows.retry")
            if getattr(policy.backoff, "jitter", 0.0)
            else None
        )
        return policy.backoff.intervals(rng)

    def _drive_state(
        self,
        state: Any,
        provider: ActionProvider,
        body: dict[str, Any],
        run: FlowRun,
        step: StepRecord,
        step_span: Any,
    ) -> Generator:
        """Run one flow state under its provider's retry policy.

        Returns the terminal :class:`ActionStatus` on success, or
        ``None`` when the state was *degraded* (skipped + backlogged).
        Raises :class:`FlowError` when the run must fail.
        """
        policy = self.retry_policy(state.provider)
        retry_waits: Optional[Iterator[float]] = None
        last_status: Optional[ActionStatus] = None
        while True:
            attempt = AttemptRecord(
                number=len(step.attempt_history) + 1, started_at=self.env.now
            )
            step.attempt_history.append(attempt)
            failure: Optional[str] = None
            try:
                status: ActionStatus = yield from self._attempt(
                    provider, body, step, step_span, policy
                )
            except ServiceUnavailable as exc:
                attempt.outcome = "unavailable"
                attempt.error = str(exc)
                failure = f"service unavailable: {exc}"
                # The client hangs for the connect timeout before the
                # error surfaces — charge that wait in sim time.
                if exc.connect_timeout_s > 0:
                    yield self.env.timeout(exc.connect_timeout_s)
            except ActionTimeout as exc:
                attempt.outcome = "timeout"
                attempt.error = str(exc)
                failure = str(exc)
            else:
                if status.state is ActionState.FAILED:
                    last_status = status
                    attempt.outcome = "failed"
                    attempt.error = status.error
                    failure = status.error or "action failed"
                else:
                    attempt.outcome = "succeeded"
                    attempt.ended_at = self.env.now
                    return status
            attempt.ended_at = self.env.now

            if len(step.attempt_history) < policy.max_attempts:
                self._counter("flows.retries").inc()
                retry_span = (
                    self.tracer.start("flow.retry", step_span)
                    .set("attempt", attempt.number)
                    .set("error", attempt.error or "")
                )
                try:
                    if retry_waits is None:
                        retry_waits = self._retry_intervals(policy)
                    delay = next(retry_waits)
                    if delay > 0:
                        yield self.env.timeout(delay)
                finally:
                    retry_span.finish()
                continue

            # Exhausted.  Non-critical states degrade; critical ones
            # dead-letter and fail the run.
            if not policy.critical:
                self._counter("flows.degraded_steps").inc()
                step.degraded = True
                step.error = failure
                run.degraded = True
                self.env.touch(self.backlog, "w", label="flows.backlog")
                self.backlog.append(
                    BacklogEntry(
                        run_id=run.run_id,
                        state=state.name,
                        provider=state.provider,
                        body=dict(body),
                        enqueued_at=self.env.now,
                    )
                )
                step_span.set("degraded", True)
                return None
            self._counter("flows.dead_letters").inc()
            self.dead_letters.append(
                DeadLetter(
                    run_id=run.run_id,
                    flow_title=run.flow_title,
                    state=state.name,
                    provider=state.provider,
                    attempts=list(step.attempt_history),
                    error=failure or "unknown failure",
                    recorded_at=self.env.now,
                )
            )
            # Same terminal bookkeeping the success path gets, so a
            # failed step's span and StepRecord still agree on timing.
            step.detected_at = self.env.now
            if last_status is not None:
                step.active_seconds = last_status.active_seconds
            step.error = failure
            step_span.set("polls", step.polls)
            step_span.set("active_s", step.active_seconds)
            step_span.set("status", "FAILED").finish()
            raise FlowError(f"state {state.name!r} failed: {failure}")

    def _execute(
        self, definition: FlowDefinition, run: FlowRun, run_span: Any = NULL_SPAN
    ) -> Generator:
        context: dict[str, Any] = {"input": run.input, "states": {}}
        step_span = NULL_SPAN
        try:
            for state in definition.ordered_states():
                step = StepRecord(
                    name=state.name, provider=state.provider, entered_at=self.env.now
                )
                run.steps.append(step)
                step_span = (
                    self.tracer.start("flow.step", run_span)
                    .set("state", state.name)
                    .set("provider", state.provider)
                )
                # Cloud transition: enter state, resolve, submit.
                t_span = self.tracer.start("flow.transition", step_span)
                try:
                    yield from self._transition()
                finally:
                    t_span.finish()
                self._m_transitions.inc()
                provider = self.provider(state.provider)
                body = state.resolve(context)

                status = yield from self._drive_state(
                    state, provider, body, run, step, step_span
                )
                step.detected_at = self.env.now
                step_span.set("polls", step.polls)
                if status is None:
                    # Degraded: the state was skipped and backlogged.
                    step.result = {}
                    step_span.set("active_s", 0.0)
                    step_span.set("status", "DEGRADED").finish()
                    step_span = NULL_SPAN
                    self.env.touch(run, "w", label=f"flows.{run.run_id}.states")
                    context["states"][state.name] = {}
                    continue
                step.active_seconds = status.active_seconds
                step_span.set("active_s", status.active_seconds)
                step.result = status.result
                step_span.set("status", "SUCCEEDED").finish()
                step_span = NULL_SPAN
                self.env.touch(run, "w", label=f"flows.{run.run_id}.states")
                context["states"][state.name] = status.result

            # Final transition: mark the run complete in the cloud.
            t_span = self.tracer.start("flow.transition", run_span)
            try:
                yield from self._transition()
            finally:
                t_span.finish()
            self._m_transitions.inc()
            run.status = RunStatus.SUCCEEDED
        except FlowError as exc:
            run.status = RunStatus.FAILED
            run.error = str(exc)
        except Exception as exc:
            # A non-FlowError escaping a provider or template resolution
            # used to leave the run terminally ACTIVE while `completed`
            # fired — waiters observed a "completed" run in a
            # non-terminal state.  Record the failure, then re-raise so
            # the kernel still surfaces the programming error loudly.
            run.status = RunStatus.FAILED
            run.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            # Close any step span left open by an abnormal exit.
            if not step_span.ended:
                step_span.set("status", run.status.value).finish()
            run.finished_at = self.env.now
            run_span.set("status", run.status.value)
            if run.degraded:
                run_span.set("degraded", True)
            run_span.finish()
            self._m_active_runs.add(-1)
            if run.status is RunStatus.SUCCEEDED:
                self._m_succeeded.inc()
            else:
                self._m_failed.inc()
            self._m_runtime.observe(run.finished_at - run.started_at)
            if run.completed is not None:
                run.completed.succeed(run)
