"""The flows service: deploys definitions and executes runs.

This is the Globus Flows / Gladier execution model (Sec. 2.2): a cloud
state machine advances through action states; on each state it submits
the action to its provider, then **polls** for completion under the
exponential-backoff policy.  Every state transition costs a service
round-trip (``transition_latency_s``), and each poll costs a small API
latency — together these produce the orchestration overhead the paper
measures at 49.2% / 21.1% of median runtime.

Runs execute concurrently ("Globus services allow parallel flow
execution that enables us to start new flows even when previous ones
are still running", Sec. 3.3).
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from ..auth import ScopeAuthorizer, Token
from ..auth.identity import FLOWS_SCOPE, AuthClient
from ..errors import FlowError
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_SPAN, NULL_TRACER
from ..rng import RngRegistry, lognormal_from_median
from ..sim import Environment
from .action import ActionProvider, ActionState
from .backoff import PAPER_BACKOFF, ExponentialBackoff
from .definition import FlowDefinition
from .run import FlowRun, RunStatus, StepRecord

__all__ = ["FlowsService"]


class FlowsService:
    """Deploy + run flows against registered action providers.

    Parameters
    ----------
    env:
        Simulation environment.
    auth:
        Identity provider (runs require the flows scope).
    transition_latency_s / transition_sigma:
        Median cloud round-trip per state transition (enter state,
        resolve parameters, submit action) and per flow start/finish.
    poll_latency_s:
        API round-trip added to each poll.
    backoff:
        Polling policy (defaults to the paper's 1 s → 10 min doubling).
    """

    def __init__(
        self,
        env: Environment,
        auth: AuthClient,
        rngs: Optional[RngRegistry] = None,
        transition_latency_s: float = 1.5,
        transition_sigma: float = 0.35,
        poll_latency_s: float = 0.15,
        backoff: "ExponentialBackoff | Any" = PAPER_BACKOFF,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        self.env = env
        self.authorizer = ScopeAuthorizer(auth, FLOWS_SCOPE)
        self.rngs = rngs or RngRegistry(seed=0)
        self.transition_latency_s = float(transition_latency_s)
        self.transition_sigma = float(transition_sigma)
        self.poll_latency_s = float(poll_latency_s)
        self.backoff = backoff
        self.tracer = tracer if tracer is not None else NULL_TRACER
        m = metrics if metrics is not None else NULL_METRICS
        self._m_started = m.counter("flows.runs_started")
        self._m_succeeded = m.counter("flows.runs_succeeded")
        self._m_failed = m.counter("flows.runs_failed")
        self._m_polls = m.counter("flows.polls")
        self._m_transitions = m.counter("flows.transitions")
        self._m_runtime = m.histogram("flows.runtime_s")
        self._m_active_runs = m.gauge("flows.active_runs")
        self._providers: dict[str, ActionProvider] = {}
        self._definitions: dict[str, FlowDefinition] = {}
        self._runs: dict[str, FlowRun] = {}
        self._flow_ids = itertools.count(1)
        self._run_ids = itertools.count(1)

    # -- registry ----------------------------------------------------------
    def register_provider(self, provider: ActionProvider) -> None:
        if provider.name in self._providers:
            raise FlowError(f"provider already registered: {provider.name!r}")
        self._providers[provider.name] = provider

    def provider(self, name: str) -> ActionProvider:
        try:
            return self._providers[name]
        except KeyError:
            raise FlowError(f"unknown action provider: {name!r}") from None

    def deploy(self, definition: FlowDefinition) -> str:
        """Validate provider references and register the flow."""
        for state in definition.states:
            self.provider(state.provider)  # raises if missing
        flow_id = f"flow-{next(self._flow_ids):03d}"
        self._definitions[flow_id] = definition
        return flow_id

    def definition(self, flow_id: str) -> FlowDefinition:
        try:
            return self._definitions[flow_id]
        except KeyError:
            raise FlowError(f"unknown flow id: {flow_id!r}") from None

    # -- execution ------------------------------------------------------------
    def run_flow(self, token: Token, flow_id: str, input: dict[str, Any]) -> FlowRun:
        """Start a run; returns immediately with an ACTIVE FlowRun."""
        self.authorizer.authorize(token, self.env.now)
        definition = self.definition(flow_id)
        run = FlowRun(
            run_id=f"run-{next(self._run_ids):06d}",
            flow_title=definition.title,
            input=dict(input),
            started_at=self.env.now,
            completed=self.env.event(),
        )
        self.env.touch(self._runs, "w", label="flows.runs")
        self._runs[run.run_id] = run
        run_span = (
            self.tracer.start("flow.run")
            .set("run_id", run.run_id)
            .set("flow", definition.title)
        )
        self._m_started.inc()
        self._m_active_runs.add(1)
        self.env.process(self._execute(definition, run, run_span))
        return run

    def get_run(self, run_id: str) -> FlowRun:
        try:
            return self._runs[run_id]
        except KeyError:
            raise FlowError(f"unknown run id: {run_id!r}") from None

    @property
    def runs(self) -> list[FlowRun]:
        return sorted(self._runs.values(), key=lambda r: r.run_id)

    # -- internals ---------------------------------------------------------------
    def _transition(self) -> Generator:
        rng = self.rngs.stream("flows.latency")
        delay = lognormal_from_median(
            rng, self.transition_latency_s, self.transition_sigma
        )
        if delay > 0:
            yield self.env.timeout(delay)

    def _execute(
        self, definition: FlowDefinition, run: FlowRun, run_span: Any = NULL_SPAN
    ) -> Generator:
        context: dict[str, Any] = {"input": run.input, "states": {}}
        step_span = NULL_SPAN
        try:
            for state in definition.ordered_states():
                step = StepRecord(
                    name=state.name, provider=state.provider, entered_at=self.env.now
                )
                run.steps.append(step)
                step_span = (
                    self.tracer.start("flow.step", run_span)
                    .set("state", state.name)
                    .set("provider", state.provider)
                )
                # Cloud transition: enter state, resolve, submit.
                t_span = self.tracer.start("flow.transition", step_span)
                yield from self._transition()
                t_span.finish()
                self._m_transitions.inc()
                provider = self.provider(state.provider)
                body = state.resolve(context)
                step.action_id = provider.run(body)
                step.submitted_at = self.env.now
                step_span.set("action_id", step.action_id)

                status = None
                for interval in self.backoff.intervals():
                    poll_span = self.tracer.start("flow.poll", step_span)
                    yield self.env.timeout(interval + self.poll_latency_s)
                    step.polls += 1
                    self._m_polls.inc()
                    status = provider.status(step.action_id)
                    poll_span.set("state", status.state.value).finish()
                    if status.state.terminal:
                        break
                assert status is not None
                step.detected_at = self.env.now
                step.active_seconds = status.active_seconds
                step_span.set("polls", step.polls)
                step_span.set("active_s", status.active_seconds)
                if status.state is ActionState.FAILED:
                    step.error = status.error
                    step_span.set("status", "FAILED").finish()
                    raise FlowError(
                        f"state {state.name!r} failed: {status.error}"
                    )
                step.result = status.result
                step_span.set("status", "SUCCEEDED").finish()
                step_span = NULL_SPAN
                self.env.touch(run, "w", label=f"flows.{run.run_id}.states")
                context["states"][state.name] = status.result

            # Final transition: mark the run complete in the cloud.
            t_span = self.tracer.start("flow.transition", run_span)
            yield from self._transition()
            t_span.finish()
            self._m_transitions.inc()
            run.status = RunStatus.SUCCEEDED
        except FlowError as exc:
            run.status = RunStatus.FAILED
            run.error = str(exc)
        except Exception as exc:
            # A non-FlowError escaping a provider or template resolution
            # used to leave the run terminally ACTIVE while `completed`
            # fired — waiters observed a "completed" run in a
            # non-terminal state.  Record the failure, then re-raise so
            # the kernel still surfaces the programming error loudly.
            run.status = RunStatus.FAILED
            run.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            # Close any step span left open by an abnormal exit.
            if not step_span.ended:
                step_span.set("status", run.status.value).finish()
            run.finished_at = self.env.now
            run_span.set("status", run.status.value).finish()
            self._m_active_runs.add(-1)
            if run.status is RunStatus.SUCCEEDED:
                self._m_succeeded.inc()
            else:
                self._m_failed.inc()
            self._m_runtime.observe(run.finished_at - run.started_at)
            if run.completed is not None:
                run.completed.succeed(run)
