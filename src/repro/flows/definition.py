"""Flow definitions: a validated linear/branching state machine.

A :class:`FlowDefinition` is a named set of :class:`FlowState` entries —
each binds an action provider to a parameter template — plus a start
state.  Parameter templates use a JSONPath-like subset: any string value
beginning with ``"$."`` is resolved against the run context, e.g.
``"$.input.source_path"`` or ``"$.states.TransferData.task_id"``, which
is how Globus Flows threads one step's output into the next.  A doubled
sigil escapes: ``"$$.raw"`` passes the literal string ``"$.raw"``
through unresolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import FlowDefinitionError

__all__ = ["FlowState", "FlowDefinition", "resolve_template"]


def resolve_template(value: Any, context: dict[str, Any]) -> Any:
    """Recursively resolve ``$.`` references in ``value`` against
    ``context``.  Unknown paths raise :class:`FlowDefinitionError`
    naming the first path segment that failed to resolve.

    A literal string that genuinely starts with ``$.`` is written with a
    doubled sigil: ``"$$.literal"`` resolves to the plain string
    ``"$.literal"`` without any context lookup.
    """
    if isinstance(value, str) and value.startswith("$$."):
        return value[1:]  # escape: "$$.x" -> literal "$.x"
    if isinstance(value, str) and value.startswith("$."):
        node: Any = context
        path = value[2:]
        for part in path.split("."):
            if isinstance(node, dict) and part in node:
                node = node[part]
            else:
                available = sorted(node) if isinstance(node, dict) else type(node).__name__
                raise FlowDefinitionError(
                    f"template path {value!r}: segment {part!r} not found "
                    f"in run context (available here: {available})"
                )
        return node
    if isinstance(value, dict):
        return {k: resolve_template(v, context) for k, v in value.items()}
    if isinstance(value, list):
        return [resolve_template(v, context) for v in value]
    return value


@dataclass(frozen=True)
class FlowState:
    """One step: which provider to call, with what (templated) body."""

    name: str
    provider: str
    parameters: dict[str, Any] = field(default_factory=dict)
    next: Optional[str] = None  # None = terminal state

    def resolve(self, context: dict[str, Any]) -> dict[str, Any]:
        return resolve_template(self.parameters, context)


@dataclass(frozen=True)
class FlowDefinition:
    """A validated flow: title, start state, and the state table."""

    title: str
    start_at: str
    states: tuple[FlowState, ...]

    def __post_init__(self) -> None:
        names = [s.name for s in self.states]
        if not names:
            raise FlowDefinitionError(f"flow {self.title!r} has no states")
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise FlowDefinitionError(f"duplicate state names: {sorted(dupes)}")
        table = set(names)
        if self.start_at not in table:
            raise FlowDefinitionError(
                f"start state {self.start_at!r} not among {sorted(table)}"
            )
        for s in self.states:
            if s.next is not None and s.next not in table:
                raise FlowDefinitionError(
                    f"state {s.name!r} transitions to unknown state {s.next!r}"
                )
        # Walk from start: every state must be reachable, no cycles.
        seen: list[str] = []
        current: Optional[str] = self.start_at
        by_name = {s.name: s for s in self.states}
        while current is not None:
            if current in seen:
                raise FlowDefinitionError(
                    f"cycle detected at state {current!r} (flows must terminate)"
                )
            seen.append(current)
            current = by_name[current].next
        unreachable = table - set(seen)
        if unreachable:
            raise FlowDefinitionError(
                f"unreachable states: {sorted(unreachable)}"
            )

    def state(self, name: str) -> FlowState:
        for s in self.states:
            if s.name == name:
                return s
        raise FlowDefinitionError(f"unknown state: {name!r}")

    def ordered_states(self) -> list[FlowState]:
        """States in execution order from ``start_at``."""
        out = []
        current: Optional[str] = self.start_at
        while current is not None:
            s = self.state(current)
            out.append(s)
            current = s.next
        return out

    @property
    def n_transitions(self) -> int:
        """Orchestration transitions: enter + between states + exit."""
        return len(self.ordered_states()) + 1
