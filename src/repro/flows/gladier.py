"""Gladier-style tool composition.

Gladier (the Globus Architecture for Data-Intensive Experimental
Research) lets an application author small reusable *tools* — each a
fragment of flow states — and compose them into a deployed flow.  The
paper implements both of its use cases this way (Sec. 2.2); so do we:
:mod:`repro.core.tools` defines the transfer/analysis/publication tools
and :class:`GladierClient` chains them into runnable flows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Sequence

from ..auth import Token
from ..errors import FlowDefinitionError
from .definition import FlowDefinition, FlowState
from .run import FlowRun
from .service import FlowsService

__all__ = ["GladierTool", "GladierClient"]


@dataclass(frozen=True)
class GladierTool:
    """A reusable fragment of flow states.

    States inside a tool are chained in the order given; a tool's last
    state links to the next tool at composition time.
    """

    name: str
    states: tuple[FlowState, ...]

    def __post_init__(self) -> None:
        if not self.states:
            raise FlowDefinitionError(f"tool {self.name!r} has no states")


class GladierClient:
    """Compose tools into flows and run them via the flows service."""

    def __init__(self, flows: FlowsService, token: Token) -> None:
        self.flows = flows
        self.token = token
        self._deployed: dict[str, str] = {}  # title -> flow_id

    def compose(self, title: str, tools: Sequence[GladierTool]) -> FlowDefinition:
        """Chain the tools' states into one linear flow definition."""
        if not tools:
            raise FlowDefinitionError("compose() requires at least one tool")
        all_states: list[FlowState] = []
        for tool in tools:
            all_states.extend(tool.states)
        names = [s.name for s in all_states]
        if len(set(names)) != len(names):
            raise FlowDefinitionError(
                f"tools contribute duplicate state names: {names}"
            )
        chained: list[FlowState] = []
        for i, s in enumerate(all_states):
            nxt = names[i + 1] if i + 1 < len(all_states) else None
            chained.append(replace(s, next=nxt))
        return FlowDefinition(
            title=title, start_at=chained[0].name, states=tuple(chained)
        )

    def deploy(self, definition: FlowDefinition) -> str:
        """Deploy (memoized by title)."""
        flow_id = self._deployed.get(definition.title)
        if flow_id is None:
            flow_id = self.flows.deploy(definition)
            self._deployed[definition.title] = flow_id
        return flow_id

    def run_flow(
        self, definition: FlowDefinition, input: dict[str, Any]
    ) -> FlowRun:
        """Deploy if needed, then start a run."""
        flow_id = self.deploy(definition)
        return self.flows.run_flow(self.token, flow_id, input)
