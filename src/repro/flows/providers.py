"""Action providers adapting the substrate services to the flow model.

Each provider exposes the run/poll lifecycle the executor drives:

* :class:`TransferActionProvider` — wraps :class:`TransferService`
  (the "Data Transfer" step);
* :class:`ComputeActionProvider` — wraps :class:`ComputeService`
  (the "Data Analysis" step);
* :class:`SearchIngestActionProvider` — wraps :class:`SearchService`
  (the "Data Publication" step).

Active-time accounting: each provider reports the elapsed time of its
underlying task (submission to terminal state) as ``active_seconds``;
everything else the flow spends on a step — polling detection lag and
transition latency — is orchestration overhead, exactly the quantity
Fig. 4 separates out.
"""

from __future__ import annotations

import itertools
from typing import Any

from ..auth import Token
from ..compute import ComputeService, ComputeTaskStatus
from ..errors import FlowError, ServiceUnavailable
from ..obs.tracer import NULL_TRACER
from ..search import SearchService
from ..sim import Environment
from ..transfer import TaskStatus, TransferService
from .action import ActionState, ActionStatus, check_body

__all__ = [
    "TransferActionProvider",
    "ComputeActionProvider",
    "SearchIngestActionProvider",
]


class TransferActionProvider:
    """Flow step: move a file between transfer endpoints."""

    name = "transfer"
    input_schema = {
        "source_endpoint": "str",
        "source_path": "str",
        "dest_endpoint": "str",
        "dest_path": "str",
    }
    output_schema = {
        "task_id": "str",
        "dest_endpoint": "str",
        "dest_path": "str",
        "bytes": "number",
        "attempts": "int",
    }

    def __init__(self, service: TransferService, token: Token) -> None:
        self.service = service
        self.token = token

    def run(self, body: dict[str, Any]) -> str:
        check_body(self.name, self.input_schema, body)
        return self.service.submit(
            self.token,
            source_endpoint=body["source_endpoint"],
            source_path=body["source_path"],
            dest_endpoint=body["dest_endpoint"],
            dest_path=body["dest_path"],
        )

    def status(self, action_id: str) -> ActionStatus:
        task = self.service.task_record(action_id)
        if task.status is TaskStatus.SUCCEEDED:
            return ActionStatus(
                state=ActionState.SUCCEEDED,
                result={
                    "task_id": task.task_id,
                    "dest_endpoint": task.dest_endpoint,
                    "dest_path": task.dest_path,
                    "bytes": task.nbytes,
                    "attempts": task.attempts,
                },
                active_seconds=task.duration or 0.0,
            )
        if task.status is TaskStatus.FAILED:
            return ActionStatus(
                state=ActionState.FAILED,
                error=task.error or "transfer failed",
                active_seconds=task.duration or 0.0,
            )
        return ActionStatus(state=ActionState.ACTIVE)


class ComputeActionProvider:
    """Flow step: run a registered function on a compute endpoint."""

    name = "compute"
    input_schema = {
        "endpoint": "str",
        "function_id": "str",
        "args?": "list",
        "kwargs?": "dict",
    }
    output_schema = {
        "task_id": "str",
        "output": "dict",
        "node_id": "str",
        "cold_start": "bool",
    }

    def __init__(self, service: ComputeService, token: Token) -> None:
        self.service = service
        self.token = token

    def run(self, body: dict[str, Any]) -> str:
        check_body(self.name, self.input_schema, body)
        args = tuple(body.get("args", ()))
        kwargs = dict(body.get("kwargs", {}))
        return self.service.submit(
            self.token, body["endpoint"], body["function_id"], *args, **kwargs
        )

    def status(self, action_id: str) -> ActionStatus:
        task = self.service.task_record(action_id)
        if task.status is ComputeTaskStatus.SUCCESS:
            elapsed = (task.completed_at or 0.0) - task.submitted_at
            return ActionStatus(
                state=ActionState.SUCCEEDED,
                result={
                    "task_id": task.task_id,
                    "output": task.outcome.result,
                    "node_id": task.outcome.node_id,
                    "cold_start": task.outcome.cold_start,
                },
                active_seconds=elapsed,
            )
        if task.status is ComputeTaskStatus.FAILED:
            elapsed = (task.completed_at or 0.0) - task.submitted_at
            return ActionStatus(
                state=ActionState.FAILED,
                error=task.outcome.error if task.outcome else "compute failed",
                active_seconds=elapsed,
            )
        return ActionStatus(state=ActionState.ACTIVE)


class SearchIngestActionProvider:
    """Flow step: publish a metadata record to a search index."""

    name = "search_ingest"
    input_schema = {
        "index": "str",
        "subject": "str",
        "content": "dict",
        "visible_to?": "list",
    }
    output_schema = {"subject": "str"}

    def __init__(
        self,
        env: Environment,
        service: SearchService,
        token: Token,
        tracer: Any = None,
    ) -> None:
        self.env = env
        self.service = service
        self.token = token
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Integrity hook: a duck-typed
        #: :class:`~repro.integrity.IntegrityLedger`.  When set, every
        #: ingest must present a closed digest chain for its subject;
        #: an open chain quarantines the record instead of indexing it.
        self.ledger: Any = None
        self._ids = itertools.count(1)
        self._actions: dict[str, dict] = {}

    def run(self, body: dict[str, Any]) -> str:
        check_body(self.name, self.input_schema, body)
        # Surface an outage synchronously at submission so the executor's
        # retry policy handles it (connect-timeout charge + backoff).
        self.service.check_available()
        action_id = f"ingest-{next(self._ids):06d}"
        record = {
            "status": "ACTIVE",
            "started_at": self.env.now,
            "completed_at": None,
            "error": None,
            "subject": body.get("subject"),
        }
        self._actions[action_id] = record
        # Span window matches the active interval this provider reports
        # (started_at → completed_at) so Fig. 4 derives exactly from it.
        span = (
            self.tracer.start("search.ingest")
            .set("action_id", action_id)
            .set("subject", str(body.get("subject")))
        )
        self.env.process(self._drive(record, body, span))
        return action_id

    def _drive(self, record: dict, body: dict[str, Any], span: Any = None):
        if span is None:
            span = NULL_TRACER.start("search.ingest")
        try:
            if self.ledger is not None:
                ok, reason = self.ledger.check_publishable(body.get("subject"))
                if not ok:
                    record["status"] = "FAILED"
                    record["error"] = f"IntegrityError: {reason}"
                    record["completed_at"] = self.env.now
                    span.set("status", "QUARANTINED")
                    return
            try:
                yield from self.service.ingest(
                    self.token,
                    index=body["index"],
                    subject=body["subject"],
                    content=body["content"],
                    visible_to=body.get("visible_to", ("public",)),
                )
            except ServiceUnavailable as exc:
                # Outage hit mid-action: the client hangs for the connect
                # timeout, then the action reports FAILED and the
                # executor's retry policy takes over.
                if exc.connect_timeout_s > 0:
                    yield self.env.timeout(exc.connect_timeout_s)
                record["status"] = "FAILED"
                record["error"] = f"{type(exc).__name__}: {exc}"
            except Exception as exc:
                record["status"] = "FAILED"
                record["error"] = f"{type(exc).__name__}: {exc}"
            else:
                record["status"] = "SUCCEEDED"
            record["completed_at"] = self.env.now
            span.set("status", record["status"])
        finally:
            span.finish()

    def status(self, action_id: str) -> ActionStatus:
        try:
            record = self._actions[action_id]
        except KeyError:
            raise FlowError(f"unknown ingest action: {action_id!r}") from None
        if record["status"] == "ACTIVE":
            return ActionStatus(state=ActionState.ACTIVE)
        elapsed = record["completed_at"] - record["started_at"]
        if record["status"] == "FAILED":
            return ActionStatus(
                state=ActionState.FAILED, error=record["error"], active_seconds=elapsed
            )
        return ActionStatus(
            state=ActionState.SUCCEEDED,
            result={"subject": record["subject"]},
            active_seconds=elapsed,
        )
