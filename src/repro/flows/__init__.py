"""Globus-Flows/Gladier-style orchestration substrate.

Flow definitions (validated state machines with parameter templating),
action providers over the transfer/compute/search services, a run
executor with the paper's exponential polling backoff, and Gladier-style
tool composition.
"""

from .action import SCHEMA_TYPES, ActionProvider, ActionState, ActionStatus, check_body
from .backoff import PAPER_BACKOFF, ConstantBackoff, ExponentialBackoff
from .definition import FlowDefinition, FlowState, resolve_template
from .gladier import GladierClient, GladierTool
from .providers import (
    ComputeActionProvider,
    SearchIngestActionProvider,
    TransferActionProvider,
)
from .retry import (
    AttemptRecord,
    BacklogEntry,
    DEFAULT_RETRY_POLICY,
    DeadLetter,
    RetryPolicy,
)
from .run import FlowRun, FlowRunSnapshot, RunStatus, StepRecord
from .service import FlowsService

__all__ = [
    "FlowDefinition",
    "FlowState",
    "resolve_template",
    "FlowsService",
    "FlowRun",
    "FlowRunSnapshot",
    "RunStatus",
    "StepRecord",
    "ActionProvider",
    "ActionState",
    "ActionStatus",
    "SCHEMA_TYPES",
    "check_body",
    "ExponentialBackoff",
    "ConstantBackoff",
    "PAPER_BACKOFF",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "AttemptRecord",
    "DeadLetter",
    "BacklogEntry",
    "TransferActionProvider",
    "ComputeActionProvider",
    "SearchIngestActionProvider",
    "GladierClient",
    "GladierTool",
]
