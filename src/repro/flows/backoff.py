"""Polling backoff policies.

The paper attributes its flow-orchestration overhead (49.2% of median
hyperspectral runtime, 21.1% spatiotemporal) to "an exponential polling
backoff policy that starts at 1 second and doubles up to 10 minutes".
:class:`ExponentialBackoff` is that policy; the executor restarts it for
each action (each flow step), as Globus Flows does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import FlowError

__all__ = ["ExponentialBackoff", "PAPER_BACKOFF", "ConstantBackoff"]


@dataclass(frozen=True)
class ExponentialBackoff:
    """Intervals ``initial * factor**k`` capped at ``max_interval``."""

    initial: float = 1.0
    factor: float = 2.0
    max_interval: float = 600.0  # ten minutes

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise FlowError(f"initial interval must be positive, got {self.initial}")
        if self.factor < 1.0:
            raise FlowError(f"factor must be >= 1, got {self.factor}")
        if self.max_interval < self.initial:
            raise FlowError("max_interval must be >= initial")

    def intervals(self) -> Iterator[float]:
        """Infinite stream of wait intervals."""
        current = self.initial
        while True:
            yield current
            current = min(current * self.factor, self.max_interval)


@dataclass(frozen=True)
class ConstantBackoff:
    """Fixed-interval polling (the obvious overhead fix; used by the
    ablation bench to quantify what the paper's backoff costs)."""

    interval: float = 1.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise FlowError(f"interval must be positive, got {self.interval}")

    def intervals(self) -> Iterator[float]:
        while True:
            yield self.interval


#: The policy described in Sec. 3.3.
PAPER_BACKOFF = ExponentialBackoff(initial=1.0, factor=2.0, max_interval=600.0)
