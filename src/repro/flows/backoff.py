"""Polling backoff policies.

The paper attributes its flow-orchestration overhead (49.2% of median
hyperspectral runtime, 21.1% spatiotemporal) to "an exponential polling
backoff policy that starts at 1 second and doubles up to 10 minutes".
:class:`ExponentialBackoff` is that policy; the executor restarts it for
each action (each flow step), as Globus Flows does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..errors import FlowError

__all__ = ["ExponentialBackoff", "PAPER_BACKOFF", "ConstantBackoff"]


@dataclass(frozen=True)
class ExponentialBackoff:
    """Intervals ``initial * factor**k`` capped at ``max_interval``.

    ``jitter`` spreads each interval uniformly over
    ``[interval * (1 - jitter), interval * (1 + jitter)]`` using the RNG
    stream passed to :meth:`intervals` — so retry storms across
    concurrent flow runs desynchronize while staying deterministic under
    the campaign seed.  With ``jitter=0`` (the default) no draw is made
    and the interval sequence is bit-identical to the unjittered policy.
    """

    initial: float = 1.0
    factor: float = 2.0
    max_interval: float = 600.0  # ten minutes
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise FlowError(f"initial interval must be positive, got {self.initial}")
        if self.factor < 1.0:
            raise FlowError(f"factor must be >= 1, got {self.factor}")
        if self.max_interval < self.initial:
            raise FlowError("max_interval must be >= initial")
        if not 0.0 <= self.jitter < 1.0:
            raise FlowError(f"jitter must be in [0, 1), got {self.jitter}")

    def intervals(self, rng: Optional[Any] = None) -> Iterator[float]:
        """Infinite stream of wait intervals.

        ``rng`` (a :class:`numpy.random.Generator`) is required when
        ``jitter > 0``; it is untouched when ``jitter == 0``.
        """
        if self.jitter > 0.0 and rng is None:
            raise FlowError("jittered backoff requires an RNG stream")
        current = self.initial
        while True:
            if self.jitter > 0.0:
                spread = float(rng.uniform(-self.jitter, self.jitter))
                yield current * (1.0 + spread)
            else:
                yield current
            current = min(current * self.factor, self.max_interval)


@dataclass(frozen=True)
class ConstantBackoff:
    """Fixed-interval polling (the obvious overhead fix; used by the
    ablation bench to quantify what the paper's backoff costs)."""

    interval: float = 1.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise FlowError(f"interval must be positive, got {self.interval}")

    def intervals(self, rng: Optional[Any] = None) -> Iterator[float]:
        while True:
            yield self.interval


#: The policy described in Sec. 3.3.
PAPER_BACKOFF = ExponentialBackoff(initial=1.0, factor=2.0, max_interval=600.0)
