"""Flow-run records: per-step timing that Fig. 4 is built from."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from ..sim import Event
from .retry import AttemptRecord

__all__ = ["RunStatus", "StepRecord", "FlowRun", "FlowRunSnapshot"]


class RunStatus(str, Enum):
    ACTIVE = "ACTIVE"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        return self is not RunStatus.ACTIVE


@dataclass
class StepRecord:
    """Observed timing of one flow state.

    ``active_seconds`` is the provider-reported processing time;
    ``overhead_seconds`` is everything else the flow spent on this step:
    pre-submit transition latency, polling detection lag, and poll
    round-trips.
    """

    name: str
    provider: str
    action_id: str = ""
    entered_at: float = 0.0  # transition into the state began
    submitted_at: float = 0.0  # provider.run returned
    detected_at: float = 0.0  # terminal status observed
    active_seconds: float = 0.0
    polls: int = 0
    result: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: Full retry history (one entry per attempt, first try included).
    attempt_history: list[AttemptRecord] = field(default_factory=list)
    #: True when a non-critical state was skipped under an outage and
    #: queued into the catch-up backlog instead of failing the run.
    degraded: bool = False

    @property
    def attempts(self) -> int:
        """Number of attempts made at this state (>= 1 once submitted)."""
        return len(self.attempt_history)

    @property
    def observed_seconds(self) -> float:
        """Wall time the flow spent on this state."""
        return self.detected_at - self.entered_at

    @property
    def overhead_seconds(self) -> float:
        return max(0.0, self.observed_seconds - self.active_seconds)


@dataclass(frozen=True)
class FlowRunSnapshot:
    """Point-in-time timing view of a run (terminal or in flight).

    For an in-flight run the aggregates are computed up to the ``as_of``
    timestamp rather than collapsing to 0.0 — the bug this type fixes:
    mid-campaign queries used to report ``runtime_seconds == 0.0`` and
    ``overhead_fraction == 0.0`` for every ACTIVE run.
    """

    run_id: str
    status: RunStatus
    as_of: float
    runtime_seconds: float
    active_seconds: float
    in_flight: bool

    @property
    def overhead_seconds(self) -> float:
        return max(0.0, self.runtime_seconds - self.active_seconds)

    @property
    def overhead_fraction(self) -> float:
        rt = self.runtime_seconds
        return self.overhead_seconds / rt if rt > 0 else 0.0


@dataclass
class FlowRun:
    """One execution of a flow definition."""

    run_id: str
    flow_title: str
    input: dict[str, Any]
    status: RunStatus = RunStatus.ACTIVE
    started_at: float = 0.0
    finished_at: Optional[float] = None
    steps: list[StepRecord] = field(default_factory=list)
    error: Optional[str] = None
    completed: Optional[Event] = None  # fires at terminal status
    #: True when at least one non-critical state was skipped (its work
    #: was queued for catch-up rather than performed inline).
    degraded: bool = False

    # -- aggregate timing --------------------------------------------------
    def _now(self) -> Optional[float]:
        """Current sim time, when the run can see a clock (via its
        completion event's environment)."""
        if self.completed is not None:
            return self.completed.env.now
        return None

    @property
    def runtime_seconds(self) -> float:
        """Total flow runtime (paper: 'flow runtime').

        For an in-flight run this is the elapsed runtime *so far* (read
        from the simulation clock) rather than 0.0; use :meth:`as_of`
        to evaluate at an explicit timestamp.
        """
        if self.finished_at is not None:
            return self.finished_at - self.started_at
        now = self._now()
        if now is None:
            # Clockless record (e.g. hand-built in tests): elapsed
            # runtime is unknowable, so report zero as before.
            return 0.0
        return max(0.0, now - self.started_at)

    @property
    def active_seconds(self) -> float:
        """Time actively processing steps (paper: 'Active')."""
        return sum(s.active_seconds for s in self.steps)

    @property
    def overhead_seconds(self) -> float:
        """Runtime not spent actively processing (paper: 'overhead')."""
        return max(0.0, self.runtime_seconds - self.active_seconds)

    @property
    def overhead_fraction(self) -> float:
        rt = self.runtime_seconds
        return self.overhead_seconds / rt if rt > 0 else 0.0

    def as_of(self, now: float) -> FlowRunSnapshot:
        """Timing view at simulation time ``now``.

        Terminal runs ignore ``now`` (their window is fixed); in-flight
        runs report runtime accumulated up to ``now``.
        """
        end = self.finished_at if self.finished_at is not None else max(
            now, self.started_at
        )
        return FlowRunSnapshot(
            run_id=self.run_id,
            status=self.status,
            as_of=now,
            runtime_seconds=end - self.started_at,
            active_seconds=self.active_seconds,
            in_flight=not self.status.terminal,
        )

    def step(self, name: str) -> StepRecord:
        for s in self.steps:
            if s.name == name:
                return s
        raise KeyError(name)

    def summary(self, now: Optional[float] = None) -> dict[str, Any]:
        """Plain-dict report.  An ACTIVE run is reported honestly: its
        timing comes from ``now`` (or the simulation clock), and the
        ``in_flight`` flag marks every aggregate as provisional."""
        if now is None:
            now = self._now()
        if self.finished_at is None and now is None:
            # No clock available: timing for an in-flight run is unknown.
            runtime = active = overhead = pct = None
        else:
            snap = self.as_of(self.finished_at if now is None else now)
            runtime = round(snap.runtime_seconds, 3)
            active = round(snap.active_seconds, 3)
            overhead = round(snap.overhead_seconds, 3)
            pct = round(100 * snap.overhead_fraction, 1)
        return {
            "run_id": self.run_id,
            "flow": self.flow_title,
            "status": self.status.value,
            "in_flight": not self.status.terminal,
            "degraded": self.degraded,
            "runtime_s": runtime,
            "active_s": active,
            "overhead_s": overhead,
            "overhead_pct": pct,
            "steps": {
                s.name: {
                    "active_s": round(s.active_seconds, 3),
                    "overhead_s": round(s.overhead_seconds, 3),
                    "polls": s.polls,
                }
                for s in self.steps
            },
            "error": self.error,
        }
