"""Flow-run records: per-step timing that Fig. 4 is built from."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from ..sim import Event

__all__ = ["RunStatus", "StepRecord", "FlowRun"]


class RunStatus(str, Enum):
    ACTIVE = "ACTIVE"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        return self is not RunStatus.ACTIVE


@dataclass
class StepRecord:
    """Observed timing of one flow state.

    ``active_seconds`` is the provider-reported processing time;
    ``overhead_seconds`` is everything else the flow spent on this step:
    pre-submit transition latency, polling detection lag, and poll
    round-trips.
    """

    name: str
    provider: str
    action_id: str = ""
    entered_at: float = 0.0  # transition into the state began
    submitted_at: float = 0.0  # provider.run returned
    detected_at: float = 0.0  # terminal status observed
    active_seconds: float = 0.0
    polls: int = 0
    result: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def observed_seconds(self) -> float:
        """Wall time the flow spent on this state."""
        return self.detected_at - self.entered_at

    @property
    def overhead_seconds(self) -> float:
        return max(0.0, self.observed_seconds - self.active_seconds)


@dataclass
class FlowRun:
    """One execution of a flow definition."""

    run_id: str
    flow_title: str
    input: dict[str, Any]
    status: RunStatus = RunStatus.ACTIVE
    started_at: float = 0.0
    finished_at: Optional[float] = None
    steps: list[StepRecord] = field(default_factory=list)
    error: Optional[str] = None
    completed: Optional[Event] = None  # fires at terminal status

    # -- aggregate timing --------------------------------------------------
    @property
    def runtime_seconds(self) -> float:
        """Total flow runtime (paper: 'flow runtime')."""
        end = self.finished_at if self.finished_at is not None else self.started_at
        return end - self.started_at

    @property
    def active_seconds(self) -> float:
        """Time actively processing steps (paper: 'Active')."""
        return sum(s.active_seconds for s in self.steps)

    @property
    def overhead_seconds(self) -> float:
        """Runtime not spent actively processing (paper: 'overhead')."""
        return max(0.0, self.runtime_seconds - self.active_seconds)

    @property
    def overhead_fraction(self) -> float:
        rt = self.runtime_seconds
        return self.overhead_seconds / rt if rt > 0 else 0.0

    def step(self, name: str) -> StepRecord:
        for s in self.steps:
            if s.name == name:
                return s
        raise KeyError(name)

    def summary(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "flow": self.flow_title,
            "status": self.status.value,
            "runtime_s": round(self.runtime_seconds, 3),
            "active_s": round(self.active_seconds, 3),
            "overhead_s": round(self.overhead_seconds, 3),
            "overhead_pct": round(100 * self.overhead_fraction, 1),
            "steps": {
                s.name: {
                    "active_s": round(s.active_seconds, 3),
                    "overhead_s": round(s.overhead_seconds, 3),
                    "polls": s.polls,
                }
                for s in self.steps
            },
            "error": self.error,
        }
