"""Action-provider interface: the pluggable steps a flow orchestrates.

Globus Flows drives *action providers* — services exposing a run/poll
lifecycle.  Each provider here adapts one substrate service (transfer,
compute, search ingest) to that lifecycle; the executor submits a body,
then polls :meth:`ActionProvider.status` until a terminal state.

Payload schemas
---------------
Every provider declares two **literal** class attributes so the
``repro.lint`` F4xx dataflow pass can statically prove that a flow's
``$.``-template references are actually produced upstream:

``input_schema``
    ``{parameter name: type}`` for the keys :meth:`ActionProvider.run`
    accepts in its body.  A trailing ``?`` on the name marks the
    parameter optional (``"codec?": "str"``); all others are required.

``output_schema``
    ``{key: type}`` for the payload the provider puts in
    ``ActionStatus.result`` on success — exactly the keys downstream
    states may reference as ``$.states.<Name>.<key>``.

Types come from :data:`SCHEMA_TYPES`.  Both dicts must be written as
plain string literals: the analyzer reads them by AST scan, never by
importing the module (see :func:`repro.lint.discover_provider_schemas`).
:func:`check_body` applies the same contract dynamically for providers
that want an early, readable error instead of a ``KeyError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Optional, Protocol, runtime_checkable

__all__ = [
    "ActionState",
    "ActionStatus",
    "ActionProvider",
    "SCHEMA_TYPES",
    "check_body",
]

#: The type vocabulary for input/output schema declarations.  ``any``
#: opts a key out of type checking; ``number`` accepts int and float.
SCHEMA_TYPES = frozenset(
    {"str", "int", "float", "bool", "dict", "list", "number", "any"}
)


def check_body(
    provider_name: str,
    input_schema: Mapping[str, str],
    body: Mapping[str, Any],
) -> None:
    """Validate a run body against a declared input schema.

    Raises ``ValueError`` naming every missing required parameter and
    every undeclared one — a readable failure at submission time rather
    than a ``KeyError`` deep inside the provider.
    """
    required = {k for k in input_schema if not k.endswith("?")}
    accepted = {k.rstrip("?") for k in input_schema}
    missing = sorted(required - set(body))
    unknown = sorted(set(body) - accepted)
    problems = []
    if missing:
        problems.append(f"missing required parameter(s) {missing}")
    if unknown:
        problems.append(f"undeclared parameter(s) {unknown}")
    if problems:
        raise ValueError(
            f"provider {provider_name!r}: " + "; ".join(problems)
            + f" (declared: {sorted(accepted)})"
        )


class ActionState(str, Enum):
    ACTIVE = "ACTIVE"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        return self is not ActionState.ACTIVE


@dataclass(frozen=True)
class ActionStatus:
    """Snapshot returned by polling an action.

    ``active_seconds`` is the provider's accounting of time spent
    actually processing (the paper's "Active" time); the executor derives
    orchestration overhead as *observed* step time minus this.
    """

    state: ActionState
    result: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    active_seconds: float = 0.0


@runtime_checkable
class ActionProvider(Protocol):
    """Anything a flow state can drive."""

    #: Registry key referenced by flow definitions.
    name: str
    #: Literal parameter schema for ``run`` bodies (see module docstring).
    input_schema: dict[str, str]
    #: Literal payload schema for ``ActionStatus.result`` on success.
    output_schema: dict[str, str]

    def run(self, body: dict[str, Any]) -> str:
        """Start the action; returns an action id."""
        ...

    def status(self, action_id: str) -> ActionStatus:
        """Poll the action's current status."""
        ...
