"""Action-provider interface: the pluggable steps a flow orchestrates.

Globus Flows drives *action providers* — services exposing a run/poll
lifecycle.  Each provider here adapts one substrate service (transfer,
compute, search ingest) to that lifecycle; the executor submits a body,
then polls :meth:`ActionProvider.status` until a terminal state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional, Protocol, runtime_checkable

__all__ = ["ActionState", "ActionStatus", "ActionProvider"]


class ActionState(str, Enum):
    ACTIVE = "ACTIVE"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        return self is not ActionState.ACTIVE


@dataclass(frozen=True)
class ActionStatus:
    """Snapshot returned by polling an action.

    ``active_seconds`` is the provider's accounting of time spent
    actually processing (the paper's "Active" time); the executor derives
    orchestration overhead as *observed* step time minus this.
    """

    state: ActionState
    result: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    active_seconds: float = 0.0


@runtime_checkable
class ActionProvider(Protocol):
    """Anything a flow state can drive."""

    #: Registry key referenced by flow definitions.
    name: str

    def run(self, body: dict[str, Any]) -> str:
        """Start the action; returns an action id."""
        ...

    def status(self, action_id: str) -> ActionStatus:
        """Poll the action's current status."""
        ...
