"""Per-action retry/timeout policies and the dead-letter record.

The paper leans on Globus Flows to "manage the reliable execution" of
each step; this module is that reliability layer for the reproduction.
A :class:`RetryPolicy` bounds how the executor re-drives one action
provider when an attempt fails — service outage
(:class:`~repro.errors.ServiceUnavailable`), per-attempt sim-time
timeout (:class:`~repro.errors.ActionTimeout`), or a terminal FAILED
action — with seeded-jitter exponential backoff between attempts
(reusing :class:`~repro.flows.backoff.ExponentialBackoff`).

Exhaustion has two endings:

* **critical** states (the default) fail the run terminally and leave a
  :class:`DeadLetter` on the service — full attempt history, never a
  hung-ACTIVE run;
* **non-critical** states (``critical=False``, e.g. search publication)
  *degrade*: the run completes with ``run.degraded = True`` and the
  skipped action is queued as a :class:`BacklogEntry` in the service's
  catch-up backlog, drained when the outage ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import FlowError
from .backoff import ExponentialBackoff

__all__ = [
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "AttemptRecord",
    "DeadLetter",
    "BacklogEntry",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How the flow executor re-drives one action provider.

    Parameters
    ----------
    max_attempts:
        Total attempts (first try included).  The default of 1 means
        "no retry" and is bit-identical to the pre-policy executor.
    backoff:
        Wait policy *between* attempts (not the poll backoff).  Jitter
        draws come from the service's ``flows.retry`` RNG stream.
    attempt_timeout_s:
        Per-attempt sim-time budget from submission; when exceeded the
        attempt is abandoned (the deadline timer is withdrawn via
        ``Environment.cancel`` on normal completion so no timer leaks).
        ``None`` disables the timeout and creates no timer at all.
    critical:
        ``False`` marks the state safe to skip: on exhaustion the run
        degrades instead of failing (see module docstring).
    """

    max_attempts: int = 1
    backoff: ExponentialBackoff = ExponentialBackoff(
        initial=2.0, factor=2.0, max_interval=120.0
    )
    attempt_timeout_s: Optional[float] = None
    critical: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FlowError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise FlowError(
                f"attempt_timeout_s must be positive, got {self.attempt_timeout_s}"
            )


#: The no-retry policy every provider gets unless configured otherwise.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class AttemptRecord:
    """One attempt at driving an action to a terminal state."""

    number: int
    started_at: float
    ended_at: Optional[float] = None
    outcome: str = "active"  # succeeded | failed | unavailable | timeout
    error: Optional[str] = None

    def summary(self) -> dict[str, Any]:
        return {
            "number": self.number,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "outcome": self.outcome,
            "error": self.error,
        }


@dataclass
class DeadLetter:
    """A run that exhausted its retries on a critical state.

    The record carries the full attempt history so a campaign report can
    show *why* each dataset was dropped — the terminal counterpart of a
    hung-ACTIVE run, which the executor never leaves behind.
    """

    run_id: str
    flow_title: str
    state: str
    provider: str
    attempts: list[AttemptRecord]
    error: str
    recorded_at: float

    def summary(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "flow": self.flow_title,
            "state": self.state,
            "provider": self.provider,
            "attempts": [a.summary() for a in self.attempts],
            "error": self.error,
            "recorded_at": self.recorded_at,
        }


@dataclass
class BacklogEntry:
    """A degraded (skipped) non-critical action awaiting catch-up."""

    run_id: str
    state: str
    provider: str
    body: dict[str, Any] = field(default_factory=dict)
    enqueued_at: float = 0.0
    caught_up_at: Optional[float] = None
    error: Optional[str] = None

    @property
    def recovered(self) -> bool:
        return self.caught_up_at is not None

    @property
    def recovery_latency_s(self) -> Optional[float]:
        if self.caught_up_at is None:
            return None
        return self.caught_up_at - self.enqueued_at
