"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``campaign``
    Run one or both Sec. 3.3 performance campaigns and print Table 1.
``portal``
    Run a short campaign and build the static portal site.
``quicklook``
    Acquire a real hyperspectral cube and run the Fig. 2 pipeline.
``lint``
    Run the determinism & flow-safety static analyzer (``repro.lint``).
``sanitize``
    Run a campaign under the DES schedule-race sanitizer, rerun it with
    the same-tick tie-break reversed, and diff the event traces.
``trace``
    Run a traced campaign and export spans (Chrome ``trace_event`` JSON
    and/or JSON-lines) plus a metrics CSV; prints the span-derived
    Table 1 timing aggregates.
``chaos``
    Run a campaign under a named fault-injection scenario and print the
    delivered-vs-dropped breakdown plus the recovery report.
``stream``
    Run the same campaign through both ingest paths (file pipeline vs
    :mod:`repro.stream`) and print the span-derived delivery-latency
    breakdown, optionally under a chaos scenario.
``integrity``
    Run a data-corruption campaign with the integrity ledger armed,
    scrub the stores, and print the span-derived audit: every injected
    corruption repaired or quarantined, with the file-vs-stream
    detection-latency breakdown.  ``--audit`` gates the exit status on
    zero silent acceptances.
``sweep``
    Run a grid of campaign variants across worker processes with a
    deterministic, submission-ordered merge (parallel == serial).
``bench``
    Time the substrate suites (kernel / fabric / campaign) and write
    ``BENCH_*.json``; ``--check`` gates against the committed baselines.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .core import render_table1, run_campaign

    names = (
        ["hyperspectral", "spatiotemporal"] if args.use_case == "both" else [args.use_case]
    )
    rows = []
    for i, name in enumerate(names):
        res = run_campaign(
            name, duration_s=args.duration, seed=args.seed + i, copier_mode=args.mode
        )
        rows.append(res.table1())
    print(render_table1(rows))
    return 0


def _cmd_portal(args: argparse.Namespace) -> int:
    from .core import run_campaign
    from .portal import Portal

    res = run_campaign("hyperspectral", duration_s=args.duration, seed=args.seed)
    portal = Portal(res.testbed.portal_index)
    written = portal.build(args.output)
    print(f"{len(res.completed_runs)} flows completed; "
          f"{len(written)} portal pages under {args.output}")
    return 0


def _cmd_quicklook(args: argparse.Namespace) -> int:
    import os

    from .core import analyze_hyperspectral_file
    from .emd import write_emd
    from .instrument import PicoProbe
    from .rng import RngRegistry

    os.makedirs(args.output, exist_ok=True)
    probe = PicoProbe(RngRegistry(args.seed), operator="cli-user")
    signal, _ = probe.acquire_hyperspectral(shape=(128, 128), n_channels=1024)
    emd = os.path.join(args.output, f"{signal.metadata.acquisition_id}.emd")
    write_emd(emd, signal, compression="zlib")
    record = analyze_hyperspectral_file(emd, args.output)
    print(f"wrote {emd}")
    print(f"detected elements: {', '.join(record['detected_elements'])}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_lint

    return run_lint(args)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from .core.sanitize import sanitize_campaign
    from .lint.cli import render_report
    from .lint.diagnostics import Severity

    result = sanitize_campaign(
        args.use_case, duration_s=args.duration, seed=args.seed
    )
    diagnostics = result.diagnostics()
    report = render_report(diagnostics, args.fmt, tool_name="repro.sanitize")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"wrote {len(diagnostics)} finding(s) to {args.output}")
    else:
        print(report)
    if args.fmt == "text":
        verdict = (
            "schedule-clean: traces identical under reversed tie-break"
            if result.clean
            else "schedule races detected"
        )
        print(
            f"{args.use_case}: {len(result.forward.runs)} run(s), "
            f"{len(result.divergences)} trace divergence(s) — {verdict}"
        )
    threshold = Severity.parse(args.fail_on)
    return 1 if any(d.severity >= threshold for d in diagnostics) else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from .core import run_campaign
    from .obs import (
        derive_runs,
        metrics_to_csv,
        run_summary_stats,
        spans_to_chrome,
        spans_to_jsonl,
    )

    res = run_campaign(
        args.use_case, duration_s=args.duration, seed=args.seed, obs=True
    )
    obs = res.testbed.obs
    os.makedirs(args.output, exist_ok=True)
    written = []

    def emit(name: str, text: str) -> None:
        path = os.path.join(args.output, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        written.append(path)

    if args.fmt in ("chrome", "both"):
        emit("trace.json", spans_to_chrome(obs.tracer.spans))
    if args.fmt in ("jsonl", "both"):
        emit("trace.jsonl", spans_to_jsonl(obs.tracer.spans))
    emit("metrics.csv", metrics_to_csv(obs.metrics))

    runs = derive_runs(obs.tracer.spans)
    stats = run_summary_stats(runs)
    print(
        f"{args.use_case}: {len(obs.tracer.spans)} spans, "
        f"{int(stats['total_runs'])} completed run(s)"
    )
    print(
        f"runtime min/mean/max: {stats['min_runtime_s']:.1f}/"
        f"{stats['mean_runtime_s']:.1f}/{stats['max_runtime_s']:.1f} s; "
        f"median overhead {stats['median_overhead_s']:.1f} s "
        f"({stats['median_overhead_pct']:.1f}%)"
    )
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .chaos import SCENARIOS, delivery_breakdown, run_chaos_campaign

    if args.list:
        for name in sorted(SCENARIOS):
            plan = SCENARIOS[name]
            parts = []
            if plan.outages:
                parts.append(f"{len(plan.outages)} outage window(s)")
            if plan.degradations:
                parts.append(f"{len(plan.degradations)} link event(s)")
            if plan.node_failures is not None:
                parts.append(f"node failures p={plan.node_failures.prob}")
            if plan.watcher_crashes:
                parts.append(f"{len(plan.watcher_crashes)} watcher crash(es)")
            if plan.transfer_faults.transient_prob or plan.transfer_faults.corrupt_prob:
                parts.append("transfer faults")
            print(f"{name:15s} {', '.join(parts)}")
        return 0

    result = run_chaos_campaign(
        args.scenario, use_case=args.use_case, duration_s=args.duration,
        seed=args.seed,
    )
    breakdown = delivery_breakdown(result)
    report = result.chaos.report()

    print(f"scenario {args.scenario!r} on {args.use_case}, "
          f"{args.duration:.0f} s, seed {args.seed}")
    print(f"injections: {len(report['injections'])}")
    for inj in report["injections"]:
        t = inj["t"]
        extra = ", ".join(
            f"{k}={v}" for k, v in sorted(inj.items()) if k not in ("t", "kind")
        )
        print(f"  t={t:8.1f}s  {inj['kind']:<18s} {extra}")
    print()
    total = breakdown["runs"]
    print(f"flow runs: {total}")
    for key in ("delivered", "degraded", "dead_lettered", "failed_other",
                "still_active"):
        n = breakdown[key]
        pct = 100.0 * n / total if total else 0.0
        print(f"  {key:<14s} {n:4d}  ({pct:5.1f}%)")
    print()
    print(f"flow retries: {report['flow_retries']}; "
          f"node failures: {report['node_failures']}; "
          f"gate rejections: {report['gate_rejections'] or '{}'}")
    print(f"backlog: {report['backlog_recovered']}/{report['backlog_total']} "
          f"caught up ({report['backlog_pending']} pending)")
    if report["recovery_latency_s"]:
        p = report["recovery_latency_s"]
        print(f"recovery latency p50/p95/max: "
              f"{p['p50']:.1f}/{p['p95']:.1f}/{p['max']:.1f} s")
    if report["dead_letters"]:
        print("dead letters:")
        for d in report["dead_letters"]:
            print(f"  {d}")
    return 1 if breakdown["still_active"] else 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .chaos import NO_CHAOS, SCENARIOS
    from .core import run_campaign
    from .obs import (
        derive_runs,
        derive_stream_sessions,
        format_ingest_comparison,
        ingest_comparison,
    )

    plan = NO_CHAOS
    if args.scenario is not None:
        try:
            plan = SCENARIOS[args.scenario]
        except KeyError:
            print(f"unknown chaos scenario {args.scenario!r} "
                  f"(choices: {', '.join(sorted(SCENARIOS))})", file=sys.stderr)
            return 2

    results = {}
    for mode in ("file", "stream"):
        results[mode] = run_campaign(
            args.use_case,
            duration_s=args.duration,
            seed=args.seed,
            obs=True,
            chaos=plan,
            ingest=mode,
        )
    runs = derive_runs(results["file"].testbed.obs.tracer.spans)
    sessions = derive_stream_sessions(results["stream"].testbed.obs.tracer.spans)
    label = f" under {args.scenario!r}" if args.scenario else ""
    print(f"{args.use_case}, {args.duration:.0f} s, seed {args.seed}{label}: "
          f"{len(runs)} file run(s) vs {len(sessions)} stream session(s)")
    renegotiations = sum(s.renegotiations for s in sessions)
    if renegotiations:
        print(f"stream renegotiations: {renegotiations} "
              f"(duplicates delivered: {sum(s.duplicates for s in sessions)})")
    print()
    print(format_ingest_comparison(ingest_comparison(runs, sessions)))
    return 0


def _cmd_integrity(args: argparse.Namespace) -> int:
    from .integrity import format_audit, run_integrity_campaign

    modes = ["file", "stream"] if args.ingest == "both" else [args.ingest]
    all_ok = True
    for mode in modes:
        result, report = run_integrity_campaign(
            scenario=args.scenario,
            use_case=args.use_case,
            duration_s=args.duration,
            seed=args.seed,
            ingest=mode,
        )
        print(
            f"scenario {args.scenario!r} on {args.use_case} "
            f"({mode} ingest), {args.duration:.0f} s, seed {args.seed}"
        )
        print(format_audit(report))
        ledger = result.ledger
        if ledger is not None and ledger.quarantined:
            print("quarantine dead-letter:")
            for q in ledger.quarantined:
                print(f"  t={q.at:8.1f}s  {q.path}  ({q.reason})")
        print()
        all_ok = all_ok and report.ok
    if args.audit:
        return 0 if all_ok else 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .core.sweep import run_sweep_cli

    return run_sweep_cli(args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import SUITES, run_bench_cli

    suites = list(SUITES) if args.suite == "all" else [args.suite]
    return run_bench_cli(
        suites,
        output_dir=args.output_dir,
        check=args.check,
        baseline_dir=args.baseline_dir,
        repeat=args.repeat,
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PicoProbe DataFlow reproduction (SC 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("campaign", help="run the Sec. 3.3 campaigns (Table 1)")
    p.add_argument(
        "use_case",
        nargs="?",
        default="both",
        choices=["hyperspectral", "spatiotemporal", "spectral-movie", "both"],
    )
    p.add_argument("--duration", type=float, default=3600.0, help="simulated seconds")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--mode", default="gated", choices=["gated", "periodic"])
    p.set_defaults(fn=_cmd_campaign)

    p = sub.add_parser("portal", help="build a static portal from a campaign")
    p.add_argument("--output", default="portal_site")
    p.add_argument("--duration", type=float, default=1200.0)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=_cmd_portal)

    p = sub.add_parser("quicklook", help="run the Fig. 2 content pipeline")
    p.add_argument("--output", default="quicklook_out")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(fn=_cmd_quicklook)

    p = sub.add_parser(
        "lint", help="run the determinism & flow-safety static analyzer"
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "sanitize",
        help="detect DES schedule races by reversing the same-tick tie-break",
    )
    p.add_argument(
        "use_case",
        nargs="?",
        default="hyperspectral",
        choices=["hyperspectral", "spatiotemporal", "spectral-movie"],
    )
    p.add_argument("--duration", type=float, default=600.0, help="simulated seconds")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--fail-on", choices=["warn", "error"], default="error")
    p.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text", dest="fmt"
    )
    p.add_argument(
        "--output", default=None, help="write the report to this path"
    )
    p.set_defaults(fn=_cmd_sanitize)

    p = sub.add_parser(
        "trace", help="run a traced campaign and export spans + metrics"
    )
    p.add_argument(
        "use_case",
        nargs="?",
        default="hyperspectral",
        choices=["hyperspectral", "spatiotemporal", "spectral-movie"],
    )
    p.add_argument("--duration", type=float, default=1800.0, help="simulated seconds")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--format", choices=["chrome", "jsonl", "both"], default="chrome", dest="fmt"
    )
    p.add_argument("--output", default="trace_out", help="output directory")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "chaos", help="run a campaign under a named fault-injection scenario"
    )
    p.add_argument(
        "scenario",
        nargs="?",
        default="outage",
        help="scenario name (see --list)",
    )
    p.add_argument(
        "--use-case",
        default="hyperspectral",
        choices=["hyperspectral", "spatiotemporal", "spectral-movie"],
    )
    p.add_argument("--duration", type=float, default=3600.0, help="simulated seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--list", action="store_true", help="list available scenarios and exit"
    )
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "stream",
        help="compare file vs streaming ingest latency head-to-head",
    )
    p.add_argument(
        "use_case",
        nargs="?",
        default="hyperspectral",
        choices=["hyperspectral", "spatiotemporal", "spectral-movie"],
    )
    p.add_argument("--duration", type=float, default=900.0, help="simulated seconds")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--scenario", default=None,
        help="also inject a named chaos scenario (see `chaos --list`)",
    )
    p.set_defaults(fn=_cmd_stream)

    p = sub.add_parser(
        "integrity",
        help="audit a corruption campaign: zero silent acceptances",
    )
    p.add_argument(
        "scenario",
        nargs="?",
        default="corruption",
        help="chaos scenario to audit (see `chaos --list`)",
    )
    p.add_argument(
        "--use-case",
        default="hyperspectral",
        choices=["hyperspectral", "spatiotemporal", "spectral-movie"],
    )
    p.add_argument("--duration", type=float, default=3600.0, help="simulated seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--ingest", default="both", choices=["file", "stream", "both"]
    )
    p.add_argument(
        "--audit", action="store_true",
        help="exit nonzero unless the audit proves zero silent acceptances",
    )
    p.set_defaults(fn=_cmd_integrity)

    p = sub.add_parser(
        "sweep",
        help="run a campaign grid across worker processes (parallel == serial)",
    )
    p.add_argument(
        "grid", nargs="?", default="chaos", choices=["chaos", "campaign"]
    )
    p.add_argument(
        "--scenarios", default=None,
        help="comma-separated chaos scenarios (default: all)",
    )
    p.add_argument("--use-cases", default="hyperspectral")
    p.add_argument("--seeds", default="0,1")
    p.add_argument("--duration", type=float, default=3600.0, help="simulated seconds")
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: cpu count; 1 = serial)",
    )
    p.add_argument(
        "--output", default=None, help="write outcome payloads to this JSON path"
    )
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "bench", help="time the substrate suites and write/check BENCH_*.json"
    )
    p.add_argument(
        "suite", nargs="?", default="all",
        choices=[
            "all", "kernel", "fabric", "campaign", "lint", "stream",
            "integrity", "dataplane",
        ],
    )
    p.add_argument(
        "--check", action="store_true",
        help="compare against committed baselines instead of writing",
    )
    p.add_argument("--output-dir", default=".")
    p.add_argument("--baseline-dir", default=".")
    p.add_argument("--repeat", type=int, default=3)
    p.set_defaults(fn=_cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
