"""Extensions: the paper's stated future-work directions, implemented.

Sec. 5 lists "(2) data compression algorithms" as an active research
direction against the transfer bottleneck, and Sec. 3.2 sketches the
4-D use case ("an additional hyperspectral dimension … would result in
a 4-dimensional tensor, vastly increasing the data volume of each
file — we leave this use case to future work").  Both are built here:

* :class:`CompressionSpec` + :class:`LocalCompressProvider` — an extra
  flow state that compresses the file **on the user machine** before
  transfer (charged at a calibrated compress throughput), so the flow
  trades local CPU time for wire time;
* :func:`compressed_picoprobe_flow` — Compress → Transfer → Analyze →
  Publish;
* :data:`SPECTRAL_MOVIE_USE_CASE` — the 4-D (time × height × width ×
  energy) acquisition at ~9.6 GB per file, runnable through the same
  campaign machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any

from ..emd import AcquisitionMetadata, SampleInfo
from ..errors import FlowError
from ..flows import FlowState, FlowDefinition, GladierClient, GladierTool
from ..flows.action import ActionState, ActionStatus, check_body
from ..instrument import UseCaseSpec
from ..rng import RngRegistry, lognormal_from_median
from ..sim import Environment
from ..storage import VirtualFS
from ..testbed.calibration import Calibration
from ..units import MB
from .functions import build_search_document
from .tools import analysis_tool, publish_tool

__all__ = [
    "CompressionSpec",
    "LZ4_LIKE",
    "ZSTD_LIKE",
    "LocalCompressProvider",
    "compress_tool",
    "compressed_picoprobe_flow",
    "SPECTRAL_MOVIE_USE_CASE",
    "analyze_virtual_spectral_movie",
    "spectral_movie_cost_model",
]


# ---------------------------------------------------------------------------
# Future work (2): data compression before transfer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompressionSpec:
    """A compression codec's behaviour on EMD microscopy tensors."""

    name: str
    ratio: float  # compressed size = size / ratio
    compress_bytes_per_s: float  # user-machine throughput
    jitter_sigma: float = 0.1

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise FlowError(f"compression ratio must be >= 1, got {self.ratio}")
        if self.compress_bytes_per_s <= 0:
            raise FlowError("compress throughput must be positive")


#: Fast, modest ratio — detector floats are noisy, so ratios are small.
LZ4_LIKE = CompressionSpec("lz4-like", ratio=1.5, compress_bytes_per_s=450e6)
#: Slower, better ratio.
ZSTD_LIKE = CompressionSpec("zstd-like", ratio=2.1, compress_bytes_per_s=140e6)

CODECS = {c.name: c for c in (LZ4_LIKE, ZSTD_LIKE)}


class LocalCompressProvider:
    """Action provider: compress a staged file on the user machine.

    The action rewrites the file in place on the source filesystem at
    its compressed size (so the subsequent transfer state moves fewer
    bytes) and returns the updated file descriptor.
    """

    name = "local_compress"
    input_schema = {"file": "dict", "codec?": "str"}
    output_schema = {"file": "dict"}

    def __init__(
        self,
        env: Environment,
        user_fs: VirtualFS,
        rngs: "RngRegistry | None" = None,
    ) -> None:
        self.env = env
        self.user_fs = user_fs
        self.rngs = rngs or RngRegistry(0)
        self._ids = itertools.count(1)
        self._actions: dict[str, dict] = {}

    def run(self, body: dict[str, Any]) -> str:
        check_body(self.name, self.input_schema, body)
        codec_name = body.get("codec", LZ4_LIKE.name)
        try:
            codec = CODECS[codec_name]
        except KeyError:
            raise FlowError(
                f"unknown codec {codec_name!r}; available: {sorted(CODECS)}"
            ) from None
        file = dict(body["file"])
        action_id = f"compress-{next(self._ids):06d}"
        record = {
            "status": "ACTIVE",
            "started_at": self.env.now,
            "completed_at": None,
            "error": None,
            "file": None,
        }
        self._actions[action_id] = record
        self.env.process(self._drive(record, file, codec))
        return action_id

    def _drive(self, record: dict, file: dict, codec: CompressionSpec):
        size = float(file["size_bytes"])
        duration = lognormal_from_median(
            self.rngs.stream("compress.duration"),
            size / codec.compress_bytes_per_s,
            codec.jitter_sigma,
        )
        if duration > 0:
            yield self.env.timeout(duration)
        try:
            original = self.user_fs.stat(file["path"])
            compressed_size = size / codec.ratio
            self.user_fs.create(
                original.path,
                compressed_size,
                created_at=self.env.now,
                checksum=original.checksum,  # content identity preserved
                kind=original.kind,
                metadata=original.metadata,
                extra={"codec": codec.name, "original_bytes": size},
                overwrite=True,
            )
            new_file = dict(file)
            new_file["size_bytes"] = compressed_size
            new_file["codec"] = codec.name
            record["file"] = new_file
            record["status"] = "SUCCEEDED"
        except Exception as exc:
            record["status"] = "FAILED"
            record["error"] = f"{type(exc).__name__}: {exc}"
        record["completed_at"] = self.env.now

    def status(self, action_id: str) -> ActionStatus:
        try:
            record = self._actions[action_id]
        except KeyError:
            raise FlowError(f"unknown compress action: {action_id!r}") from None
        if record["status"] == "ACTIVE":
            return ActionStatus(state=ActionState.ACTIVE)
        elapsed = record["completed_at"] - record["started_at"]
        if record["status"] == "FAILED":
            return ActionStatus(
                state=ActionState.FAILED, error=record["error"], active_seconds=elapsed
            )
        return ActionStatus(
            state=ActionState.SUCCEEDED,
            result={"file": record["file"]},
            active_seconds=elapsed,
        )


COMPRESS_STATE = "CompressData"


def compress_tool(codec: CompressionSpec = LZ4_LIKE) -> GladierTool:
    """Gladier tool: compress the staged file before transfer."""
    return GladierTool(
        name="picoprobe_compress",
        states=(
            FlowState(
                name=COMPRESS_STATE,
                provider="local_compress",
                parameters={"file": "$.input.file", "codec": codec.name},
            ),
        ),
    )


def compressed_picoprobe_flow(
    client: GladierClient, title: str, codec: CompressionSpec = LZ4_LIKE
) -> FlowDefinition:
    """Compress → Transfer → Analyze → Publish.

    The transfer state reads the (unchanged) source path — the compress
    state shrank the file in place — and the analysis state receives the
    compressed descriptor from the compress step's output.
    """
    transfer = GladierTool(
        name="picoprobe_transfer_compressed",
        states=(
            FlowState(
                name="TransferData",
                provider="transfer",
                parameters={
                    "source_endpoint": "$.input.source_endpoint",
                    "source_path": "$.input.source_path",
                    "dest_endpoint": "$.input.dest_endpoint",
                    "dest_path": "$.input.dest_path",
                },
            ),
        ),
    )
    analyze = GladierTool(
        name="picoprobe_analysis_compressed",
        states=(
            FlowState(
                name="AnalyzeData",
                provider="compute",
                parameters={
                    "endpoint": "$.input.compute_endpoint",
                    "function_id": "$.input.function_id",
                    "kwargs": {"file": f"$.states.{COMPRESS_STATE}.file"},
                },
            ),
        ),
    )
    return client.compose(title, [compress_tool(codec), transfer, analyze, publish_tool()])


# ---------------------------------------------------------------------------
# Future work (Sec. 3.2): the 4-D spectral-movie use case
# ---------------------------------------------------------------------------

#: 600 frames of 200x200 pixels with 100 energy channels at float32:
#: ≈ 9.6 GB per file — the "vastly increased data volume" the paper
#: anticipates when a hyperspectral dimension is added to the movie.
SPECTRAL_MOVIE_USE_CASE = UseCaseSpec(
    name="spectral-movie",
    signal_type="spectral-movie",
    period_s=600.0,
    file_size_bytes=MB(9600),
    shape=(600, 200, 200, 100),
    dtype="<f4",
    sample=SampleInfo(
        name="Au nanoparticles on carbon (hyperspectral video)",
        elements=("Au", "C"),
    ),
)


def analyze_virtual_spectral_movie(file: dict[str, Any]) -> dict[str, Any]:
    """Combined 4-D analysis: per-frame spectral reduction + detection."""
    md = AcquisitionMetadata.from_json(file["metadata_json"])
    dest = file["dest_path"]
    stem = dest.rsplit(".", 1)[0]
    return build_search_document(
        md,
        data_location=dest,
        extra={
            "derived_products": {
                "annotated_video": f"{stem}_annotated.mpng",
                "elemental_timeseries": f"{stem}_elements.json",
            }
        },
    )


def spectral_movie_cost_model(cal: Calibration, rngs: "RngRegistry | None" = None):
    """4-D compute: spectral reduction per byte + per-frame inference."""
    rngs = rngs or RngRegistry(0)

    def model(args: tuple, kwargs: dict) -> float:
        file = kwargs.get("file") or (args[0] if args else {})
        gb = float(file.get("size_bytes", 0.0)) / 1e9
        md = AcquisitionMetadata.from_json(file["metadata_json"])
        n_frames = md.shape[0] if md.shape else 0
        median = (
            cal.hyperspectral_analysis_s_per_gb * gb
            + cal.inference_s_per_frame * n_frames
        )
        return lognormal_from_median(
            rngs.stream("cost.spectral_movie"), median, cal.analysis_jitter_sigma
        )

    return model
