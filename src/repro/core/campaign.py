"""The Sec. 3.3 performance campaigns, end to end.

``run_campaign`` reproduces one of the paper's two independent 1-hour
experiments: build the Argonne testbed, register the use case's combined
analysis function with its calibrated cost model, compose the Gladier
flow, start the periodic file copier and the watcher-triggered app, run
the simulated hour, and return the completed flow runs plus everything
needed for Table 1 / Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..chaos import ChaosController, ChaosPlan, NO_CHAOS
from ..flows import FlowDefinition, FlowRun
from ..instrument import (
    HYPERSPECTRAL_USE_CASE,
    SPATIOTEMPORAL_USE_CASE,
    FileCopier,
    UseCaseSpec,
)
from ..obs import Observability
from ..sim import Environment
from ..testbed import DEFAULT_CALIBRATION, Calibration, Testbed, build_testbed
from ..transfer import NO_FAULTS, FaultPlan
from ..units import hours
from ..watcher import CheckpointStore, SimObserver
from .app import FlowTriggerApp
from .functions import (
    analyze_virtual_hyperspectral,
    analyze_virtual_spatiotemporal,
    hyperspectral_cost_model,
    spatiotemporal_cost_model,
)
from .stats import Table1Row, table1_row
from .tools import picoprobe_flow

__all__ = ["CampaignResult", "run_campaign", "use_case_by_name"]


def use_case_by_name(name: str) -> UseCaseSpec:
    from .extensions import SPECTRAL_MOVIE_USE_CASE

    try:
        return {
            "hyperspectral": HYPERSPECTRAL_USE_CASE,
            "spatiotemporal": SPATIOTEMPORAL_USE_CASE,
            "spectral-movie": SPECTRAL_MOVIE_USE_CASE,
        }[name]
    except KeyError:
        raise ValueError(f"unknown use case {name!r}") from None


@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    use_case: UseCaseSpec
    duration_s: float
    testbed: Testbed
    #: The trigger application: a :class:`FlowTriggerApp` in file mode,
    #: a :class:`~repro.stream.StreamIngestApp` in stream mode.
    app: Any
    copier: FileCopier
    #: The composed flow definition (file mode; None in stream mode).
    definition: Optional[FlowDefinition]
    #: The armed chaos controller, or None for a clean campaign.
    chaos: Optional[ChaosController] = None
    #: The campaign's directory observer (chaos watcher crashes target it).
    observer: Optional[SimObserver] = None
    #: Which ingest path the campaign ran ("file" | "stream").
    ingest: str = "file"
    #: The :class:`~repro.integrity.IntegrityLedger`, when the campaign
    #: ran with end-to-end verification (always set under chaos
    #: corruption); None otherwise.
    ledger: Any = None

    @property
    def runs(self) -> list[FlowRun]:
        if self.ingest != "file":
            return []
        return self.app.runs

    @property
    def stream_sessions(self) -> list:
        """Stream-mode sessions (empty in file mode)."""
        if self.ingest != "stream":
            return []
        return self.app.sessions

    @property
    def trace(self):
        """The attached :class:`~repro.sim.trace.EventTraceRecorder`
        (``trace=True`` campaigns), else None."""
        hook = self.testbed.env._trace_hook
        return getattr(hook, "__self__", None)

    @property
    def completed_runs(self) -> list[FlowRun]:
        if self.ingest != "file":
            return []
        return self.app.completed_runs

    def table1(self) -> Table1Row:
        if self.ingest != "file":
            raise ValueError(
                "Table 1 summarizes flow runs; stream-mode campaigns "
                "report through result.stream_sessions"
            )
        return table1_row(
            self.use_case.name,
            self.use_case.period_s,
            self.use_case.file_size_bytes,
            self.completed_runs,
        )


def run_campaign(
    use_case: "UseCaseSpec | str",
    duration_s: float = hours(1),
    seed: int = 0,
    calibration: Calibration = DEFAULT_CALIBRATION,
    fault_plan: FaultPlan = NO_FAULTS,
    copier_mode: str = "gated",
    checkpoint: Optional[CheckpointStore] = None,
    compression: "object | None" = None,
    sanitize: bool = False,
    tiebreak: str = "fifo",
    obs: bool = False,
    chaos: ChaosPlan = NO_CHAOS,
    trace: bool = False,
    ingest: str = "file",
    integrity: Optional[bool] = None,
) -> CampaignResult:
    """Run one use case for ``duration_s`` simulated seconds.

    ``ingest`` selects the data path per flow: ``"file"`` (default) is
    the paper's watcher → transfer → polled-flow pipeline; ``"stream"``
    sends chunked acquisitions straight from the instrument host to the
    compute host over :mod:`repro.stream`, starting the analysis on
    partial data.  The default path is untouched by the streaming code
    (golden-trace gated).

    ``copier_mode="gated"`` reproduces the paper's pacing (next file at
    ``max(period, previous flow completion)`` — see DESIGN.md);
    ``"periodic"`` emits strictly every period, which overlaps flows and
    is used by the contention ablation.  Passing a
    :class:`~repro.core.extensions.CompressionSpec` as ``compression``
    inserts a compress-before-transfer state (future-work item 2).
    ``sanitize``/``tiebreak`` configure the kernel's schedule-race
    sanitizer (see :mod:`repro.core.sanitize`): with ``sanitize=True``
    the returned result's ``testbed.env.sanitizer`` holds any detected
    same-tick ordering hazards.  ``obs=True`` attaches an
    :class:`~repro.obs.Observability` bundle (span tracer + metrics
    registry) to the testbed; find it at ``result.testbed.obs``.

    ``chaos`` takes a :class:`~repro.chaos.ChaosPlan`: when the plan is
    enabled, the testbed is built with the plan's retry policies and
    transfer faults, and a :class:`~repro.chaos.ChaosController` is
    armed before the clock starts (find it at ``result.chaos``).  The
    default :data:`~repro.chaos.NO_CHAOS` builds nothing and leaves the
    campaign bit-identical to a chaos-unaware one.

    ``trace=True`` attaches an
    :class:`~repro.sim.trace.EventTraceRecorder` before the clock starts
    (find it at ``result.trace``) — the step-level event trace behind
    the golden-trace bit-identity suite.

    ``integrity`` arms the end-to-end verification layer: an
    :class:`~repro.integrity.IntegrityLedger` threaded through the data
    plane (per-chunk stream digests with NAK/retransmit, transfer
    source re-verification, verify-on-read before analysis, and the
    digest-chain gate on search publication).  The default ``None``
    enables it exactly when the chaos plan injects data corruption —
    corruption without verification would be silent, so forcing
    ``integrity=False`` under a corrupting plan raises ``ValueError``.
    Clean campaigns default to ``integrity=None`` → off, keeping the
    golden traces bit-identical.
    """
    from .extensions import (
        CompressionSpec,
        LocalCompressProvider,
        analyze_virtual_spectral_movie,
        compressed_picoprobe_flow,
        spectral_movie_cost_model,
    )

    if ingest not in ("file", "stream"):
        raise ValueError(f"unknown ingest mode {ingest!r}")
    if isinstance(use_case, str):
        use_case = use_case_by_name(use_case)
    env = Environment(sanitize=sanitize, tiebreak=tiebreak)
    if trace:
        from ..sim.trace import EventTraceRecorder

        EventTraceRecorder(env)
    chaos_on = chaos.enabled
    corruption_on = (
        chaos_on and chaos.corruption is not None and chaos.corruption.enabled
    )
    if integrity is None:
        integrity = corruption_on
    if corruption_on and not integrity:
        raise ValueError(
            "the chaos plan injects data corruption; running it without "
            "the integrity ledger (integrity=False) would make every "
            "fault silent"
        )
    if chaos_on and chaos.transfer_faults is not NO_FAULTS:
        fault_plan = chaos.transfer_faults
    tb = build_testbed(
        env=env,
        seed=seed,
        calibration=calibration,
        fault_plan=fault_plan,
        obs=Observability(env) if obs else None,
        retry_policies=chaos.policy_map() if chaos_on else None,
    )
    ledger = None
    if integrity:
        from ..integrity import IntegrityLedger

        ledger = IntegrityLedger(
            env, tracer=tb.obs.tracer, metrics=tb.obs.metrics
        )
        tb.transfer.ledger = ledger

    if use_case.signal_type == "hyperspectral":
        fn, cost = analyze_virtual_hyperspectral, hyperspectral_cost_model(
            calibration, tb.rngs
        )
    elif use_case.signal_type == "spatiotemporal":
        fn, cost = analyze_virtual_spatiotemporal, spatiotemporal_cost_model(
            calibration, tb.rngs
        )
    elif use_case.signal_type == "spectral-movie":
        fn, cost = analyze_virtual_spectral_movie, spectral_movie_cost_model(
            calibration, tb.rngs
        )
    else:
        raise ValueError(f"unknown signal type {use_case.signal_type!r}")
    if ledger is not None and ingest == "file":
        # Verify-on-read: the analysis re-checks the staged copy's
        # payload against its declared checksum before computing, and
        # attests the ``analyzed`` chain hop on success.  (Stream mode
        # verifies per chunk on arrival instead — no staged copy.)
        base_fn = fn

        def verified_fn(file: dict) -> dict:
            ledger.verify_read(tb.eagle_fs, file)
            result = base_fn(file)
            ledger.attest(
                file["path"], "analyzed", digest=file["checksum"],
                at=env.now, by="compute",
            )
            return result

        fn = verified_fn
    function_id = tb.compute.register_function(fn, cost, name=f"{use_case.name}-analysis")

    definition: Optional[FlowDefinition] = None
    publisher = None
    if ingest == "stream":
        from ..stream import (
            StreamIngestActionProvider,
            StreamIngestApp,
            StreamPublisher,
            StreamReceiver,
        )

        if compression is not None:
            raise ValueError(
                "compression is a file-mode flow state; streaming ingest "
                "sends raw chunks"
            )
        receiver = StreamReceiver(
            env,
            host="polaris-mom",
            ingest_bytes_per_s=calibration.checksum_bytes_per_s,
            tracer=tb.obs.tracer,
            metrics=tb.obs.metrics,
        )
        publisher = StreamPublisher(
            env,
            tb.fabric,
            receiver,
            src_host="picoprobe-user-machine",
            rngs=tb.rngs,
            efficiency=calibration.endpoint_efficiency,
            tracer=tb.obs.tracer,
            metrics=tb.obs.metrics,
        )
        if ledger is not None:
            receiver.ledger = ledger
            # Wire digests come from the payload as it is at send time,
            # so at-rest rot mid-session surfaces on the wire.
            publisher.source_fs = tb.user_fs
        app = StreamIngestApp(
            tb, publisher, function_id, checkpoint=checkpoint, ledger=ledger
        )
        tb.flows.register_provider(StreamIngestActionProvider(app))
    else:
        if compression is not None:
            if not isinstance(compression, CompressionSpec):
                raise ValueError("compression must be a CompressionSpec")
            tb.flows.register_provider(
                LocalCompressProvider(tb.env, tb.user_fs, tb.rngs)
            )
            definition = compressed_picoprobe_flow(
                tb.gladier, f"picoprobe-{use_case.name}-compressed", compression
            )
        else:
            definition = picoprobe_flow(tb.gladier, f"picoprobe-{use_case.name}")
        app = FlowTriggerApp(
            tb, definition, function_id, checkpoint=checkpoint, ledger=ledger
        )
    if ledger is not None:
        tb.flows.provider("search_ingest").ledger = ledger
    observer = SimObserver(tb.user_fs, prefix="/transfer")
    app.attach(observer)

    controller: Optional[ChaosController] = None
    if chaos_on:
        controller = ChaosController(
            env,
            chaos,
            transfer=tb.transfer,
            compute=tb.compute,
            search=tb.search,
            fabric=tb.fabric,
            flows=tb.flows,
            compute_endpoints=(tb.polaris,),
            rngs=tb.rngs,
            observer=observer,
            stream=publisher,
            filesystems={"picoprobe-user": tb.user_fs, "eagle": tb.eagle_fs},
            tracer=tb.obs.tracer,
            metrics=tb.obs.metrics,
        )
        controller.install()

    copier = FileCopier(
        tb.env, tb.user_fs, use_case, instrument=tb.instrument, mode=copier_mode
    )
    if copier_mode == "gated":
        app.on_complete.append(lambda run: copier.notify_flow_complete())
    tb.env.process(copier.run(until=duration_s))

    tb.env.run(until=duration_s)
    return CampaignResult(
        use_case=use_case,
        duration_s=duration_s,
        testbed=tb,
        app=app,
        copier=copier,
        definition=definition,
        chaos=controller,
        observer=observer,
        ingest=ingest,
        ledger=ledger,
    )
