"""Golden-trace capture: the bit-identity contract for perf work.

Every optimization of the DES kernel or the network fabric is gated on
*bit-identity*: the optimized code must reproduce — byte for byte — the
step-level event trace, the run/step transition trace, the span stream,
and the Table 1 / Fig. 4 numbers of the implementation it replaced, for
the shipped campaigns, under both the ``fifo`` and ``lifo`` same-tick
tie-breaks.

This module captures one campaign's full observable fingerprint into a
JSON payload and round-trips it through reproducible gzip files.  The
checked-in goldens under ``tests/goldens/`` were recorded on the
pre-optimization paths; ``tests/test_golden_traces.py`` replays each
campaign on the current code and compares.

Regenerate (only when campaign *behaviour* legitimately changes)::

    PYTHONPATH=src python -c "from repro.core.goldens import record_all; \\
        record_all('tests/goldens')"
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
from dataclasses import asdict
from typing import Any

__all__ = [
    "GOLDEN_SPECS",
    "capture_golden",
    "golden_filename",
    "read_golden",
    "record_all",
    "write_golden",
]

#: The shipped campaign set the bit-identity gate covers: both Sec. 3.3
#: use cases clean, plus one chaos scenario, for three seeds and both
#: same-tick tie-breaks.  Each spec is ``(kind, use_case, seed,
#: tiebreak)`` where ``kind`` is ``"campaign"`` or a chaos scenario name.
GOLDEN_SPECS: tuple[tuple[str, str, int, str], ...] = tuple(
    (kind, uc, seed, tiebreak)
    for kind, uc in (
        ("campaign", "hyperspectral"),
        ("campaign", "spatiotemporal"),
        ("outage", "hyperspectral"),
    )
    for seed in (1, 2, 3)
    for tiebreak in ("fifo", "lifo")
)


def golden_filename(kind: str, use_case: str, seed: int, tiebreak: str) -> str:
    return f"{kind}-{use_case}-s{seed}-{tiebreak}.json.gz"


def capture_golden(
    kind: str,
    use_case: str,
    seed: int,
    tiebreak: str,
    duration_s: float = 3600.0,
) -> dict[str, Any]:
    """Run one shipped campaign and capture its full fingerprint."""
    from ..chaos import delivery_breakdown, run_chaos_campaign
    from ..obs import spans_to_jsonl
    from .campaign import run_campaign
    from .sanitize import campaign_trace
    from .stats import fig4_samples

    if kind == "campaign":
        res = run_campaign(
            use_case,
            duration_s=duration_s,
            seed=seed,
            tiebreak=tiebreak,
            obs=True,
            trace=True,
        )
        breakdown = None
    else:
        res = run_chaos_campaign(
            kind,
            use_case=use_case,
            duration_s=duration_s,
            seed=seed,
            obs=True,
            tiebreak=tiebreak,
            trace=True,
        )
        breakdown = delivery_breakdown(res)
    recorder = res.trace
    assert recorder is not None
    spans_text = spans_to_jsonl(res.testbed.obs.tracer.spans)
    payload: dict[str, Any] = {
        "meta": {
            "kind": kind,
            "use_case": use_case,
            "seed": seed,
            "tiebreak": tiebreak,
            "duration_s": duration_s,
        },
        "events": recorder.lines,
        "campaign_trace": campaign_trace(res),
        "table1": asdict(res.table1()),
        "fig4": fig4_samples(res.runs),
        "n_spans": len(res.testbed.obs.tracer.spans),
        "spans_sha256": hashlib.sha256(spans_text.encode("utf-8")).hexdigest(),
    }
    if breakdown is not None:
        payload["breakdown"] = breakdown
    return payload


def write_golden(path: str, payload: dict[str, Any]) -> None:
    """Write a reproducible (mtime-free) gzip JSON golden."""
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    buf = io.BytesIO()
    with gzip.GzipFile(filename="", mode="wb", fileobj=buf, mtime=0) as gz:
        gz.write(raw)
    with open(path, "wb") as fh:
        fh.write(buf.getvalue())


def read_golden(path: str) -> dict[str, Any]:
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        return json.load(fh)


def record_all(directory: str) -> list[str]:
    """Capture every :data:`GOLDEN_SPECS` entry into ``directory``."""
    os.makedirs(directory, exist_ok=True)
    written = []
    for kind, use_case, seed, tiebreak in GOLDEN_SPECS:
        payload = capture_golden(kind, use_case, seed, tiebreak)
        path = os.path.join(directory, golden_filename(kind, use_case, seed, tiebreak))
        write_golden(path, payload)
        written.append(path)
        print(f"recorded {path}: {len(payload['events'])} events")
    return written
