"""The Gladier tools composing the paper's two flows.

Both use cases share one three-step shape (Sec. 2.2): **Transfer** the
EMD file from the user machine to Eagle, **Analyze** it on Polaris via
the compute service (one combined function: image processing + metadata
extraction), and **Publish** the resulting record to the search index.
The tools are parameterized entirely through flow input (`$.input.*`)
and step outputs (`$.states.*`), exactly how Gladier threads data
between states.
"""

from __future__ import annotations

from ..flows import FlowDefinition, FlowState, GladierClient, GladierTool

__all__ = [
    "transfer_tool",
    "analysis_tool",
    "publish_tool",
    "picoprobe_flow",
    "TRANSFER_STATE",
    "ANALYZE_STATE",
    "PUBLISH_STATE",
]

TRANSFER_STATE = "TransferData"
ANALYZE_STATE = "AnalyzeData"
PUBLISH_STATE = "PublishResults"


def transfer_tool() -> GladierTool:
    """Move the new file from the instrument machine to Eagle."""
    return GladierTool(
        name="picoprobe_transfer",
        states=(
            FlowState(
                name=TRANSFER_STATE,
                provider="transfer",
                parameters={
                    "source_endpoint": "$.input.source_endpoint",
                    "source_path": "$.input.source_path",
                    "dest_endpoint": "$.input.dest_endpoint",
                    "dest_path": "$.input.dest_path",
                },
            ),
        ),
    )


def analysis_tool() -> GladierTool:
    """Run the combined analysis + metadata-extraction function."""
    return GladierTool(
        name="picoprobe_analysis",
        states=(
            FlowState(
                name=ANALYZE_STATE,
                provider="compute",
                parameters={
                    "endpoint": "$.input.compute_endpoint",
                    "function_id": "$.input.function_id",
                    "kwargs": {"file": "$.input.file"},
                },
            ),
        ),
    )


def publish_tool() -> GladierTool:
    """Ingest the analysis output into the portal's search index."""
    return GladierTool(
        name="picoprobe_publish",
        states=(
            FlowState(
                name=PUBLISH_STATE,
                provider="search_ingest",
                parameters={
                    "index": "$.input.search_index",
                    "subject": "$.input.subject",
                    "content": f"$.states.{ANALYZE_STATE}.output",
                    "visible_to": "$.input.visible_to",
                },
            ),
        ),
    )


def picoprobe_flow(client: GladierClient, title: str) -> FlowDefinition:
    """Compose the canonical Transfer → Analyze → Publish flow."""
    return client.compose(title, [transfer_tool(), analysis_tool(), publish_tool()])
