"""Campaign statistics: the quantities Table 1 and Fig. 4 report."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..flows import FlowRun, RunStatus
from ..units import format_bytes
from ..viz import BoxStats, box_chart
from .tools import ANALYZE_STATE, PUBLISH_STATE, TRANSFER_STATE

__all__ = ["Table1Row", "table1_row", "render_table1", "fig4_samples", "fig4_svg"]

#: Paper step name ↔ our flow state name.
STEP_LABELS = (
    ("Transfer", TRANSFER_STATE),
    ("Analysis", ANALYZE_STATE),
    ("Publication", PUBLISH_STATE),
)


@dataclass(frozen=True)
class Table1Row:
    """One column of Table 1."""

    use_case: str
    start_period_s: float
    transfer_volume_mb: float
    total_data_gb: float
    min_runtime_s: float
    mean_runtime_s: float
    max_runtime_s: float
    median_overhead_s: float
    median_overhead_pct: float
    total_runs: int

    def as_dict(self) -> dict:
        return {
            "Start period (s)": round(self.start_period_s),
            "Transfer volume (MB)": round(self.transfer_volume_mb),
            "Total data transfer (GB)": round(self.total_data_gb, 2),
            "Min flow runtime (s)": round(self.min_runtime_s),
            "Mean flow runtime (s)": round(self.mean_runtime_s),
            "Max flow runtime (s)": round(self.max_runtime_s),
            "Median overhead (s)": round(self.median_overhead_s, 1),
            "Median overhead (%)": round(self.median_overhead_pct, 1),
            "Total flow runs": self.total_runs,
        }


def _completed(runs: Sequence[FlowRun]) -> list[FlowRun]:
    return [r for r in runs if r.status is RunStatus.SUCCEEDED]


def table1_row(
    use_case_name: str,
    start_period_s: float,
    transfer_volume_bytes: float,
    runs: Sequence[FlowRun],
) -> Table1Row:
    """Aggregate completed runs into a Table 1 column."""
    done = _completed(runs)
    if not done:
        raise ValueError(f"no completed runs for use case {use_case_name!r}")
    runtimes = np.array([r.runtime_seconds for r in done])
    overheads = np.array([r.overhead_seconds for r in done])
    overhead_pcts = np.array([100 * r.overhead_fraction for r in done])
    return Table1Row(
        use_case=use_case_name,
        start_period_s=start_period_s,
        transfer_volume_mb=transfer_volume_bytes / 1e6,
        total_data_gb=transfer_volume_bytes * len(done) / 1e9,
        min_runtime_s=float(runtimes.min()),
        mean_runtime_s=float(runtimes.mean()),
        max_runtime_s=float(runtimes.max()),
        median_overhead_s=float(np.median(overheads)),
        median_overhead_pct=float(np.median(overhead_pcts)),
        total_runs=len(done),
    )


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Text rendering in the paper's layout (metrics × use cases)."""
    if not rows:
        raise ValueError("render_table1 needs at least one row")
    metrics = list(rows[0].as_dict().keys())
    header = ["Metric"] + [r.use_case.capitalize() for r in rows]
    body = [
        [m] + [str(r.as_dict()[m]) for r in rows]
        for m in metrics
    ]
    widths = [
        max(len(line[i]) for line in [header] + body) for i in range(len(header))
    ]

    def fmt(line: list[str]) -> str:
        return " | ".join(cell.ljust(w) for cell, w in zip(line, widths))

    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([fmt(header), sep] + [fmt(line) for line in body])


def fig4_samples(runs: Sequence[FlowRun]) -> dict[str, list[float]]:
    """Per-run samples of each Fig. 4 quantity: the three step active
    times, total Active, and Overhead."""
    done = _completed(runs)
    out: dict[str, list[float]] = {label: [] for label, _ in STEP_LABELS}
    out["Active"] = []
    out["Overhead"] = []
    for r in done:
        for label, state in STEP_LABELS:
            try:
                out[label].append(r.step(state).active_seconds)
            except KeyError:
                pass
        out["Active"].append(r.active_seconds)
        out["Overhead"].append(r.overhead_seconds)
    return out


def fig4_svg(runs: Sequence[FlowRun], title: str) -> str:
    """The Fig. 4 panel: box statistics of the itemized runtimes."""
    samples = fig4_samples(runs)
    boxes = [
        BoxStats.from_samples(label, xs) for label, xs in samples.items() if xs
    ]
    return box_chart(boxes, title=title, ylabel="seconds", width=760, height=420)
