"""Parallel deterministic campaign sweeps.

A *sweep* runs a grid of campaign variants — (kind, use case, seed,
tie-break, duration) tuples — and collects one deterministic outcome
payload per variant.  Because every campaign is a sealed DES (its result
is a pure function of its variant), variants can run in worker
*processes* with no shared state; the merge is by submission order, so

    run_sweep(variants, jobs=8) == run_sweep(variants, jobs=1)

payload for payload, regardless of which worker finished first.  That
equality is the parallel runner's correctness gate: it is asserted by
the test suite and re-checked by ``python -m repro bench``.

``python -m repro sweep`` is the CLI: by default it runs the chaos
scenario grid (every named scenario x seeds) and prints one line per
variant plus an aggregate delivery table.
"""

# repro: noqa-file[D101]  sweep outcomes exclude wall-clock on purpose

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "SweepOutcome",
    "SweepVariant",
    "campaign_grid",
    "chaos_grid",
    "run_sweep",
    "run_variant",
]


@dataclass(frozen=True)
class SweepVariant:
    """One cell of a sweep grid.

    ``kind`` is ``"campaign"`` for a clean run or the name of a chaos
    scenario (see :data:`repro.chaos.SCENARIOS`).
    """

    kind: str = "campaign"
    use_case: str = "hyperspectral"
    seed: int = 0
    duration_s: float = 3600.0
    tiebreak: str = "fifo"

    @property
    def name(self) -> str:
        return (
            f"{self.kind}/{self.use_case}"
            f"-s{self.seed}-{self.tiebreak}-{self.duration_s:.0f}s"
        )


@dataclass
class SweepOutcome:
    """One variant's deterministic result.

    :meth:`payload` is the bit-stable comparison surface — everything in
    it is a pure function of the variant (no wall-clock, no pids, no
    object ids), so serial and parallel sweeps can be compared with
    ``==``.
    """

    variant: SweepVariant
    table1: dict[str, Any]
    n_runs: int
    n_completed: int
    #: Delivered-vs-dropped accounting; None for clean campaigns.
    breakdown: Optional[dict[str, Any]] = None

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "variant": asdict(self.variant),
            "table1": self.table1,
            "n_runs": self.n_runs,
            "n_completed": self.n_completed,
        }
        if self.breakdown is not None:
            out["breakdown"] = self.breakdown
        return out


def run_variant(variant: SweepVariant) -> SweepOutcome:
    """Run one variant to completion (executed inside worker processes)."""
    from ..chaos import delivery_breakdown, run_chaos_campaign
    from .campaign import run_campaign

    if variant.kind == "campaign":
        res = run_campaign(
            variant.use_case,
            duration_s=variant.duration_s,
            seed=variant.seed,
            tiebreak=variant.tiebreak,
        )
        breakdown = None
    else:
        res = run_chaos_campaign(
            variant.kind,
            use_case=variant.use_case,
            duration_s=variant.duration_s,
            seed=variant.seed,
            tiebreak=variant.tiebreak,
        )
        breakdown = delivery_breakdown(res)
    return SweepOutcome(
        variant=variant,
        table1=asdict(res.table1()),
        n_runs=len(res.runs),
        n_completed=len(res.completed_runs),
        breakdown=breakdown,
    )


def run_sweep(
    variants: Sequence[SweepVariant], jobs: int = 1
) -> list[SweepOutcome]:
    """Run every variant; return outcomes in ``variants`` order.

    ``jobs > 1`` fans the variants out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  ``Executor.map``
    yields results in submission order — not completion order — so the
    merge is deterministic by construction and the returned list is
    payload-identical to a serial run.
    """
    variants = list(variants)
    if jobs <= 1 or len(variants) <= 1:
        return [run_variant(v) for v in variants]
    workers = min(jobs, len(variants))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run_variant, variants))


def campaign_grid(
    use_cases: Iterable[str] = ("hyperspectral", "spatiotemporal"),
    seeds: Iterable[int] = (1,),
    duration_s: float = 3600.0,
    tiebreaks: Iterable[str] = ("fifo",),
) -> list[SweepVariant]:
    """The clean-campaign grid: use cases x seeds x tie-breaks."""
    return [
        SweepVariant(
            kind="campaign",
            use_case=uc,
            seed=seed,
            duration_s=duration_s,
            tiebreak=tb,
        )
        for uc in use_cases
        for seed in seeds
        for tb in tiebreaks
    ]


def chaos_grid(
    scenarios: Optional[Iterable[str]] = None,
    use_cases: Iterable[str] = ("hyperspectral",),
    seeds: Iterable[int] = (0, 1),
    duration_s: float = 3600.0,
    tiebreaks: Iterable[str] = ("fifo",),
) -> list[SweepVariant]:
    """The resilience grid: chaos scenarios x use cases x seeds."""
    from ..chaos import SCENARIOS

    if scenarios is None:
        scenarios = sorted(SCENARIOS)
    else:
        # Validate up front: an unknown name should fail here, not as an
        # exception propagated out of a worker process mid-sweep.
        scenarios = list(scenarios)
        unknown = [s for s in scenarios if s not in SCENARIOS]
        if unknown:
            from ..errors import ChaosError

            raise ChaosError(
                f"unknown scenario(s) {unknown}; available: {sorted(SCENARIOS)}"
            )
    return [
        SweepVariant(
            kind=sc,
            use_case=uc,
            seed=seed,
            duration_s=duration_s,
            tiebreak=tb,
        )
        for sc in scenarios
        for uc in use_cases
        for seed in seeds
        for tb in tiebreaks
    ]


def render_sweep(outcomes: Sequence[SweepOutcome]) -> str:
    """One line per variant plus an aggregate delivery summary."""
    lines = []
    agg = {"delivered": 0, "degraded": 0, "dead_lettered": 0,
           "failed_other": 0, "still_active": 0, "runs": 0}
    any_chaos = False
    for o in outcomes:
        t1 = o.table1
        desc = (
            f"{o.variant.name:<44s} runs {o.n_completed:>3d}/{o.n_runs:<3d} "
            f"mean flow {t1['mean_runtime_s']:7.1f}s"
        )
        if o.breakdown is not None:
            any_chaos = True
            b = o.breakdown
            desc += (
                f"  delivered {b['delivered']:>3d}  degraded {b['degraded']:>2d}"
                f"  dead {b['dead_lettered']:>2d}"
            )
            for key in agg:
                agg[key] += b[key]
        lines.append(desc)
    if any_chaos and agg["runs"]:
        lines.append("")
        lines.append(
            f"aggregate: {agg['runs']} runs — "
            f"{agg['delivered']} delivered, {agg['degraded']} degraded, "
            f"{agg['dead_lettered']} dead-lettered, "
            f"{agg['failed_other']} failed, {agg['still_active']} active"
        )
    return "\n".join(lines)


def run_sweep_cli(args: Any) -> int:
    """The ``python -m repro sweep`` entry point."""
    import json
    import time

    seeds = tuple(int(s) for s in args.seeds.split(","))
    use_cases = tuple(args.use_cases.split(","))
    if args.grid == "chaos":
        scenarios = tuple(args.scenarios.split(",")) if args.scenarios else None
        variants = chaos_grid(
            scenarios=scenarios,
            use_cases=use_cases,
            seeds=seeds,
            duration_s=args.duration,
        )
    else:
        variants = campaign_grid(
            use_cases=use_cases, seeds=seeds, duration_s=args.duration
        )
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    t0 = time.perf_counter()
    outcomes = run_sweep(variants, jobs=jobs)
    wall = time.perf_counter() - t0
    print(render_sweep(outcomes))
    print(
        f"\n{len(outcomes)} variant(s) in {wall:.1f}s wall "
        f"({jobs} job(s))"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump([o.payload() for o in outcomes], fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0
