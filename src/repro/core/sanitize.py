"""Campaign-level schedule-race sanitization: detect, then confirm.

The kernel's :class:`~repro.sim.sanitize.ScheduleSanitizer` flags
cohorts of same-``(time, priority)`` events whose order is fixed only by
insertion sequence (S901).  This module adds the confirmation step:
:func:`sanitize_campaign` runs the campaign twice — once under the
documented FIFO tie-break and once with it reversed
(``Environment(tiebreak="lifo")``) — and diffs the two event traces.
A model that is genuinely order-clean produces byte-identical traces
under both tie-breaks; any divergence (S902) is a *confirmed* schedule
race: observable campaign output that depends on which line of code
happened to call ``schedule()`` first.

Both finding kinds are reported as
:class:`~repro.lint.diagnostics.Diagnostic` objects so ``python -m
repro sanitize`` shares the lint CLI's ``--fail-on`` / ``--format
sarif`` / ``--output`` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lint.diagnostics import Diagnostic, Severity
from ..sim.sanitize import RaceReport
from ..testbed import DEFAULT_CALIBRATION, Calibration
from ..transfer import NO_FAULTS, FaultPlan
from .campaign import CampaignResult, run_campaign

__all__ = [
    "campaign_trace",
    "sanitize_campaign",
    "SanitizeResult",
    "RACE_RULE_ID",
    "DIVERGENCE_RULE_ID",
]

#: Dynamic-finding rule ids (S9xx: sanitizer space, outside the static
#: registry — reported straight through Diagnostic like E000).
RACE_RULE_ID = "S901"
DIVERGENCE_RULE_ID = "S902"

#: Divergent trace lines reported individually before summarizing.
_MAX_DIVERGENCES = 20


def campaign_trace(result: CampaignResult) -> list[str]:
    """A deterministic line-per-observation event trace of one campaign.

    Full-precision (``repr``) timestamps of every run and step
    transition: any reordering that affects observable behaviour shows
    up here, while benign same-tick reorderings do not.
    """
    lines: list[str] = []
    for run in result.runs:
        lines.append(
            f"{run.run_id} {run.status.value} "
            f"started={run.started_at!r} finished={run.finished_at!r}"
        )
        for s in run.steps:
            lines.append(
                f"  {s.name} entered={s.entered_at!r} "
                f"submitted={s.submitted_at!r} detected={s.detected_at!r} "
                f"polls={s.polls} active={s.active_seconds!r}"
            )
    lines.append(
        f"copier files={len(result.copier.emitted)} "
        f"provisioned={result.testbed.scheduler.provision_count}"
    )
    return lines


@dataclass
class SanitizeResult:
    """Everything the two-run sanitization produced."""

    campaign: str
    forward: CampaignResult
    reverse: CampaignResult
    races_forward: list[RaceReport]
    races_reverse: list[RaceReport]
    trace_forward: list[str]
    trace_reverse: list[str]

    @property
    def divergences(self) -> list[tuple[int, Optional[str], Optional[str]]]:
        """``(line number, forward line, reverse line)`` mismatches
        (``None`` marks a line present in only one trace)."""
        out: list[tuple[int, Optional[str], Optional[str]]] = []
        fwd, rev = self.trace_forward, self.trace_reverse
        for i in range(max(len(fwd), len(rev))):
            a = fwd[i] if i < len(fwd) else None
            b = rev[i] if i < len(rev) else None
            if a != b:
                out.append((i + 1, a, b))
        return out

    @property
    def clean(self) -> bool:
        return (
            not self.races_forward
            and not self.races_reverse
            and not self.divergences
        )

    def diagnostics(self) -> list[Diagnostic]:
        """Render races (S901) and confirmed divergences (S902) through
        the analyzer's diagnostic machinery."""
        path = f"<campaign:{self.campaign}>"
        out: list[Diagnostic] = []
        seen: set[str] = set()
        for direction, races in (
            ("fifo", self.races_forward),
            ("lifo", self.races_reverse),
        ):
            for race in races:
                text = race.describe()
                if text in seen:
                    continue  # same hazard observed under both tie-breaks
                seen.add(text)
                out.append(
                    Diagnostic(
                        path=path,
                        line=1,
                        col=1,
                        rule_id=RACE_RULE_ID,
                        severity=Severity.ERROR,
                        message=f"[{direction}] {text}",
                    )
                )
        divergences = self.divergences
        for line, a, b in divergences[:_MAX_DIVERGENCES]:
            out.append(
                Diagnostic(
                    path=path,
                    line=line,
                    col=1,
                    rule_id=DIVERGENCE_RULE_ID,
                    severity=Severity.ERROR,
                    message=(
                        f"trace diverges under reversed tie-break: "
                        f"fifo={a!r} lifo={b!r}"
                    ),
                )
            )
        if len(divergences) > _MAX_DIVERGENCES:
            out.append(
                Diagnostic(
                    path=path,
                    line=divergences[_MAX_DIVERGENCES][0],
                    col=1,
                    rule_id=DIVERGENCE_RULE_ID,
                    severity=Severity.ERROR,
                    message=(
                        f"... and {len(divergences) - _MAX_DIVERGENCES} more "
                        f"divergent trace line(s)"
                    ),
                )
            )
        return out


def sanitize_campaign(
    use_case: str = "hyperspectral",
    duration_s: float = 600.0,
    seed: int = 0,
    calibration: Calibration = DEFAULT_CALIBRATION,
    fault_plan: FaultPlan = NO_FAULTS,
    copier_mode: str = "gated",
) -> SanitizeResult:
    """Run ``use_case`` twice — FIFO and reversed (LIFO) same-tick
    ordering, both under the schedule sanitizer — and diff the traces."""
    forward = run_campaign(
        use_case,
        duration_s=duration_s,
        seed=seed,
        calibration=calibration,
        fault_plan=fault_plan,
        copier_mode=copier_mode,
        sanitize=True,
        tiebreak="fifo",
    )
    reverse = run_campaign(
        use_case,
        duration_s=duration_s,
        seed=seed,
        calibration=calibration,
        fault_plan=fault_plan,
        copier_mode=copier_mode,
        sanitize=True,
        tiebreak="lifo",
    )
    name = use_case if isinstance(use_case, str) else use_case.name
    sanitizer_f = forward.testbed.env.sanitizer
    sanitizer_r = reverse.testbed.env.sanitizer
    assert sanitizer_f is not None and sanitizer_r is not None
    return SanitizeResult(
        campaign=name,
        forward=forward,
        reverse=reverse,
        races_forward=sanitizer_f.races(),
        races_reverse=sanitizer_r.races(),
        trace_forward=campaign_trace(forward),
        trace_reverse=campaign_trace(reverse),
    )
