"""The flow-trigger application on the PicoProbe user machine.

The paper's lightweight watcher app (Sec. 2.2.1): when a new EMD file
appears, consult the checkpoint store (skip files already processed —
the reboot/resume protection), build the flow input, and start a Globus
flow.  "Our application is very lightweight as the task logic,
orchestration, and fault tolerance are managed by Gladier/Globus
automation services."
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

from ..errors import ComputeError
from ..flows import FlowDefinition, FlowRun, GladierClient
from ..testbed import EAGLE_EP, PICOPROBE_EP, POLARIS_EP, PORTAL_INDEX, Testbed
from ..watcher import CheckpointStore, FileCreatedEvent, SimObserver
from .functions import file_descriptor

__all__ = ["FlowTriggerApp"]


class FlowTriggerApp:
    """Watches for new files and launches one flow per file."""

    def __init__(
        self,
        testbed: Testbed,
        definition: FlowDefinition,
        function_id: str,
        checkpoint: Optional[CheckpointStore] = None,
        dest_dir: str = "/picoprobe/data",
        visible_to: tuple[str, ...] = ("public",),
        ledger: Any = None,
    ) -> None:
        self.testbed = testbed
        self.definition = definition
        self.function_id = function_id
        #: Integrity hook: a duck-typed
        #: :class:`~repro.integrity.IntegrityLedger`.  When set, each
        #: acquisition opens a digest chain at trigger time, and a run
        #: that ends with its chain open is quarantined.
        self.ledger = ledger
        # Note: an empty store is falsy, so test for None explicitly.
        self.checkpoint = checkpoint if checkpoint is not None else CheckpointStore()
        self.dest_dir = dest_dir.rstrip("/")
        self.visible_to = visible_to
        self.runs: list[FlowRun] = []
        self.skipped: int = 0
        #: Callbacks fired when a run reaches a terminal state.
        self.on_complete: list[Callable[[FlowRun], None]] = []

    def attach(self, observer: SimObserver) -> None:
        """Subscribe to a directory observer."""
        observer.add_handler(self.handle_event)

    # -- event handling ---------------------------------------------------
    def handle_event(self, event: FileCreatedEvent) -> FlowRun | None:
        """Start a flow for a new EMD file (or skip via checkpoint)."""
        if not event.is_emd:
            return None
        if event.virtual is None:
            raise ComputeError(
                "FlowTriggerApp drives simulated campaigns; real-filesystem "
                "events carry no metadata to analyze"
            )
        vf = event.virtual
        if self.checkpoint.is_processed(vf.path, vf.checksum):
            self.skipped += 1
            return None
        dest_path = f"{self.dest_dir}/{os.path.basename(vf.path)}"
        acquisition_id = (
            vf.metadata.acquisition_id if vf.metadata is not None else vf.checksum
        )
        if self.ledger is not None:
            self.ledger.begin(
                vf.path, declared=vf.checksum, subject=acquisition_id,
                at=self.testbed.env.now,
            )
        run = self.testbed.gladier.run_flow(
            self.definition,
            {
                "source_endpoint": PICOPROBE_EP,
                "source_path": vf.path,
                "dest_endpoint": EAGLE_EP,
                "dest_path": dest_path,
                "compute_endpoint": POLARIS_EP,
                "function_id": self.function_id,
                "file": file_descriptor(vf, dest_path),
                "search_index": PORTAL_INDEX,
                "subject": acquisition_id,
                "visible_to": list(self.visible_to),
            },
        )
        self.checkpoint.mark_processed(vf.path, vf.checksum)
        self.runs.append(run)
        self.testbed.env.process(self._notify_on_complete(run))
        return run

    def _notify_on_complete(self, run: FlowRun):
        yield run.completed
        if self.ledger is not None:
            # Reconcile: a terminal run whose digest chain never closed
            # (failed transfer, mismatched read, dead-lettered publish)
            # is dead-lettered with its chain, never indexed.
            path = run.input.get("source_path")
            chain = self.ledger.chain(path) if path is not None else None
            if chain is not None and not chain.closed:
                self.ledger.quarantine(
                    path,
                    reason=run.error
                    or f"flow run ended {run.status.value} with open chain",
                )
        for cb in list(self.on_complete):
            cb(run)

    # -- reporting ---------------------------------------------------------
    @property
    def completed_runs(self) -> list[FlowRun]:
        return [r for r in self.runs if r.status.terminal]
