"""The analysis functions the flows execute on Polaris.

Two tiers, matching how the reproduction splits content from timing:

* **Campaign (virtual) functions** operate on a *file descriptor* —
  path, size, embedded metadata JSON — and produce the real DataCite
  search document the publication step ingests.  Their simulated
  duration comes from calibrated cost models (seconds per GB for the
  hyperspectral reductions; cast+encode per GB plus per-frame inference
  for the movie pipeline), so Fig. 4's compute phase is data-dependent,
  not a constant.
* **Content functions** (:func:`analyze_hyperspectral_file`,
  :func:`analyze_spatiotemporal_file`) run the full real pipeline over a
  real EMD file on disk — used by the examples and the Fig. 2/3 benches.

Per the paper (Sec. 2.2.2), metadata extraction and image processing are
**combined into a single function** "which avoids reading the EMD file
twice and minimizes flow orchestration overhead".
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

import numpy as np

from ..analysis import (
    BlobDetector,
    DetectorParams,
    annotate_video,
    build_search_document,
    count_series,
    identify_elements,
    intensity_figure_svg,
    movie_to_uint8,
    spectrum_figure_svg,
    sum_spectrum,
)
from ..emd import AcquisitionMetadata, EmdFile
from ..errors import ComputeError
from ..rng import RngRegistry, lognormal_from_median
from ..storage import VirtualFile
from ..testbed.calibration import Calibration

__all__ = [
    "file_descriptor",
    "analyze_virtual_hyperspectral",
    "analyze_virtual_spatiotemporal",
    "hyperspectral_cost_model",
    "spatiotemporal_cost_model",
    "analyze_hyperspectral_file",
    "analyze_spatiotemporal_file",
]


def file_descriptor(f: VirtualFile, dest_path: str) -> dict[str, Any]:
    """What the flow carries about a staged file (JSON-serializable)."""
    if f.metadata is None:
        raise ComputeError(f"virtual file {f.path} has no embedded metadata")
    return {
        "path": f.path,
        "dest_path": dest_path,
        "size_bytes": f.size_bytes,
        "checksum": f.checksum,
        "signal_type": f.metadata.signal_type,
        "metadata_json": f.metadata.to_json(),
    }


# -- campaign (virtual) functions ------------------------------------------------


def analyze_virtual_hyperspectral(file: dict[str, Any]) -> dict[str, Any]:
    """Combined metadata-extraction + image-processing step (virtual).

    Parses the embedded metadata (the HyperSpy pass) and emits the
    DataCite record referencing the plots the real pipeline would have
    produced alongside the data on Eagle.
    """
    md = AcquisitionMetadata.from_json(file["metadata_json"])
    dest = file["dest_path"]
    stem = os.path.splitext(dest)[0]
    return build_search_document(
        md,
        data_location=dest,
        extra={
            "derived_products": {
                "intensity_image": f"{stem}_intensity.svg",
                "sum_spectrum": f"{stem}_spectrum.svg",
            }
        },
    )


def analyze_virtual_spatiotemporal(file: dict[str, Any]) -> dict[str, Any]:
    """Combined conversion + inference + metadata step (virtual)."""
    md = AcquisitionMetadata.from_json(file["metadata_json"])
    dest = file["dest_path"]
    stem = os.path.splitext(dest)[0]
    return build_search_document(
        md,
        data_location=dest,
        extra={
            "derived_products": {
                "annotated_video": f"{stem}_annotated.mpng",
                "particle_counts": f"{stem}_counts.json",
            }
        },
    )


def hyperspectral_cost_model(
    cal: Calibration, rngs: Optional[RngRegistry] = None
) -> Callable[[tuple, dict], float]:
    """Simulated duration of the combined hyperspectral function."""
    rngs = rngs or RngRegistry(0)

    def model(args: tuple, kwargs: dict) -> float:
        file = kwargs.get("file") or (args[0] if args else {})
        gb = float(file.get("size_bytes", 0.0)) / 1e9
        median = cal.hyperspectral_analysis_floor_s + cal.hyperspectral_analysis_s_per_gb * gb
        return lognormal_from_median(
            rngs.stream("cost.hyperspectral"), median, cal.analysis_jitter_sigma
        )

    return model


def spatiotemporal_cost_model(
    cal: Calibration, rngs: Optional[RngRegistry] = None
) -> Callable[[tuple, dict], float]:
    """Simulated duration of conversion (the fp64→uint8 cast + encode,
    proportional to bytes) plus per-frame inference."""
    rngs = rngs or RngRegistry(0)

    def model(args: tuple, kwargs: dict) -> float:
        file = kwargs.get("file") or (args[0] if args else {})
        gb = float(file.get("size_bytes", 0.0)) / 1e9
        md = AcquisitionMetadata.from_json(file["metadata_json"])
        n_frames = md.shape[0] if md.shape else 0
        median = cal.conversion_s_per_gb * gb + cal.inference_s_per_frame * n_frames
        return lognormal_from_median(
            rngs.stream("cost.spatiotemporal"), median, cal.analysis_jitter_sigma
        )

    return model


# -- content functions (real EMD files) ----------------------------------------------


def analyze_hyperspectral_file(
    emd_path: "str | os.PathLike",
    output_dir: "str | os.PathLike",
) -> dict[str, Any]:
    """The real Sec. 3.1 pipeline: reductions + plots + metadata.

    Writes ``*_intensity.svg`` and ``*_spectrum.svg`` next to the
    returned search document (which embeds both plots for the portal).
    """
    out = os.fspath(output_dir)
    os.makedirs(out, exist_ok=True)
    with EmdFile(emd_path) as f:
        handle = f.signal()
        if handle.signal_type != "hyperspectral":
            raise ComputeError(
                f"{emd_path}: expected hyperspectral, got {handle.signal_type!r}"
            )
        cube = handle.data.read()
        energies = handle.dim(3).values
        md = f.metadata()

    intensity_svg = intensity_figure_svg(cube)
    spectrum_svg = spectrum_figure_svg(cube, energies)
    stem = os.path.join(out, os.path.splitext(os.path.basename(os.fspath(emd_path)))[0])
    with open(f"{stem}_intensity.svg", "w", encoding="utf-8") as fh:
        fh.write(intensity_svg)
    with open(f"{stem}_spectrum.svg", "w", encoding="utf-8") as fh:
        fh.write(spectrum_svg)

    hits = identify_elements(sum_spectrum(cube), energies)
    return build_search_document(
        md,
        plots={"intensity image": intensity_svg, "sum spectrum": spectrum_svg},
        data_location=os.fspath(emd_path),
        extra={
            "detected_elements": sorted({h.element for h in hits}),
        },
    )


def analyze_spatiotemporal_file(
    emd_path: "str | os.PathLike",
    output_dir: "str | os.PathLike",
    detector_params: Optional[DetectorParams] = None,
    confidence_threshold: float = 0.5,
) -> dict[str, Any]:
    """The real Sec. 3.2 pipeline: convert, detect, annotate, count."""
    out = os.fspath(output_dir)
    os.makedirs(out, exist_ok=True)
    with EmdFile(emd_path) as f:
        handle = f.signal()
        if handle.signal_type != "spatiotemporal":
            raise ComputeError(
                f"{emd_path}: expected spatiotemporal, got {handle.signal_type!r}"
            )
        movie = handle.data.read()
        md = f.metadata()

    movie_u8 = movie_to_uint8(movie)  # the paper's casting bottleneck
    detector = BlobDetector(detector_params)
    detections = detector.detect_movie(movie)
    counts = count_series(detections, min_confidence=confidence_threshold)

    stem = os.path.join(out, os.path.splitext(os.path.basename(os.fspath(emd_path)))[0])
    annotated = f"{stem}_annotated.mpng"
    annotate_video(
        movie_u8, detections, annotated, confidence_threshold=confidence_threshold
    )
    return build_search_document(
        md,
        data_location=os.fspath(emd_path),
        extra={
            "annotated_video": annotated,
            "particle_counts": [int(c) for c in counts],
            "mean_particle_count": float(np.mean(counts)),
        },
    )
