"""Computationally mediated science: the Fig. 1 feedback loop.

The paper's high-level vision (Fig. 1, steps 3-4) has the ML/AI layer
(iii) "segment and detect features … to assist in calibrating
measurement", (iv) "perform error correction by alerting the Dynamic
PicoProbe operator to calibration problems", and finally synthesize
"an actionable summary to assist domain scientists".

This module closes that loop over published campaign results:

* :func:`detect_drift` — flags calibration problems from the per-frame
  particle-count series (sudden count collapse → beam/focus problem;
  monotonic decline → stage drift or beam damage);
* :class:`OperatorAlert` / :func:`scan_for_alerts` — turns drift
  verdicts and failed flows into operator alerts;
* :func:`actionable_summary` — the end-of-campaign digest: throughput,
  bottleneck attribution, alert roll-up, and a recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..flows import FlowRun, RunStatus
from ..units import format_bytes, format_duration

__all__ = ["DriftVerdict", "detect_drift", "OperatorAlert", "scan_for_alerts", "actionable_summary"]


@dataclass(frozen=True)
class DriftVerdict:
    """Outcome of calibration-drift analysis on a count series."""

    status: str  # "ok" | "count-collapse" | "monotonic-decline" | "unstable"
    detail: str
    first_bad_frame: int = -1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def detect_drift(
    counts: Sequence[int],
    collapse_fraction: float = 0.5,
    decline_threshold: float = -0.3,
    instability_cv: float = 0.35,
) -> DriftVerdict:
    """Analyze a per-frame particle-count series for calibration problems.

    * **count collapse**: any frame where the count drops below
      ``collapse_fraction`` of the running median — the signature of a
      defocus/beam event;
    * **monotonic decline**: a fitted slope losing more than
      ``|decline_threshold|`` of the initial count over the movie —
      stage drift or beam damage;
    * **instability**: coefficient of variation above ``instability_cv``.
    """
    xs = np.asarray(counts, dtype=np.float64)
    if xs.size < 5:
        return DriftVerdict("ok", f"series too short to judge ({xs.size} frames)")
    baseline = float(np.median(xs[: max(5, xs.size // 10)]))
    if baseline <= 0:
        return DriftVerdict(
            "count-collapse", "no particles detected at movie start", 0
        )
    low = np.nonzero(xs < collapse_fraction * baseline)[0]
    if low.size:
        t = int(low[0])
        return DriftVerdict(
            "count-collapse",
            f"count fell to {int(xs[t])} (<{collapse_fraction:.0%} of baseline "
            f"{baseline:.0f}) at frame {t} — check focus/beam",
            t,
        )
    slope = float(np.polyfit(np.arange(xs.size), xs, 1)[0]) * xs.size / baseline
    if slope < decline_threshold:
        return DriftVerdict(
            "monotonic-decline",
            f"counts declining {abs(slope):.0%} over the movie — "
            "suspect stage drift or beam damage",
            0,
        )
    cv = float(xs.std() / xs.mean()) if xs.mean() > 0 else 0.0
    if cv > instability_cv:
        return DriftVerdict(
            "unstable",
            f"count coefficient of variation {cv:.2f} — noisy detection, "
            "consider re-calibrating the detector",
        )
    return DriftVerdict("ok", f"stable counts (baseline {baseline:.0f}, cv {cv:.2f})")


@dataclass(frozen=True)
class OperatorAlert:
    """One message for the instrument operator."""

    severity: str  # "warning" | "error"
    source: str  # run id or subject
    message: str


def scan_for_alerts(
    runs: Sequence[FlowRun],
    count_series_by_subject: "dict[str, Sequence[int]] | None" = None,
) -> list[OperatorAlert]:
    """Turn failed flows and drift verdicts into operator alerts."""
    alerts: list[OperatorAlert] = []
    for r in runs:
        if r.status is RunStatus.FAILED:
            alerts.append(
                OperatorAlert("error", r.run_id, f"flow failed: {r.error}")
            )
    for subject, counts in (count_series_by_subject or {}).items():
        verdict = detect_drift(counts)
        if not verdict.ok:
            alerts.append(OperatorAlert("warning", subject, verdict.detail))
    return alerts


def actionable_summary(
    runs: Sequence[FlowRun],
    bytes_per_run: float,
    alerts: Sequence[OperatorAlert] = (),
) -> dict[str, Any]:
    """The Fig. 1 step-4 digest for the domain scientist."""
    done = [r for r in runs if r.status is RunStatus.SUCCEEDED]
    failed = [r for r in runs if r.status is RunStatus.FAILED]
    if not done:
        return {
            "headline": "no flows completed",
            "alerts": [a.message for a in alerts],
            "recommendation": "inspect service health before continuing",
        }
    runtimes = np.array([r.runtime_seconds for r in done])
    overheads = np.array([r.overhead_fraction for r in done])
    transfer_share = []
    for r in done:
        try:
            transfer_share.append(
                r.step("TransferData").active_seconds / max(r.active_seconds, 1e-9)
            )
        except KeyError:
            pass
    bottleneck = (
        "data transfer"
        if transfer_share and float(np.median(transfer_share)) > 0.5
        else "analysis compute"
    )
    if float(np.median(overheads)) > 0.4:
        recommendation = (
            "flow orchestration overhead exceeds 40% of runtime: tighten the "
            "polling backoff before upgrading hardware"
        )
    elif bottleneck == "data transfer":
        recommendation = (
            "transfer-bound: enable compression or upgrade the site uplink "
            "to increase experiments per hour"
        )
    else:
        recommendation = "compute-bound: request more Polaris nodes or optimize the analysis kernel"
    return {
        "headline": (
            f"{len(done)} experiments analyzed "
            f"({format_bytes(bytes_per_run * len(done))} moved), "
            f"median flow {format_duration(float(np.median(runtimes)))}"
        ),
        "completed": len(done),
        "failed": len(failed),
        "median_runtime_s": float(np.median(runtimes)),
        "median_overhead_pct": float(100 * np.median(overheads)),
        "bottleneck": bottleneck,
        "alerts": [f"[{a.severity}] {a.source}: {a.message}" for a in alerts],
        "recommendation": recommendation,
    }
