"""The paper's contribution: PicoProbe → supercomputer data flows.

Gladier tools composing the Transfer → Analyze → Publish flow
(``tools``), the combined analysis functions with calibrated cost models
(``functions``), the watcher-triggered client application (``app``), the
Sec. 3.3 performance campaigns (``campaign``), and the Table 1 / Fig. 4
statistics (``stats``).
"""

from .app import FlowTriggerApp
from .campaign import CampaignResult, run_campaign, use_case_by_name
from .sanitize import SanitizeResult, campaign_trace, sanitize_campaign
from .functions import (
    analyze_hyperspectral_file,
    analyze_spatiotemporal_file,
    analyze_virtual_hyperspectral,
    analyze_virtual_spatiotemporal,
    file_descriptor,
    hyperspectral_cost_model,
    spatiotemporal_cost_model,
)
from .stats import Table1Row, fig4_samples, fig4_svg, render_table1, table1_row
from .steering import (
    DriftVerdict,
    OperatorAlert,
    actionable_summary,
    detect_drift,
    scan_for_alerts,
)
from .tools import (
    ANALYZE_STATE,
    PUBLISH_STATE,
    TRANSFER_STATE,
    analysis_tool,
    picoprobe_flow,
    publish_tool,
    transfer_tool,
)

__all__ = [
    "FlowTriggerApp",
    "CampaignResult",
    "run_campaign",
    "use_case_by_name",
    "SanitizeResult",
    "sanitize_campaign",
    "campaign_trace",
    "file_descriptor",
    "analyze_virtual_hyperspectral",
    "analyze_virtual_spatiotemporal",
    "analyze_hyperspectral_file",
    "analyze_spatiotemporal_file",
    "hyperspectral_cost_model",
    "spatiotemporal_cost_model",
    "Table1Row",
    "table1_row",
    "render_table1",
    "fig4_samples",
    "fig4_svg",
    "transfer_tool",
    "analysis_tool",
    "publish_tool",
    "picoprobe_flow",
    "TRANSFER_STATE",
    "ANALYZE_STATE",
    "PUBLISH_STATE",
    "detect_drift",
    "DriftVerdict",
    "OperatorAlert",
    "scan_for_alerts",
    "actionable_summary",
]
