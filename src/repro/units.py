"""Physical quantities used throughout the simulator.

All internal APIs exchange plain floats in **base units** — bytes, seconds,
bytes/second — so hot paths never pay object overhead (see the optimization
guide: measure first, keep inner loops on scalars/arrays).  This module
provides named constructors and formatters so call sites stay legible:

    >>> from repro.units import MB, Gbps, format_bytes
    >>> MB(91)
    91000000.0
    >>> Gbps(1)
    125000000.0
    >>> format_bytes(MB(1200))
    '1.20 GB'

Decimal (SI) prefixes are used for file sizes and link rates, matching how
the paper reports them (91 MB, 1200 MB, 1 Gbps, 6.42 GB).
"""

from __future__ import annotations

__all__ = [
    "KB", "MB", "GB", "TB",
    "KiB", "MiB", "GiB",
    "bps", "Kbps", "Mbps", "Gbps",
    "seconds", "minutes", "hours",
    "format_bytes", "format_rate", "format_duration",
]

_KB = 1e3
_MB = 1e6
_GB = 1e9
_TB = 1e12


def KB(n: float) -> float:
    """``n`` kilobytes in bytes (decimal)."""
    return float(n) * _KB


def MB(n: float) -> float:
    """``n`` megabytes in bytes (decimal)."""
    return float(n) * _MB


def GB(n: float) -> float:
    """``n`` gigabytes in bytes (decimal)."""
    return float(n) * _GB


def TB(n: float) -> float:
    """``n`` terabytes in bytes (decimal)."""
    return float(n) * _TB


def KiB(n: float) -> float:
    """``n`` kibibytes in bytes (binary)."""
    return float(n) * 1024.0


def MiB(n: float) -> float:
    """``n`` mebibytes in bytes (binary)."""
    return float(n) * 1024.0**2


def GiB(n: float) -> float:
    """``n`` gibibytes in bytes (binary)."""
    return float(n) * 1024.0**3


def bps(n: float) -> float:
    """``n`` bits/second as bytes/second."""
    return float(n) / 8.0


def Kbps(n: float) -> float:
    """``n`` kilobits/second as bytes/second."""
    return float(n) * _KB / 8.0


def Mbps(n: float) -> float:
    """``n`` megabits/second as bytes/second."""
    return float(n) * _MB / 8.0


def Gbps(n: float) -> float:
    """``n`` gigabits/second as bytes/second."""
    return float(n) * _GB / 8.0


def seconds(n: float) -> float:
    """Identity, for symmetry at call sites."""
    return float(n)


def minutes(n: float) -> float:
    """``n`` minutes in seconds."""
    return float(n) * 60.0


def hours(n: float) -> float:
    """``n`` hours in seconds."""
    return float(n) * 3600.0


def format_bytes(n: float) -> str:
    """Human-readable decimal byte count: ``format_bytes(6.42e9) == '6.42 GB'``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, factor in (("TB", _TB), ("GB", _GB), ("MB", _MB), ("kB", _KB)):
        if n >= factor:
            return f"{sign}{n / factor:.2f} {unit}"
    return f"{sign}{n:.0f} B"


def format_rate(bytes_per_second: float) -> str:
    """Human-readable rate in bits/second: ``format_rate(Gbps(1)) == '1.00 Gbps'``."""
    bits = float(bytes_per_second) * 8.0
    for unit, factor in (("Tbps", _TB), ("Gbps", _GB), ("Mbps", _MB), ("kbps", _KB)):
        if bits >= factor:
            return f"{bits / factor:.2f} {unit}"
    return f"{bits:.0f} bps"


def format_duration(secs: float) -> str:
    """Compact ``h:mm:ss`` / ``m:ss`` / ``s`` rendering of a duration."""
    secs = float(secs)
    sign = "-" if secs < 0 else ""
    secs = abs(secs)
    if secs < 60:
        return f"{sign}{secs:.1f}s"
    m, s = divmod(int(round(secs)), 60)
    if m < 60:
        return f"{sign}{m}m{s:02d}s"
    h, m = divmod(m, 60)
    return f"{sign}{h}h{m:02d}m{s:02d}s"
