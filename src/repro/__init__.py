"""PicoProbe DataFlow — reproduction of "Linking the Dynamic PicoProbe
Analytical Electron-Optical Beam Line / Microscope to Supercomputers"
(SC 2023 workshops).

The package implements the paper's instrument-to-HPC data-flow
infrastructure and every substrate it depends on, from scratch:

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.emd` — EMD / h5lite scientific container format;
* :mod:`repro.instrument` — the simulated Dynamic PicoProbe;
* :mod:`repro.net`, :mod:`repro.transfer` — max-min-fair network fabric
  and the Globus-Transfer-style mover;
* :mod:`repro.compute` — Globus-Compute-style function serving over a
  PBS-like batch scheduler;
* :mod:`repro.flows` — Globus-Flows/Gladier-style orchestration with
  the paper's exponential polling backoff;
* :mod:`repro.search`, :mod:`repro.portal` — Globus-Search-style index
  and the DGPF-style data portal;
* :mod:`repro.watcher` — the watchdog-style trigger app substrate;
* :mod:`repro.analysis` — hyperspectral reductions, metadata
  extraction, EMD→video conversion, nanoparticle detection/tracking;
* :mod:`repro.core` — the paper's flows, campaigns, and statistics;
* :mod:`repro.testbed` — the calibrated Argonne-like world.

Quickstart::

    from repro.core import run_campaign, render_table1
    hyper = run_campaign("hyperspectral", seed=1)
    print(render_table1([hyper.table1()]))
"""

from . import (
    analysis,
    auth,
    compute,
    core,
    emd,
    flows,
    instrument,
    net,
    portal,
    search,
    sim,
    storage,
    testbed,
    transfer,
    viz,
    watcher,
)
from .core import CampaignResult, render_table1, run_campaign
from .testbed import Calibration, Testbed, build_testbed

__version__ = "1.0.0"

__all__ = [
    "run_campaign",
    "render_table1",
    "CampaignResult",
    "build_testbed",
    "Testbed",
    "Calibration",
    "sim",
    "emd",
    "instrument",
    "net",
    "transfer",
    "compute",
    "flows",
    "search",
    "portal",
    "watcher",
    "analysis",
    "core",
    "testbed",
    "storage",
    "auth",
    "viz",
    "__version__",
]
