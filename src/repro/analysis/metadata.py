"""Experiment-metadata extraction: the HyperSpy step.

Sec. 2.2.2: "the EMD file is parsed to extract experiment metadata by
using the HyperSpy Python package.  The metadata includes sample
collection date and time; acquisition instrument (i.e., microscope)
details, such as stage and detector positions, beam energy, and
magnification; and other information, such as software versioning."

:func:`extract_metadata` re-implements that parse over our EMD files
(walking the container, decoding the JSON payload) and
:func:`build_search_document` turns the result into the DataCite-style
record the publication step ingests.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from ..emd import AcquisitionMetadata, EmdFile
from ..errors import FormatError
from ..search.datacite import make_record

__all__ = ["extract_metadata", "metadata_tree", "build_search_document"]


def extract_metadata(source: "str | os.PathLike | EmdFile") -> AcquisitionMetadata:
    """Parse an EMD file's embedded experiment metadata."""
    if isinstance(source, EmdFile):
        return source.metadata()
    with EmdFile(source) as f:
        return f.metadata()


def metadata_tree(md: AcquisitionMetadata) -> dict[str, Any]:
    """A HyperSpy-style nested metadata dictionary.

    Mirrors the tree layout HyperSpy exposes
    (``General`` / ``Acquisition_instrument`` / ``Sample`` / ``Signal``),
    which is what the portal's Fig. 2C table and downstream tools expect.
    """
    mic = md.microscope
    return {
        "General": {
            "title": md.acquisition_id,
            "date": md.acquired_at_iso.split("T")[0] if md.acquired_at_iso else "",
            "time": md.acquired_at_iso.split("T")[1] if "T" in md.acquired_at_iso else "",
            "operator": md.operator,
            "software_version": md.software_version,
        },
        "Acquisition_instrument": {
            "TEM": {
                "microscope": mic.instrument,
                "beam_energy_kev": mic.beam_energy_kev,
                "probe_size_pm": mic.probe_size_pm,
                "magnification": mic.magnification,
                "camera_length_mm": mic.camera_length_mm,
                "vacuum_environment": mic.vacuum_environment,
                "Stage": {
                    "x_um": mic.stage.x_um,
                    "y_um": mic.stage.y_um,
                    "z_um": mic.stage.z_um,
                    "tilt_alpha_deg": mic.stage.alpha_deg,
                    "tilt_beta_deg": mic.stage.beta_deg,
                },
                "Detectors": [
                    {
                        "name": d.name,
                        "kind": d.kind,
                        "solid_angle_sr": d.solid_angle_sr,
                        "energy_resolution_ev": d.energy_resolution_ev,
                        "enabled": d.enabled,
                    }
                    for d in mic.detectors
                ],
            }
        },
        "Sample": {
            "name": md.sample.name,
            "description": md.sample.description,
            "elements": list(md.sample.elements),
            "preparation": md.sample.preparation,
        },
        "Signal": {
            "signal_type": md.signal_type,
            "shape": list(md.shape),
            "dtype": md.dtype,
        },
    }


def build_search_document(
    md: AcquisitionMetadata,
    plots: Optional[dict[str, str]] = None,
    data_location: Optional[str] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """The DataCite record published for one acquisition.

    ``plots`` maps plot name → SVG markup (embedded by the portal);
    ``data_location`` is the permanent Eagle path of the raw file.
    """
    if not md.acquisition_id:
        raise FormatError("metadata missing acquisition_id")
    year = 2023
    if md.acquired_at_iso[:4].isdigit():
        year = int(md.acquired_at_iso[:4])
    title = {
        "hyperspectral": f"Hyperspectral acquisition {md.acquisition_id}: {md.sample.name or 'sample'}",
        "spatiotemporal": f"Spatiotemporal acquisition {md.acquisition_id}: {md.sample.name or 'sample'}",
    }.get(md.signal_type, f"Acquisition {md.acquisition_id}")
    doc = make_record(
        identifier=f"picoprobe:{md.acquisition_id}",
        title=title,
        creators=[md.operator or "unknown"],
        publication_year=year,
        resource_type="Dataset",
        dates={"created": md.acquired_at_iso},
        subjects=[md.signal_type, *md.sample.elements],
        experiment={
            "acquisition_id": md.acquisition_id,
            "operator": md.operator,
            "signal_type": md.signal_type,
            "shape": list(md.shape),
            "dtype": md.dtype,
            "microscope": {
                "instrument": md.microscope.instrument,
                "beam_energy_kev": md.microscope.beam_energy_kev,
                "probe_size_pm": md.microscope.probe_size_pm,
                "magnification": md.microscope.magnification,
                "stage": {
                    "x_um": md.microscope.stage.x_um,
                    "y_um": md.microscope.stage.y_um,
                    "z_um": md.microscope.stage.z_um,
                    "alpha_deg": md.microscope.stage.alpha_deg,
                    "beta_deg": md.microscope.stage.beta_deg,
                },
                "detectors": [
                    {"name": d.name, "kind": d.kind} for d in md.microscope.detectors
                ],
            },
            "sample": {
                "name": md.sample.name,
                "elements": list(md.sample.elements),
            },
            "software_version": md.software_version,
        },
    )
    if plots:
        doc["plots"] = dict(plots)
    if data_location:
        doc["data_location"] = data_location
    if extra:
        doc.update(extra)
    return doc
