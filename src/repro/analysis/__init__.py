"""Data-analysis library: everything the flows run on the HPC side.

Hyperspectral reductions (Fig. 2), HyperSpy-style metadata extraction,
EMD→video conversion with the fp64→uint8 cast (the paper's compute
bottleneck), the DoG nanoparticle detector with calibration
("fine-tuning") and COCO-style mAP50-95 (Sec. 3.2), and IoU tracking
(Fig. 3).
"""

from .detection import BlobDetector, Detection, DetectorParams, calibrate, nms
from .hyperspectral import (
    ElementHit,
    identify_elements,
    intensity_figure_svg,
    intensity_map,
    spectrum_figure_svg,
    sum_spectrum,
)
from .labeling import LabeledFrame, LabelingSpec, hand_label, split_9_3_1
from .metadata import build_search_document, extract_metadata, metadata_tree
from .metrics import Box, average_precision, iou, iou_matrix, map_range, match_greedy
from .tracking import IouTracker, Track, count_series
from .video import (
    annotate_video,
    convert_emd_to_video,
    frame_to_uint8,
    movie_to_uint8,
    read_video,
    video_info,
    write_video,
)

__all__ = [
    "intensity_map",
    "sum_spectrum",
    "identify_elements",
    "ElementHit",
    "intensity_figure_svg",
    "spectrum_figure_svg",
    "extract_metadata",
    "metadata_tree",
    "build_search_document",
    "BlobDetector",
    "Detection",
    "DetectorParams",
    "calibrate",
    "nms",
    "Box",
    "iou",
    "iou_matrix",
    "match_greedy",
    "average_precision",
    "map_range",
    "IouTracker",
    "Track",
    "count_series",
    "LabeledFrame",
    "LabelingSpec",
    "hand_label",
    "split_9_3_1",
    "movie_to_uint8",
    "frame_to_uint8",
    "write_video",
    "read_video",
    "video_info",
    "convert_emd_to_video",
    "annotate_video",
]
