"""Synthetic hand-labeling: the Roboflow step.

The paper hand-labels every 50th of 600 frames (13 frames: nine
training, three validation, one test) with bounding boxes drawn around
the gold nanoparticles.  We synthesize that labeling pass from the
simulator's ground truth: the selected frames' true boxes, perturbed by
small jitter in position and size — the imprecision of a human drawing
boxes — optionally with a miss rate for barely visible particles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..instrument.phantoms import Particle
from .metrics import Box

__all__ = ["LabeledFrame", "LabelingSpec", "hand_label", "split_9_3_1"]


@dataclass(frozen=True)
class LabelingSpec:
    """How sloppy the human labeler is.

    Defaults model a careful, zoomed-in annotator: half-pixel center
    accuracy and ~4% size spread — enough residual error that mAP at
    IoU 0.90–0.95 degrades, as it does for the paper's labels.
    """

    every_nth: int = 50
    center_jitter_px: float = 0.5
    size_jitter_frac: float = 0.04
    miss_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.every_nth < 1:
            raise ReproError("every_nth must be >= 1")
        if not 0 <= self.miss_prob < 1:
            raise ReproError("miss_prob must be in [0, 1)")


@dataclass(frozen=True)
class LabeledFrame:
    """One hand-labeled frame: index + boxes."""

    frame_index: int
    boxes: tuple[Box, ...]


def hand_label(
    truth: "list[list[Particle]]",
    spec: "LabelingSpec | None" = None,
    rng: "np.random.Generator | None" = None,
) -> list[LabeledFrame]:
    """Label every ``spec.every_nth`` frame from ground truth."""
    spec = spec or LabelingSpec()
    if rng is None:
        rng = np.random.default_rng(0)
    out: list[LabeledFrame] = []
    for t in range(0, len(truth), spec.every_nth):
        boxes = []
        for p in truth[t]:
            if spec.miss_prob and rng.random() < spec.miss_prob:
                continue
            dx, dy = rng.normal(0.0, spec.center_jitter_px, size=2)
            scale = 1.0 + rng.normal(0.0, spec.size_jitter_frac)
            r = max(p.radius * scale, 1.0)
            boxes.append(
                Box(
                    x0=p.col + dx - r,
                    y0=p.row + dy - r,
                    x1=p.col + dx + r,
                    y1=p.row + dy + r,
                )
            )
        out.append(LabeledFrame(frame_index=t, boxes=tuple(boxes)))
    return out


def split_9_3_1(
    labeled: "list[LabeledFrame]",
) -> tuple[list[LabeledFrame], list[LabeledFrame], list[LabeledFrame]]:
    """The paper's split: 9 training, 3 validation, 1 test frame.

    Applied proportionally when a different number of frames was
    labeled (test-scale movies label fewer): ~69% / 23% / remainder,
    with at least one frame in each non-empty split.
    """
    n = len(labeled)
    if n < 3:
        raise ReproError(f"need at least 3 labeled frames to split, got {n}")
    # Interleave to decorrelate splits from time (the paper picks every
    # 50th frame; assigning blocks would bias val/test late-movie).
    train, val, test = [], [], []
    if n == 13:
        n_train, n_val = 9, 3
    else:
        n_train = max(1, round(n * 9 / 13))
        n_val = max(1, round(n * 3 / 13))
        if n_train + n_val >= n:
            n_val = max(1, n - n_train - 1)
            if n_train + n_val >= n:
                n_train = n - 2
                n_val = 1
    for i, lf in enumerate(labeled):
        if i < n_train:
            train.append(lf)
        elif i < n_train + n_val:
            val.append(lf)
        else:
            test.append(lf)
    return train, val, test
