"""Nanoparticle detection: the YOLOv8 substitute.

The paper fine-tunes YOLOv8s on nine hand-labeled frames to detect gold
nanoparticles.  Deep-learning frameworks are unavailable here, so we
implement the classical detector the task actually demands — bright,
roughly circular blobs on a noisy background — with the same *pipeline
shape* as the paper's: a trainable model (parameters calibrated on the
hand-labeled split, our "fine-tuning"), per-frame inference emitting
confidence-scored bounding boxes, and mAP50-95 evaluation.

Method: multi-scale Difference-of-Gaussians proposes candidate peaks;
each candidate's box size is then *refined* by measuring the blob's
half-maximum radius in the background-subtracted image (continuous, not
quantized to the scale grid); confidence grows with response over
threshold; non-maximum suppression removes duplicates across scales.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np
from scipy import ndimage

from ..errors import ReproError
from .metrics import Box, iou_matrix, map_range

__all__ = ["Detection", "DetectorParams", "BlobDetector", "nms", "calibrate"]


@dataclass(frozen=True)
class Detection(Box):
    """A detected particle (inherits box geometry + confidence)."""

    scale: float = 0.0  # σ of the best-responding scale


@dataclass(frozen=True)
class DetectorParams:
    """The 'weights' of the classical model — what calibration tunes.

    ``radius_scale`` converts the measured blob width σ_b (flux-weighted
    moment estimate) into the box half-size; for Gaussian-profile
    particles whose visual radius is ≈ 1.8 σ_b, the ideal value is ≈ 1.9
    after window-truncation bias.
    """

    sigmas: tuple[float, ...] = (2.0, 2.8, 3.8, 5.2, 7.0, 9.5)
    threshold: float = 8.0  # scale-normalized response threshold
    k: float = 1.6  # DoG scale ratio
    radius_scale: float = 1.9  # box half-size = radius_scale * sigma_b
    nms_iou: float = 0.35
    min_radius_px: float = 1.5
    #: Confidence cut for *counting/annotation* decisions (set by
    #: calibration to maximize F1 on the training split; mAP itself is
    #: computed over all detections, as is standard).
    operating_confidence: float = 0.5

    def __post_init__(self) -> None:
        if not self.sigmas or any(s <= 0 for s in self.sigmas):
            raise ReproError(f"sigmas must be positive: {self.sigmas}")
        if self.threshold <= 0 or self.k <= 1.0 or self.radius_scale <= 0:
            raise ReproError("invalid detector parameters")


def _center_inside(inner: Box, outer: Box) -> bool:
    cx, cy = inner.center
    return outer.x0 <= cx <= outer.x1 and outer.y0 <= cy <= outer.y1


def nms(dets: Sequence[Detection], iou_threshold: float) -> list[Detection]:
    """Greedy non-maximum suppression by confidence.

    A candidate is suppressed if it overlaps a kept detection above the
    IoU threshold, *or* if either box's center lies inside the other —
    which removes large-scale responses that merge two adjacent
    particles (their merged box overlaps each individual one too little
    for plain IoU suppression).

    The pairwise IoU and center-inside matrices are computed once for
    the whole candidate set; the greedy scan then masks rows instead of
    rebuilding a fresh matrix per candidate.  Decisions are identical
    to the per-candidate formulation (``sorted`` is stable, and every
    comparison sees the same float values).
    """
    if not dets:
        return []
    order = sorted(dets, key=lambda d: -d.confidence)
    n = len(order)
    if n == 1:
        return [order[0]]
    iou = iou_matrix(order, order)
    coords = np.array([[d.x0, d.y0, d.x1, d.y1] for d in order])
    cx = (coords[:, 0] + coords[:, 2]) / 2.0
    cy = (coords[:, 1] + coords[:, 3]) / 2.0
    inside = (
        (coords[None, :, 0] <= cx[:, None])
        & (cx[:, None] <= coords[None, :, 2])
        & (coords[None, :, 1] <= cy[:, None])
        & (cy[:, None] <= coords[None, :, 3])
    )
    either = inside | inside.T
    kept: list[Detection] = [order[0]]
    kept_mask = np.zeros(n, dtype=bool)
    kept_mask[0] = True
    # Greedy suppression is inherently sequential — whether candidate i
    # survives depends on which earlier candidates survived — so this
    # scan cannot batch further; the O(n²) pair geometry above is the
    # vectorized part.
    for i in range(1, n):  # repro: noqa[P602]
        if iou[i, kept_mask].max() >= iou_threshold:
            continue
        if either[i, kept_mask].any():
            continue
        kept.append(order[i])
        kept_mask[i] = True
    return kept


def _refine_blob(
    flat: np.ndarray, y: int, x: int, sigma: float
) -> tuple[float, float, float]:
    """Sub-pixel center and size estimate from flux-weighted moments.

    Within a ±2.5σ window around the peak, the centroid of the positive
    background-subtracted intensity gives the center, and the average
    per-axis weighted variance gives the blob's Gaussian width σ_b.
    Returns ``(cy, cx, sigma_b)``.
    """
    h, w = flat.shape
    half = max(2, int(np.ceil(2.5 * sigma)))
    r0, r1 = max(y - half, 0), min(y + half + 1, h)
    c0, c1 = max(x - half, 0), min(x + half + 1, w)
    win = np.clip(flat[r0:r1, c0:c1], 0.0, None)
    total = win.sum()
    if total <= 0:
        return float(y), float(x), float(sigma)
    ys = np.arange(r0, r1, dtype=np.float64)[:, None]
    xs = np.arange(c0, c1, dtype=np.float64)[None, :]
    cy = float((win * ys).sum() / total)
    cx = float((win * xs).sum() / total)
    var_y = float((win * (ys - cy) ** 2).sum() / total)
    var_x = float((win * (xs - cx) ** 2).sum() / total)
    sigma_b = float(np.sqrt(max((var_y + var_x) / 2.0, 1e-6)))
    return cy, cx, sigma_b


def _refine_batch(
    flat: np.ndarray, ts: np.ndarray, ys: np.ndarray, xs: np.ndarray, sigma: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`_refine_blob` over candidates in a frame stack.

    ``flat`` is (T, H, W); candidates are (frame, row, col) index
    arrays; the window half-size is fixed per σ, so interior candidates
    refine as one (n, K, K) gather + axis reductions.  Wall-clipped
    windows (variable size) fall back to the scalar helper.  The axis
    reductions see the same contiguous K·K runs the scalar ``.sum()``
    reduces, so pairwise summation produces bit-identical moments.
    """
    n = ts.shape[0]
    _, h, w = flat.shape
    half = max(2, int(np.ceil(2.5 * sigma)))
    k = 2 * half + 1
    r0 = ys - half
    c0 = xs - half
    cy = np.empty(n, dtype=np.float64)
    cx = np.empty(n, dtype=np.float64)
    sb = np.empty(n, dtype=np.float64)
    interior = (r0 >= 0) & (ys + half + 1 <= h) & (c0 >= 0) & (xs + half + 1 <= w)
    idx = np.nonzero(interior)[0]
    if idx.size:
        offs = np.arange(k, dtype=np.int64)
        rr = r0[idx, None] + offs  # (n_i, K)
        cc = c0[idx, None] + offs
        wins = np.clip(
            flat[ts[idx, None, None], rr[:, :, None], cc[:, None, :]], 0.0, None
        )
        total = wins.sum(axis=(1, 2))
        bad = total <= 0
        safe = np.where(bad, 1.0, total)
        ysf = rr.astype(np.float64)[:, :, None]  # (n_i, K, 1)
        xsf = cc.astype(np.float64)[:, None, :]  # (n_i, 1, K)
        cyv = (wins * ysf).sum(axis=(1, 2)) / safe
        cxv = (wins * xsf).sum(axis=(1, 2)) / safe
        var_y = (wins * (ysf - cyv[:, None, None]) ** 2).sum(axis=(1, 2)) / safe
        var_x = (wins * (xsf - cxv[:, None, None]) ** 2).sum(axis=(1, 2)) / safe
        sbv = np.sqrt(np.maximum((var_y + var_x) / 2.0, 1e-6))
        cy[idx] = np.where(bad, ys[idx].astype(np.float64), cyv)
        cx[idx] = np.where(bad, xs[idx].astype(np.float64), cxv)
        sb[idx] = np.where(bad, sigma, sbv)
    for i in np.nonzero(~interior)[0]:
        cy[i], cx[i], sb[i] = _refine_blob(
            flat[ts[i]], int(ys[i]), int(xs[i]), sigma
        )
    return cy, cx, sb


#: Frame-stack block budget for batched detection: bounds the working
#: set (each block holds ~6 float64 temporaries of its own size).
_BLOCK_BYTES = 32 << 20


class BlobDetector:
    """Multi-scale DoG detector with calibrated parameters."""

    def __init__(self, params: "DetectorParams | None" = None) -> None:
        self.params = params or DetectorParams()

    def detect(self, frame: np.ndarray) -> list[Detection]:
        """Detect particles in one 2-D frame (any float/int dtype)."""
        img = np.asarray(frame, dtype=np.float64)
        if img.ndim != 2:
            raise ReproError(f"detect() wants a 2-D frame, got shape {img.shape}")
        return self._detect_block(img[None])[0]

    def _detect_block(self, stack: np.ndarray) -> list[list[Detection]]:
        """Batched inference over a (T, H, W) float64 stack.

        All filters run with σ 0 on the frame axis, which is exactly
        per-frame filtering executed in one C call; candidate
        refinement and box math are vectorized across every peak of a
        scale.  Per-frame candidate order (scale-major, then row-major)
        and all float arithmetic match the scalar path bit for bit.
        """
        p = self.params
        n_frames, h, w = stack.shape
        # Remove the slowly varying background so thresholds are about
        # blob contrast, not absolute counts.
        background = ndimage.gaussian_filter(
            stack, sigma=(0.0, 4.0 * max(p.sigmas), 4.0 * max(p.sigmas))
        )
        flat = stack - background
        candidates: list[list[Detection]] = [[] for _ in range(n_frames)]
        for sigma in p.sigmas:
            g1 = ndimage.gaussian_filter(flat, (0.0, sigma, sigma))
            g2 = ndimage.gaussian_filter(flat, (0.0, sigma * p.k, sigma * p.k))
            response = (g1 - g2) * (sigma ** 0.5)
            peaks = (
                (response == ndimage.maximum_filter(response, size=(1, 3, 3)))
                & (response > p.threshold)
            )
            ts, ys, xs = np.nonzero(peaks)
            if not ts.size:
                continue
            r_resp = response[ts, ys, xs]
            conf = r_resp / (r_resp + p.threshold)
            cy, cx, sigma_b = _refine_batch(flat, ts, ys, xs, sigma)
            half_box = np.maximum(p.radius_scale * sigma_b, p.min_radius_px)
            x0 = np.maximum(0.0, cx - half_box)
            y0 = np.maximum(0.0, cy - half_box)
            x1 = np.minimum(float(w - 1), cx + half_box)
            y1 = np.minimum(float(h - 1), cy + half_box)
            for i in range(ts.shape[0]):
                candidates[ts[i]].append(
                    Detection(
                        x0=float(x0[i]),
                        y0=float(y0[i]),
                        x1=float(x1[i]),
                        y1=float(y1[i]),
                        confidence=float(conf[i]),
                        scale=sigma,
                    )
                )
        return [nms(c, p.nms_iou) for c in candidates]

    def detect_movie(self, movie: np.ndarray) -> list[list[Detection]]:
        """Per-frame inference over a (T, H, W) tensor, batched over
        frame blocks (results keep the per-frame list-of-lists shape)."""
        movie = np.asarray(movie)
        if movie.ndim != 3:
            raise ReproError(f"detect_movie() wants (T, H, W), got {movie.shape}")
        n_frames = movie.shape[0]
        frame_bytes = max(1, movie.shape[1] * movie.shape[2] * 8)
        block = max(1, _BLOCK_BYTES // frame_bytes)
        out: list[list[Detection]] = []
        for t0 in range(0, n_frames, block):
            stack = np.asarray(movie[t0 : t0 + block], dtype=np.float64)
            out.extend(self._detect_block(stack))
        return out


def calibrate(
    frames: Sequence[np.ndarray],
    labels: Sequence[Sequence[Box]],
    base: "DetectorParams | None" = None,
    thresholds: Sequence[float] = (4.0, 6.0, 9.0, 14.0, 22.0),
    radius_scales: Sequence[float] = (1.7, 1.85, 2.0, 2.15),
) -> tuple[DetectorParams, float]:
    """"Fine-tune" the detector on hand-labeled frames.

    Grid search over (threshold, radius_scale) maximizing mAP50-95 on
    the training split — the classical analogue of the paper's 100-epoch
    YOLOv8 fine-tuning.  Returns (best params, best training mAP50-95).
    """
    if len(frames) != len(labels) or not frames:
        raise ReproError("calibrate() needs equal-length, non-empty frames/labels")
    base = base or DetectorParams()
    best_params, best_map = base, -1.0
    best_evaluated: list = []
    # Same-shaped training frames run as one batched stack per grid
    # point (identical detections to per-frame detect()); mixed shapes
    # fall back to the per-frame path.
    stack: Optional[np.ndarray] = None
    if len({np.asarray(f).shape for f in frames}) == 1:
        stack = np.stack([np.asarray(f, dtype=np.float64) for f in frames])
    for thr in thresholds:
        for rs in radius_scales:
            params = replace(base, threshold=thr, radius_scale=rs)
            det = BlobDetector(params)
            if stack is not None:
                per_frame = det.detect_movie(stack)
                evaluated = [
                    (dets, list(lbls)) for dets, lbls in zip(per_frame, labels)
                ]
            else:
                evaluated = [
                    (det.detect(f), list(lbls)) for f, lbls in zip(frames, labels)
                ]
            score = map_range(evaluated)
            if score > best_map:
                best_map = score
                best_params = params
                best_evaluated = evaluated
    # Pick the counting/annotation confidence cut: best F1 at IoU 0.5 on
    # the training split (the classical analogue of choosing YOLO's
    # confidence threshold after training).
    best_conf, best_f1 = 0.5, -1.0
    for conf in (0.5, 0.6, 0.7, 0.8, 0.9, 0.95):
        f1 = _f1_at_confidence(best_evaluated, conf)
        if f1 > best_f1:
            best_f1 = f1
            best_conf = conf
    return replace(best_params, operating_confidence=best_conf), best_map


def _f1_at_confidence(
    evaluated: "list[tuple[list[Detection], list[Box]]]", confidence: float
) -> float:
    """F1 of detections above ``confidence`` at IoU 0.5."""
    from .metrics import match_greedy

    tp = fp = fn = 0
    for dets, truths in evaluated:
        kept = [d for d in dets if d.confidence >= confidence]
        assignment = match_greedy(kept, truths, 0.5)
        matched = sum(1 for a in assignment if a >= 0)
        tp += matched
        fp += len(kept) - matched
        fn += len(truths) - matched
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom else 0.0
