"""EMD → video conversion: the spatiotemporal compute phase.

Sec. 3.3 pins the spatiotemporal compute cost on "converting raw EMD
files to MP4 format, which involves a slow data type casting operation
from fp64 to uint8".  We reproduce that pipeline with an open
container — **MPNG**, a length-prefixed sequence of PNG frames — keeping
the two dominant costs explicit and separately measurable:

1. the fp64 → uint8 cast (:func:`movie_to_uint8`), including the global
   normalization pass it forces over the tensor;
2. per-frame image encoding (:func:`write_video`).

Frames are read lazily from the EMD container one at a time, so peak
memory is one frame, not the 1.2 GB tensor.
"""

from __future__ import annotations

import os
import struct
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..emd import EmdFile
from ..errors import FormatError
from ..viz import annotate_frame, encode_png
from ..viz.png import _SIGNATURE as PNG_SIGNATURE  # reuse the one constant

__all__ = [
    "movie_to_uint8",
    "frame_to_uint8",
    "write_video",
    "read_video",
    "convert_emd_to_video",
    "annotate_video",
    "video_info",
]

MAGIC = b"MPNGVID1"


def movie_to_uint8(
    movie: np.ndarray,
    lo_percentile: float = 0.5,
    hi_percentile: float = 99.8,
) -> np.ndarray:
    """The paper's casting bottleneck: normalize a float tensor globally
    and cast to uint8.

    Percentile clipping keeps a few hot pixels from crushing contrast.
    """
    movie = np.asarray(movie)
    if movie.ndim != 3:
        raise FormatError(f"movie must be (T, H, W), got {movie.shape}")
    lo, hi = np.percentile(movie, [lo_percentile, hi_percentile])
    return _cast(movie, float(lo), float(hi))


def _cast(frames: np.ndarray, lo: float, hi: float) -> np.ndarray:
    if hi <= lo:
        return np.zeros(frames.shape, dtype=np.uint8)
    scaled = (frames.astype(np.float64) - lo) * (255.0 / (hi - lo))
    return np.clip(scaled, 0, 255).astype(np.uint8)


def frame_to_uint8(frame: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Cast one frame with precomputed normalization bounds."""
    return _cast(np.asarray(frame), lo, hi)


def write_video(
    path: "str | os.PathLike",
    frames: Iterable[np.ndarray],
    fps: float = 25.0,
) -> int:
    """Write uint8 frames (gray or RGB) to an MPNG container.

    Returns the number of frames written.  Layout::

        MAGIC | f64 fps | u32 n_frames | n x (u32 length | PNG bytes)

    (n_frames is back-patched after streaming.)
    """
    if fps <= 0:
        raise FormatError(f"fps must be positive, got {fps}")
    n = 0
    with open(os.fspath(path), "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<d", float(fps)))
        count_pos = fh.tell()
        fh.write(struct.pack("<I", 0))
        for frame in frames:
            png = encode_png(np.asarray(frame))
            fh.write(struct.pack("<I", len(png)))
            fh.write(png)
            n += 1
        fh.seek(count_pos)
        fh.write(struct.pack("<I", n))
    return n


def video_info(path: "str | os.PathLike") -> tuple[int, float]:
    """(n_frames, fps) from an MPNG header."""
    with open(os.fspath(path), "rb") as fh:
        header = fh.read(len(MAGIC) + 8 + 4)
    if header[: len(MAGIC)] != MAGIC:
        raise FormatError(f"{path}: not an MPNG video")
    (fps,) = struct.unpack("<d", header[len(MAGIC) : len(MAGIC) + 8])
    (n,) = struct.unpack("<I", header[len(MAGIC) + 8 :])
    return n, fps


def read_video(path: "str | os.PathLike") -> Iterator[bytes]:
    """Yield raw PNG payloads frame by frame."""
    with open(os.fspath(path), "rb") as fh:
        head = fh.read(len(MAGIC) + 8 + 4)
        if head[: len(MAGIC)] != MAGIC:
            raise FormatError(f"{path}: not an MPNG video")
        (n,) = struct.unpack("<I", head[len(MAGIC) + 8 :])
        for _ in range(n):
            raw = fh.read(4)
            if len(raw) != 4:
                raise FormatError(f"{path}: truncated video")
            (length,) = struct.unpack("<I", raw)
            png = fh.read(length)
            if len(png) != length or png[:8] != PNG_SIGNATURE:
                raise FormatError(f"{path}: corrupt frame payload")
            yield png


#: Per-block byte budget for batched frame reads: large enough to
#: amortize container round-trips, small enough that peak memory stays
#: a handful of frames (the paper's constraint), not the full tensor.
_BLOCK_BYTES = 32 << 20


def _block_frames(shape: "tuple[int, ...]", itemsize: int) -> int:
    frame_bytes = max(1, int(np.prod(shape[1:], dtype=np.int64)) * int(itemsize))
    return max(1, _BLOCK_BYTES // frame_bytes)


def _movie_bounds(data, sample_stride: int = 1) -> tuple[float, float]:
    """Normalization bounds from (a sample of) the frames — the global
    pass the cast forces over the data.

    Frames are read and reduced in blocks: a ranged read per block
    (one chunked-container round-trip) and one axis-(1, 2) percentile,
    which is bit-identical to the per-frame percentile loop it
    replaces.
    """
    t_total = data.shape[0]
    itemsize = np.dtype(getattr(data, "dtype", np.float64)).itemsize
    stride = max(1, sample_stride)
    block = _block_frames(data.shape, itemsize) * stride
    los, his = [], []
    for t0 in range(0, t_total, block):
        t1 = min(t0 + block, t_total)
        if stride == 1:
            frames = np.asarray(data[t0:t1], dtype=np.float64)
        else:
            frames = np.stack(
                [np.asarray(data[t], dtype=np.float64) for t in range(t0, t1, stride)]
            )
        lo, hi = np.percentile(frames, [0.5, 99.8], axis=(1, 2))
        los.extend(lo)
        his.extend(hi)
    return float(np.median(los)), float(max(his))


def convert_emd_to_video(
    emd_path: "str | os.PathLike",
    out_path: "str | os.PathLike",
    fps: float = 25.0,
) -> int:
    """The flow's conversion step: EMD movie → MPNG, block-lazily."""
    with EmdFile(emd_path) as f:
        handle = f.signal()
        if handle.signal_type != "spatiotemporal":
            raise FormatError(
                f"{emd_path}: expected a spatiotemporal signal, got "
                f"{handle.signal_type!r}"
            )
        data = handle.data
        lo, hi = _movie_bounds(data)
        block = _block_frames(data.shape, np.dtype(data.dtype).itemsize)

        def frames() -> Iterator[np.ndarray]:
            for t0 in range(0, data.shape[0], block):
                chunk = np.asarray(data[t0 : min(t0 + block, data.shape[0])])
                for u8 in _cast(chunk, lo, hi):
                    yield u8

        return write_video(out_path, frames(), fps=fps)


def annotate_video(
    movie_u8: np.ndarray,
    detections_per_frame: Sequence[Sequence],
    out_path: "str | os.PathLike",
    fps: float = 25.0,
    confidence_threshold: float = 0.5,
) -> int:
    """Burn detection boxes into every frame and write the annotated
    MPNG (the flow's Fig. 3 output artifact)."""
    movie_u8 = np.asarray(movie_u8)
    if movie_u8.ndim != 3 or movie_u8.dtype != np.uint8:
        raise FormatError("annotate_video wants a (T, H, W) uint8 movie")
    if len(detections_per_frame) != movie_u8.shape[0]:
        raise FormatError(
            f"{len(detections_per_frame)} detection lists for "
            f"{movie_u8.shape[0]} frames"
        )

    def frames() -> Iterator[np.ndarray]:
        for t in range(movie_u8.shape[0]):
            yield annotate_frame(
                movie_u8[t],
                detections_per_frame[t],
                confidence_threshold=confidence_threshold,
            )

    return write_video(out_path, frames(), fps=fps)
