"""Multi-object tracking of detected nanoparticles.

Fig. 3's caption: bounding boxes "can be used to count the number of
nanoparticles likely to be in a sample, helping to characterize changes
in the sample as a function of time."  This tracker links per-frame
detections into tracks by IoU using optimal assignment
(:func:`scipy.optimize.linear_sum_assignment`), with a miss budget so a
particle surviving a few blurry frames keeps its identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..errors import ReproError
from .detection import Detection
from .metrics import Box, iou_matrix

__all__ = ["Track", "IouTracker", "count_series"]


@dataclass
class Track:
    """One particle's trajectory through the movie."""

    track_id: int
    boxes: list[tuple[int, Box]] = field(default_factory=list)  # (frame, box)
    misses: int = 0

    @property
    def last_box(self) -> Box:
        return self.boxes[-1][1]

    @property
    def first_frame(self) -> int:
        return self.boxes[0][0]

    @property
    def last_frame(self) -> int:
        return self.boxes[-1][0]

    @property
    def length(self) -> int:
        return len(self.boxes)

    def displacement(self) -> float:
        """Straight-line distance between first and last centers (px)."""
        (x0, y0), (x1, y1) = self.boxes[0][1].center, self.boxes[-1][1].center
        return float(np.hypot(x1 - x0, y1 - y0))


class IouTracker:
    """Frame-to-frame IoU association with optimal assignment."""

    def __init__(
        self,
        iou_threshold: float = 0.25,
        max_misses: int = 3,
        min_confidence: float = 0.5,
    ) -> None:
        if not 0 < iou_threshold < 1:
            raise ReproError(f"iou_threshold must be in (0,1), got {iou_threshold}")
        if max_misses < 0:
            raise ReproError("max_misses must be >= 0")
        self.iou_threshold = iou_threshold
        self.max_misses = max_misses
        self.min_confidence = min_confidence
        self._next_id = 1
        self.active: list[Track] = []
        self.finished: list[Track] = []

    def update(self, frame_index: int, detections: Sequence[Detection]) -> list[Track]:
        """Advance one frame; returns tracks updated this frame."""
        dets = [d for d in detections if d.confidence >= self.min_confidence]
        updated: list[Track] = []
        if self.active and dets:
            m = iou_matrix([t.last_box for t in self.active], dets)
            # Hungarian on negative IoU; forbid below-threshold pairs.
            cost = 1.0 - m
            rows, cols = linear_sum_assignment(cost)
            matched_tracks, matched_dets = set(), set()
            for r, c in zip(rows, cols):
                if m[r, c] >= self.iou_threshold:
                    track = self.active[r]
                    track.boxes.append((frame_index, dets[c]))
                    track.misses = 0
                    matched_tracks.add(r)
                    matched_dets.add(c)
                    updated.append(track)
            unmatched_tracks = [
                t for i, t in enumerate(self.active) if i not in matched_tracks
            ]
            new_dets = [d for i, d in enumerate(dets) if i not in matched_dets]
        else:
            unmatched_tracks = list(self.active)
            new_dets = list(dets)

        # Age unmatched tracks; retire the stale ones.
        still_alive = [t for t in updated]
        for t in unmatched_tracks:
            t.misses += 1
            if t.misses > self.max_misses:
                self.finished.append(t)
            else:
                still_alive.append(t)
        # Births.
        for d in new_dets:
            track = Track(track_id=self._next_id, boxes=[(frame_index, d)])
            self._next_id += 1
            still_alive.append(track)
            updated.append(track)
        self.active = still_alive
        return updated

    def run(self, detections_per_frame: Sequence[Sequence[Detection]]) -> list[Track]:
        """Track a whole movie; returns all tracks (finished + active)."""
        for t, dets in enumerate(detections_per_frame):
            self.update(t, dets)
        return self.finished + self.active


def count_series(detections_per_frame: Sequence[Sequence[Detection]], min_confidence: float = 0.5) -> np.ndarray:
    """Per-frame particle counts (the Fig. 3 characterization signal)."""
    return np.array(
        [
            sum(1 for d in dets if d.confidence >= min_confidence)
            for dets in detections_per_frame
        ],
        dtype=np.int64,
    )
