"""Detection-quality metrics: IoU, precision/recall, COCO-style mAP50-95.

The paper evaluates its YOLOv8 nanoparticle detector with "mean Average
Precision with an Intersection over Union (IoU) range of 50-95%
(mAP50-95)", reporting 0.791 (train) / 0.801 (validation).  This module
implements that metric exactly: AP at IoU thresholds 0.50:0.05:0.95,
greedy confidence-ordered matching, 101-point interpolated
precision-recall areas, averaged over thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Box", "iou", "iou_matrix", "average_precision", "map_range", "match_greedy"]


@dataclass(frozen=True)
class Box:
    """An axis-aligned box with optional confidence (for detections)."""

    x0: float
    y0: float
    x1: float
    y1: float
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"degenerate box: {self}")

    @property
    def area(self) -> float:
        return (self.x1 - self.x0) * (self.y1 - self.y0)

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)


def iou(a: Box, b: Box) -> float:
    """Intersection-over-union of two boxes."""
    ix0, iy0 = max(a.x0, b.x0), max(a.y0, b.y0)
    ix1, iy1 = min(a.x1, b.x1), min(a.y1, b.y1)
    iw, ih = max(0.0, ix1 - ix0), max(0.0, iy1 - iy0)
    inter = iw * ih
    union = a.area + b.area - inter
    return inter / union if union > 0 else 0.0


def iou_matrix(dets: Sequence[Box], truths: Sequence[Box]) -> np.ndarray:
    """Vectorized IoU matrix (len(dets) × len(truths))."""
    if not dets or not truths:
        return np.zeros((len(dets), len(truths)))
    d = np.array([[b.x0, b.y0, b.x1, b.y1] for b in dets])
    t = np.array([[b.x0, b.y0, b.x1, b.y1] for b in truths])
    ix0 = np.maximum(d[:, None, 0], t[None, :, 0])
    iy0 = np.maximum(d[:, None, 1], t[None, :, 1])
    ix1 = np.minimum(d[:, None, 2], t[None, :, 2])
    iy1 = np.minimum(d[:, None, 3], t[None, :, 3])
    inter = np.clip(ix1 - ix0, 0, None) * np.clip(iy1 - iy0, 0, None)
    area_d = (d[:, 2] - d[:, 0]) * (d[:, 3] - d[:, 1])
    area_t = (t[:, 2] - t[:, 0]) * (t[:, 3] - t[:, 1])
    union = area_d[:, None] + area_t[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(union > 0, inter / union, 0.0)
    return out


def match_greedy(
    dets: Sequence[Box], truths: Sequence[Box], threshold: float
) -> list[int]:
    """COCO-style greedy matching: detections in descending confidence
    each claim their best unclaimed truth with IoU ≥ threshold.

    Returns, per detection (in the *given* order), the matched truth
    index or -1.
    """
    order = sorted(range(len(dets)), key=lambda i: -dets[i].confidence)
    m = iou_matrix(dets, truths)
    assignment = [-1] * len(dets)
    if len(truths) == 0:
        return assignment
    available = np.ones(len(truths), dtype=bool)
    for i in order:
        row = np.where(available, m[i], -np.inf)
        # the scalar scan this replaces took the *last* maximal truth on
        # ties; argmax takes the first, so scan the row reversed
        best_j = int(len(row) - 1 - np.argmax(row[::-1]))
        if row[best_j] >= threshold:
            available[best_j] = False
            assignment[i] = best_j
    return assignment


def average_precision(
    frames: Sequence[tuple[Sequence[Box], Sequence[Box]]],
    threshold: float,
) -> float:
    """AP at one IoU threshold over a dataset of
    ``(detections, ground_truths)`` frames, with 101-point interpolation.
    """
    records: list[tuple[float, bool]] = []  # (confidence, is_tp)
    n_truth = 0
    for dets, truths in frames:
        n_truth += len(truths)
        assignment = match_greedy(list(dets), list(truths), threshold)
        for det, j in zip(dets, assignment):
            records.append((det.confidence, j >= 0))
    if n_truth == 0:
        return 0.0
    if not records:
        return 0.0
    records.sort(key=lambda r: -r[0])
    tp = np.cumsum([1.0 if is_tp else 0.0 for _, is_tp in records])
    fp = np.cumsum([0.0 if is_tp else 1.0 for _, is_tp in records])
    recall = tp / n_truth
    precision = tp / np.maximum(tp + fp, 1e-12)
    # Monotone non-increasing precision envelope.
    precision = np.maximum.accumulate(precision[::-1])[::-1]
    # 101-point interpolation (COCO).
    grid = np.linspace(0, 1, 101)
    interp = np.zeros_like(grid)
    for k, r in enumerate(grid):
        mask = recall >= r
        interp[k] = precision[mask].max() if mask.any() else 0.0
    return float(interp.mean())


def map_range(
    frames: Sequence[tuple[Sequence[Box], Sequence[Box]]],
    thresholds: Sequence[float] = tuple(np.arange(0.5, 0.96, 0.05)),
) -> float:
    """mAP50-95: mean AP over IoU thresholds 0.50, 0.55, …, 0.95."""
    if not thresholds:
        raise ValueError("thresholds must be non-empty")
    return float(np.mean([average_precision(frames, t) for t in thresholds]))
