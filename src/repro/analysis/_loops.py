"""Reference loop implementations of the analysis kernels.

Pre-vectorization per-frame / per-peak code paths, kept verbatim as the
*numeric ground truth* for the batched implementations in
:mod:`.detection`, :mod:`.hyperspectral`, and :mod:`.video`:

* ``tests/test_dataplane_identity.py`` asserts the vectorized outputs
  are bit-for-bit equal to these across seeds;
* ``repro bench dataplane`` times both and reports the speedup.

They are not exported from the package and must not be used by product
code.
"""

# repro: noqa-file[P602]  reference loop implementations, pinned on purpose

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import ndimage

from ..instrument.xray import ELEMENT_LINES
from .detection import Detection, DetectorParams
from .hyperspectral import ElementHit
from .metrics import Box, iou_matrix


def _center_inside_loops(inner: Box, outer: Box) -> bool:
    cx, cy = inner.center
    return outer.x0 <= cx <= outer.x1 and outer.y0 <= cy <= outer.y1


def nms_loops(dets: Sequence[Detection], iou_threshold: float) -> list[Detection]:
    """Pre-PR ``nms``: per-candidate ``iou_matrix`` calls against kept."""
    if not dets:
        return []
    order = sorted(dets, key=lambda d: -d.confidence)
    kept: list[Detection] = []
    for d in order:
        if not kept:
            kept.append(d)
            continue
        m = iou_matrix([d], kept)
        if m.max() >= iou_threshold:
            continue
        if any(_center_inside_loops(d, k) or _center_inside_loops(k, d) for k in kept):
            continue
        kept.append(d)
    return kept


def _refine_blob_loops(
    flat: np.ndarray, y: int, x: int, sigma: float
) -> tuple[float, float, float]:
    """Pre-PR ``_refine_blob``: scalar flux-weighted moments."""
    h, w = flat.shape
    half = max(2, int(np.ceil(2.5 * sigma)))
    r0, r1 = max(y - half, 0), min(y + half + 1, h)
    c0, c1 = max(x - half, 0), min(x + half + 1, w)
    win = np.clip(flat[r0:r1, c0:c1], 0.0, None)
    total = win.sum()
    if total <= 0:
        return float(y), float(x), float(sigma)
    ys = np.arange(r0, r1, dtype=np.float64)[:, None]
    xs = np.arange(c0, c1, dtype=np.float64)[None, :]
    cy = float((win * ys).sum() / total)
    cx = float((win * xs).sum() / total)
    var_y = float((win * (ys - cy) ** 2).sum() / total)
    var_x = float((win * (xs - cx) ** 2).sum() / total)
    sigma_b = float(np.sqrt(max((var_y + var_x) / 2.0, 1e-6)))
    return cy, cx, sigma_b


def detect_loops(frame: np.ndarray, params: "DetectorParams | None" = None) -> list[Detection]:
    """Pre-PR ``BlobDetector.detect``: per-peak Python candidate loop."""
    img = np.asarray(frame, dtype=np.float64)
    p = params or DetectorParams()
    background = ndimage.gaussian_filter(img, sigma=4.0 * max(p.sigmas))
    flat = img - background

    h, w = img.shape
    candidates: list[Detection] = []
    for sigma in p.sigmas:
        g1 = ndimage.gaussian_filter(flat, sigma)
        g2 = ndimage.gaussian_filter(flat, sigma * p.k)
        response = (g1 - g2) * (sigma ** 0.5)
        peaks = (
            (response == ndimage.maximum_filter(response, size=3))
            & (response > p.threshold)
        )
        ys, xs = np.nonzero(peaks)
        for y, x in zip(ys, xs):
            r_resp = float(response[y, x])
            conf = r_resp / (r_resp + p.threshold)
            cy, cx, sigma_b = _refine_blob_loops(flat, int(y), int(x), sigma)
            half_box = max(p.radius_scale * sigma_b, p.min_radius_px)
            candidates.append(
                Detection(
                    x0=max(0.0, cx - half_box),
                    y0=max(0.0, cy - half_box),
                    x1=min(float(w - 1), cx + half_box),
                    y1=min(float(h - 1), cy + half_box),
                    confidence=float(conf),
                    scale=sigma,
                )
            )
    return nms_loops(candidates, p.nms_iou)


def detect_movie_loops(
    movie: np.ndarray, params: "DetectorParams | None" = None
) -> list[list[Detection]]:
    """Pre-PR ``detect_movie``: a per-frame Python list of ``detect``."""
    movie = np.asarray(movie)
    return [detect_loops(movie[t], params) for t in range(movie.shape[0])]


def identify_elements_loops(
    spectrum: np.ndarray,
    energies: np.ndarray,
    tolerance_ev: float = 60.0,
    min_prominence_frac: float = 0.01,
) -> list[ElementHit]:
    """Pre-PR ``identify_elements``: per-peak × per-line matching loop."""
    spectrum = np.asarray(spectrum, dtype=np.float64)
    energies = np.asarray(energies, dtype=np.float64)
    width = max(9, len(spectrum) // 24) | 1  # odd
    continuum = ndimage.median_filter(spectrum, size=width, mode="nearest")
    residual = spectrum - continuum
    peaks_mask = (
        (residual == ndimage.maximum_filter(residual, size=5))
        & (residual > 0)
    )
    if not peaks_mask.any():
        return []
    threshold = residual[peaks_mask].max() * min_prominence_frac
    peak_idx = np.nonzero(peaks_mask & (residual > threshold))[0]

    hits: dict[tuple[str, str], ElementHit] = {}
    for i in peak_idx:
        e_peak = energies[i]
        prominence = float(residual[i])
        best: "tuple[float, str, str, float] | None" = None
        for element, lines in ELEMENT_LINES.items():
            for line in lines:
                delta = abs(line.energy_ev - e_peak)
                if delta <= tolerance_ev and (best is None or delta < best[0]):
                    best = (delta, element, line.label, line.energy_ev)
        if best is None:
            continue
        _, element, label, line_energy = best
        key = (element, label)
        if key not in hits or hits[key].prominence < prominence:
            hits[key] = ElementHit(
                element=element,
                line_label=label,
                line_energy_ev=line_energy,
                peak_energy_ev=float(e_peak),
                prominence=prominence,
            )
    return sorted(hits.values(), key=lambda h: -h.prominence)


def movie_bounds_loops(data, sample_stride: int = 1) -> tuple[float, float]:
    """Pre-PR ``_movie_bounds``: one percentile pass per sampled frame."""
    los, his = [], []
    for t in range(0, data.shape[0], sample_stride):
        frame = np.asarray(data[t], dtype=np.float64)
        lo, hi = np.percentile(frame, [0.5, 99.8])
        los.append(lo)
        his.append(hi)
    return float(np.median(los)), float(max(his))
