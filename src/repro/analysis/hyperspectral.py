"""Hyperspectral reductions: the Sec. 3.1 analysis.

Two reductions drive the Fig. 2 portal page:

* the **intensity image** — "a sum along the spectroscopy dimension to
  compute the intensity of the sample at each pixel" (Fig. 2A);
* the **sum spectrum** — "the entire sample's spectrum by summing the
  image over each of the pixel dimensions" (Fig. 2B), which "conveys
  information about the aggregate atomic composition".

On top of those we identify elements by matching spectrum peaks against
the characteristic-line table (what the paper's portal lists as "the
atomic composition of the sample").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..errors import ReproError
from ..instrument.xray import ELEMENT_LINES
from ..viz import apply_colormap, encode_png, image_figure, line_chart

__all__ = [
    "intensity_map",
    "sum_spectrum",
    "identify_elements",
    "ElementHit",
    "intensity_figure_svg",
    "spectrum_figure_svg",
]


def _check_cube(cube: np.ndarray) -> np.ndarray:
    cube = np.asarray(cube)
    if cube.ndim != 3:
        raise ReproError(f"hyperspectral cube must be 3-D (H, W, E), got {cube.shape}")
    return cube


def intensity_map(cube: np.ndarray) -> np.ndarray:
    """Sum along the spectral axis → H×W intensity image (Fig. 2A)."""
    return _check_cube(cube).sum(axis=2)


def sum_spectrum(cube: np.ndarray) -> np.ndarray:
    """Sum over both pixel axes → E-length spectrum (Fig. 2B)."""
    return _check_cube(cube).sum(axis=(0, 1))


@dataclass(frozen=True)
class ElementHit:
    """One identified element with its matched line evidence."""

    element: str
    line_label: str
    line_energy_ev: float
    peak_energy_ev: float
    prominence: float  # peak counts above local continuum


#: Flat characteristic-line table (element, label, energy) in
#: ``ELEMENT_LINES`` iteration order, built lazily once: peak→line
#: matching is then a single broadcast |ΔE| matrix instead of a
#: per-peak × per-element × per-line Python scan.  ``argmin`` takes the
#: first minimal entry, which is exactly the scan's strict-``<``
#: first-wins tie-break over the same ordering.
_LINE_TABLE: "tuple[tuple[str, ...], tuple[str, ...], np.ndarray] | None" = None


def _line_table() -> "tuple[tuple[str, ...], tuple[str, ...], np.ndarray]":
    global _LINE_TABLE
    if _LINE_TABLE is None:
        elements: list[str] = []
        labels: list[str] = []
        line_energies: list[float] = []
        for element, lines in ELEMENT_LINES.items():
            for line in lines:
                elements.append(element)
                labels.append(line.label)
                line_energies.append(line.energy_ev)
        _LINE_TABLE = (
            tuple(elements),
            tuple(labels),
            np.asarray(line_energies, dtype=np.float64),
        )
    return _LINE_TABLE


def identify_elements(
    spectrum: np.ndarray,
    energies: np.ndarray,
    tolerance_ev: float = 60.0,
    min_prominence_frac: float = 0.01,
) -> list[ElementHit]:
    """Match spectrum peaks to characteristic lines.

    Peaks are local maxima of the continuum-subtracted spectrum whose
    prominence exceeds ``min_prominence_frac`` of the largest peak; each
    is attributed to the nearest tabulated line within ``tolerance_ev``.
    An element is reported once per matched line (strongest peak wins).
    """
    spectrum = np.asarray(spectrum, dtype=np.float64)
    energies = np.asarray(energies, dtype=np.float64)
    if spectrum.shape != energies.shape:
        raise ReproError("spectrum and energies must be the same length")
    # Continuum estimate: heavy median smoothing.
    width = max(9, len(spectrum) // 24) | 1  # odd
    continuum = ndimage.median_filter(spectrum, size=width, mode="nearest")
    residual = spectrum - continuum
    peaks_mask = (
        (residual == ndimage.maximum_filter(residual, size=5))
        & (residual > 0)
    )
    if not peaks_mask.any():
        return []
    threshold = residual[peaks_mask].max() * min_prominence_frac
    peak_idx = np.nonzero(peaks_mask & (residual > threshold))[0]

    elements, labels, line_energies = _line_table()
    # Broadcast |line − peak| over every (peak, line) pair at once; the
    # nearest in-tolerance line per peak replaces the scalar scan.
    deltas = np.abs(line_energies[None, :] - energies[peak_idx][:, None])
    within = deltas <= tolerance_ev
    matched = within.any(axis=1)
    best_line = np.where(within, deltas, np.inf).argmin(axis=1)

    hits: dict[tuple[str, str], ElementHit] = {}
    for j, i in enumerate(peak_idx):
        if not matched[j]:
            continue
        prominence = float(residual[i])
        li = int(best_line[j])
        key = (elements[li], labels[li])
        if key not in hits or hits[key].prominence < prominence:
            hits[key] = ElementHit(
                element=elements[li],
                line_label=labels[li],
                line_energy_ev=float(line_energies[li]),
                peak_energy_ev=float(energies[i]),
                prominence=prominence,
            )
    return sorted(hits.values(), key=lambda h: -h.prominence)


def intensity_figure_svg(cube: np.ndarray, title: str = "Intensity image") -> str:
    """Fig. 2A: colormapped intensity image as embeddable SVG."""
    img = intensity_map(cube)
    rgb = apply_colormap(img, "viridis")
    png = encode_png(rgb)
    return image_figure(
        png, title=title, caption="sum over the spectroscopy dimension"
    )


def spectrum_figure_svg(
    cube: np.ndarray, energies: np.ndarray, title: str = "Sum spectrum"
) -> str:
    """Fig. 2B: the total spectrum as embeddable SVG."""
    spec = sum_spectrum(cube)
    return line_chart(
        [("spectrum", list(np.asarray(energies, dtype=float)), list(spec))],
        title=title,
        xlabel="energy (eV)",
        ylabel="counts",
        show_legend=False,
    )
