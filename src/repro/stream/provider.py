"""A flow action provider for streaming ingest.

Lets a Gladier flow delegate one state to the fast path: ``run`` opens
a publisher session for a staged file and ``status`` reports ACTIVE
until the session is published (or failed), so hybrid flows can mix
streamed ingest with cloud-orchestrated steps.

The schema declarations use annotated class attributes — the other
literal form the analyzer's provider discovery accepts — so this
provider doubles as the fixture proving ``F304``/``F404`` see both
spellings.
"""

from __future__ import annotations

from typing import Any

from ..errors import FlowError
from ..flows.action import ActionState, ActionStatus, check_body
from ..watcher import FileCreatedEvent
from .ingest import StreamIngestApp

__all__ = ["StreamIngestActionProvider"]


class StreamIngestActionProvider:
    """Flow step: stream a file to compute + search, bypassing staging."""

    name: str = "stream_ingest"
    input_schema: dict = {
        "path": "str",
    }
    output_schema: dict = {
        "session_id": "str",
        "chunks": "int",
        "bytes": "number",
        "renegotiations": "int",
    }

    def __init__(self, app: StreamIngestApp) -> None:
        self.app = app

    def run(self, body: dict[str, Any]) -> str:
        check_body(self.name, self.input_schema, body)
        vfs = self.app.testbed.user_fs
        vf = vfs.stat(body["path"])  # raises EndpointError when missing
        event = FileCreatedEvent(
            path=vf.path, size_bytes=vf.size_bytes, mtime=vf.created_at, virtual=vf
        )
        session = self.app.handle_event(event)
        if session is None:
            raise FlowError(
                f"file already ingested (checkpoint dedup): {vf.path!r}"
            )
        return session.session_id

    def status(self, action_id: str) -> ActionStatus:
        try:
            session = self.app.session(action_id)
        except KeyError:
            raise FlowError(f"unknown stream session: {action_id!r}") from None
        if not session.terminal:
            return ActionStatus(state=ActionState.ACTIVE)
        active = (
            (session.published_at or self.app.testbed.env.now) - session.created_at
        )
        if session.status in ("FAILED", "QUARANTINED"):
            return ActionStatus(
                state=ActionState.FAILED,
                error=session.error or "stream ingest failed",
                active_seconds=active,
            )
        return ActionStatus(
            state=ActionState.SUCCEEDED,
            result={
                "session_id": session.session_id,
                "chunks": session.total_chunks,
                "bytes": session.total_bytes,
                "renegotiations": session.renegotiations,
            },
            active_seconds=active,
        )
