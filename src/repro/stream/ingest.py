"""The streaming counterpart of the flow-trigger application.

Where :class:`~repro.core.app.FlowTriggerApp` answers a new file by
launching a three-step Gladier flow (transfer → analyze → publish,
each polled with exponential backoff), :class:`StreamIngestApp` drives
the fast path: open a publisher session the moment the file appears,
submit the analysis to the compute service as soon as the first
``threshold_chunks`` chunks have landed (in-flight analysis on partial
data — no staging wait, no polling detection lag), and publish the
result straight to the search index once both the analysis and the
remaining chunks finish.

Checkpoint dedup, the gated copier's completion callbacks, and the
portal's search documents all behave exactly as in file mode, so the
two ingest modes are comparable run for run.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

from ..compute import ComputeTaskStatus
from ..errors import ComputeError, ServiceUnavailable
from ..testbed import POLARIS_EP, PORTAL_INDEX, Testbed
from ..watcher import CheckpointStore, FileCreatedEvent, SimObserver
from .publisher import StreamPublisher
from .session import StreamSession

__all__ = ["StreamIngestApp"]


class StreamIngestApp:
    """Watches for new files and streams each to compute + search."""

    def __init__(
        self,
        testbed: Testbed,
        publisher: StreamPublisher,
        function_id: str,
        checkpoint: Optional[CheckpointStore] = None,
        dest_dir: str = "/picoprobe/data",
        visible_to: tuple[str, ...] = ("public",),
        max_attempts: int = 8,
        backoff_initial_s: float = 1.0,
        backoff_max_s: float = 30.0,
        ledger: Any = None,
    ) -> None:
        self.testbed = testbed
        self.publisher = publisher
        self.function_id = function_id
        #: Integrity hook: a duck-typed
        #: :class:`~repro.integrity.IntegrityLedger`.  When set,
        #: sessions stream with per-chunk verification, attest the
        #: ``streamed``/``analyzed`` chain hops, and pass the publish
        #: gate — an open chain quarantines the record instead.
        self.ledger = ledger
        # Note: an empty store is falsy, so test for None explicitly.
        self.checkpoint = checkpoint if checkpoint is not None else CheckpointStore()
        self.dest_dir = dest_dir.rstrip("/")
        self.visible_to = visible_to
        self.max_attempts = int(max_attempts)
        self.backoff_initial_s = float(backoff_initial_s)
        self.backoff_max_s = float(backoff_max_s)
        self.sessions: list[StreamSession] = []
        self.skipped: int = 0
        #: Callbacks fired when a session reaches a terminal state.
        self.on_complete: list[Callable[[StreamSession], None]] = []
        self._by_id: dict[str, StreamSession] = {}

    def attach(self, observer: SimObserver) -> None:
        """Subscribe to a directory observer."""
        observer.add_handler(self.handle_event)

    def session(self, session_id: str) -> StreamSession:
        """Look up a session by id (provider/status polling)."""
        return self._by_id[session_id]

    # -- event handling ---------------------------------------------------
    def handle_event(self, event: FileCreatedEvent) -> StreamSession | None:
        """Open a stream session for a new EMD file (or skip)."""
        if not event.is_emd:
            return None
        if event.virtual is None:
            raise ComputeError(
                "StreamIngestApp drives simulated campaigns; real-filesystem "
                "events carry no metadata to analyze"
            )
        vf = event.virtual
        if self.checkpoint.is_processed(vf.path, vf.checksum):
            self.skipped += 1
            return None
        if self.ledger is not None:
            subject = (
                vf.metadata.acquisition_id if vf.metadata is not None else vf.checksum
            )
            self.ledger.begin(
                vf.path, declared=vf.checksum, subject=subject,
                at=self.testbed.env.now,
            )
        session = self.publisher.start(
            vf.path,
            vf.size_bytes,
            virtual=vf,
            digest=vf.checksum if self.ledger is not None else None,
        )
        self.checkpoint.mark_processed(vf.path, vf.checksum)
        self.sessions.append(session)
        self._by_id[session.session_id] = session
        self.testbed.env.process(self._drive(session, vf))
        return session

    # -- retry helper ------------------------------------------------------
    def _with_retries(self, session: StreamSession, op: Callable[[], Any]):
        """Run a gated cloud call, retrying through outage windows with
        the gate's connect-timeout charge plus capped backoff.  Returns
        the call's result, or raises after ``max_attempts``."""
        attempt = 0
        while True:
            try:
                return op()
            except ServiceUnavailable as exc:
                attempt += 1
                if exc.connect_timeout_s > 0:
                    yield self.testbed.env.timeout(exc.connect_timeout_s)
                if attempt >= self.max_attempts:
                    raise
                delay = min(
                    self.backoff_initial_s * (2.0 ** (attempt - 1)),
                    self.backoff_max_s,
                )
                yield self.testbed.env.timeout(delay)

    def _drive(self, session: StreamSession, vf: Any):
        from ..core.functions import file_descriptor

        tb = self.testbed
        env = tb.env
        # The session root span; the publisher's ``stream.deliver`` span
        # carries the same ``session_id`` attribute (the stitching key,
        # like ``action_id`` on action spans).
        span = (
            tb.obs.tracer.start("stream.session")
            .set("session_id", session.session_id)
            .set("path", vf.path)
            .set("bytes", float(session.total_bytes))
            .set("chunks", session.total_chunks)
        )
        try:
            # 1. Partial data landed: kick off the analysis in flight.
            # A verifying session can instead die early: an unrepairable
            # chunk (source rot, metadata mismatch) fires ``failed``.
            if session.failed is None:
                yield session.threshold
            else:
                yield env.any_of([session.threshold, session.failed])
                if not session.threshold.triggered:
                    return  # quarantined in the finally block
            dest_path = f"{self.dest_dir}/{os.path.basename(vf.path)}"
            descriptor = file_descriptor(vf, dest_path)
            analyze_span = tb.obs.tracer.start("stream.analyze", span)
            try:
                task_id = yield from self._with_retries(
                    session,
                    lambda: tb.compute.submit(
                        tb.token,
                        POLARIS_EP,
                        self.function_id,
                        file=descriptor,
                    ),
                )
                session.analysis_started_at = env.now
                # Publication needs the full acquisition on the node and
                # the analysis output — wait for both (or the session's
                # unrepairable-chunk failure, which preempts them).
                ready = env.all_of([tb.compute.wait(task_id), session.delivered])
                if session.failed is None:
                    yield ready
                else:
                    yield env.any_of([ready, session.failed])
                    if not session.delivered.triggered:
                        return  # quarantined in the finally block
                session.analysis_done_at = env.now
            finally:
                analyze_span.finish()
            if self.ledger is not None:
                # Every chunk verified against the declared digest on
                # arrival — attest the facility hop.
                self.ledger.attest(
                    vf.path,
                    "streamed",
                    digest=session.declared_digest,
                    at=env.now,
                    by="receiver",
                )
            task = tb.compute.task_record(task_id)
            if task.status is not ComputeTaskStatus.SUCCESS:
                session.status = "FAILED"
                session.error = (
                    task.outcome.error if task.outcome else "analysis failed"
                )
                return
            content = task.outcome.result
            if self.ledger is not None:
                self.ledger.attest(
                    vf.path,
                    "analyzed",
                    digest=session.declared_digest,
                    at=env.now,
                    by="compute",
                )

            # 2. Publish straight to the portal index — gated on the
            # digest chain closing.
            subject = (
                vf.metadata.acquisition_id if vf.metadata is not None else vf.checksum
            )
            if self.ledger is not None:
                ok, reason = self.ledger.check_publishable(subject)
                if not ok:
                    session.status = "QUARANTINED"
                    session.error = f"IntegrityError: {reason}"
                    return
            publish_span = tb.obs.tracer.start("stream.publish", span)
            try:
                yield from self._publish_with_retries(session, subject, content)
            finally:
                publish_span.finish()
            session.published_at = env.now
            session.status = "PUBLISHED"
        except ServiceUnavailable as exc:
            session.status = "FAILED"
            session.error = f"{type(exc).__name__}: {exc}"
        finally:
            try:
                if self.ledger is not None and session.status != "PUBLISHED":
                    # Dead-letter any record whose chain did not close —
                    # whatever the failure path, it must never be indexed.
                    chain = self.ledger.chain(vf.path)
                    if chain is not None and not chain.closed:
                        self.ledger.quarantine(
                            vf.path,
                            reason=session.error
                            or f"stream session ended {session.status} "
                            "with open chain",
                        )
                        session.status = "QUARANTINED"
                if self.ledger is not None:
                    span.set("naks", session.naks).set(
                        "retransmits", session.retransmits
                    )
                span.set("status", session.status).set(
                    "renegotiations", session.renegotiations
                ).set("duplicates", session.duplicates)
            finally:
                span.finish()
            session.done.succeed(session)
            for cb in list(self.on_complete):
                cb(session)

    def _publish_with_retries(self, session: StreamSession, subject: str, content: dict):
        tb = self.testbed
        attempt = 0
        while True:
            try:
                yield from tb.search.ingest(
                    tb.token,
                    index=PORTAL_INDEX,
                    subject=subject,
                    content=content,
                    visible_to=self.visible_to,
                )
                return
            except ServiceUnavailable as exc:
                attempt += 1
                if exc.connect_timeout_s > 0:
                    yield tb.env.timeout(exc.connect_timeout_s)
                if attempt >= self.max_attempts:
                    raise
                delay = min(
                    self.backoff_initial_s * (2.0 ** (attempt - 1)),
                    self.backoff_max_s,
                )
                yield tb.env.timeout(delay)

    # -- reporting ---------------------------------------------------------
    @property
    def completed_sessions(self) -> list[StreamSession]:
        return [s for s in self.sessions if s.terminal]

    @property
    def published_sessions(self) -> list[StreamSession]:
        return [s for s in self.sessions if s.status == "PUBLISHED"]
