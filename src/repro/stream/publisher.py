"""The instrument-side endpoint of the streaming fast path.

A :class:`StreamPublisher` bypasses the file-watch → transfer → poll
pipeline: as soon as an acquisition exists it is sliced into
fixed-size chunks and pushed over the :class:`~repro.net.NetworkFabric`
directly to the receiver's compute host, gated only by the receiver's
credit window.

Fault model (the chaos hooks this subsystem reuses):

* **link blackouts** (:meth:`~repro.net.NetworkFabric.set_link_health`)
  stall chunk streams at zero rate; a chunk that misses its delivery
  timeout is withdrawn from the fabric
  (:meth:`~repro.net.NetworkFabric.abort`), the control channel is
  re-established (handshake + capped exponential backoff), and sending
  resumes from the receiver's acknowledged sequence number — the gap
  renegotiation;
* **control-plane outages** (a :class:`~repro.chaos.ServiceGate` on
  :attr:`StreamPublisher.gate`) reject new sessions and renegotiation
  handshakes, charging the gate's connect timeout, exactly like the
  cloud services.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from ..errors import EndpointError, ServiceUnavailable
from ..integrity.digest import chunk_digest, mangle
from ..net import NetworkFabric
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from ..rng import RngRegistry, lognormal_from_median
from ..sim import Environment
from ..units import MB
from .receiver import StreamReceiver
from .session import FrameChunk, StreamSession, chunk_sizes

__all__ = ["StreamPublisher"]


class StreamPublisher:
    """Streams acquisitions chunk-by-chunk to a :class:`StreamReceiver`.

    Parameters
    ----------
    env, fabric:
        Simulation environment and the shared network.
    receiver:
        The compute-side endpoint sessions terminate on.
    src_host:
        Topology node the instrument writes from.
    chunk_bytes:
        Wire chunk size; the last chunk carries the remainder.
    window:
        Credit window — the bound on chunks in flight per session.
    threshold_chunks:
        In-order chunks required before the session's ``threshold``
        event fires (the in-flight analysis kickoff).
    chunk_timeout_s:
        Delivery timeout per chunk before a gap renegotiation.
    handshake_s:
        Median control-channel setup time (per session and per
        renegotiation).
    efficiency:
        Protocol efficiency applied to each chunk's fair share.
    """

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        receiver: StreamReceiver,
        src_host: str,
        rngs: Optional[RngRegistry] = None,
        chunk_bytes: float = MB(8),
        window: int = 8,
        threshold_chunks: int = 4,
        chunk_timeout_s: float = 30.0,
        handshake_s: float = 0.05,
        handshake_sigma: float = 0.2,
        backoff_initial_s: float = 1.0,
        backoff_max_s: float = 30.0,
        abort_poll_s: float = 0.05,
        efficiency: float = 1.0,
        max_retransmits: int = 4,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.receiver = receiver
        self.src_host = src_host
        self.rngs = rngs or RngRegistry(seed=0)
        self.chunk_bytes = float(chunk_bytes)
        self.window = int(window)
        self.threshold_chunks = int(threshold_chunks)
        self.chunk_timeout_s = float(chunk_timeout_s)
        self.handshake_s = float(handshake_s)
        self.handshake_sigma = float(handshake_sigma)
        self.backoff_initial_s = float(backoff_initial_s)
        self.backoff_max_s = float(backoff_max_s)
        self.abort_poll_s = float(abort_poll_s)
        self.efficiency = float(efficiency)
        #: NAK'd retransmits allowed per sequence number before the
        #: session is declared unrepairable and fails.
        self.max_retransmits = int(max_retransmits)
        #: Chaos hook: a duck-typed outage gate (see
        #: :class:`repro.chaos.ServiceGate`).  ``None`` means always up.
        self.gate: Any = None
        #: Chaos hook: a duck-typed chunk corruptor (see
        #: :class:`repro.chaos.ChunkCorruptor`) mangling wire digests.
        self.corruptor: Any = None
        #: Integrity hook: the source filesystem, so wire digests are
        #: computed from the payload *as it is at send time* — at-rest
        #: rot mid-session surfaces as chunk digest mismatches.
        self.source_fs: Any = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        m = metrics if metrics is not None else NULL_METRICS
        self._metrics = m
        self._m_sessions = m.counter("stream.sessions_started")
        self._m_chunks = m.counter("stream.chunks_sent")
        self._m_bytes = m.counter("stream.bytes_sent")
        self._m_renegotiations: Any = None  # lazy; chaos-path only
        self._m_retransmits: Any = None  # lazy; corruption-path only
        self._ids = itertools.count(1)
        self.sessions: list[StreamSession] = []

    # -- session start -----------------------------------------------------
    def start(
        self,
        path: str,
        nbytes: float,
        virtual: Any = None,
        parent_span: Any = None,
        digest: Optional[str] = None,
    ) -> StreamSession:
        """Open a session for one acquisition and start streaming it.

        Returns immediately with the :class:`StreamSession`; delivery
        runs as a DES process.  A control-plane outage never fails the
        open — the delivery process retries its handshake through the
        gate with backoff, so sessions opened mid-outage simply start
        late.  Passing the acquisition's declared ``digest`` arms
        per-chunk verification (and the NAK/retransmit machinery).
        """
        sizes = chunk_sizes(nbytes, self.chunk_bytes)
        session = StreamSession(
            session_id=f"strm-{next(self._ids):06d}",
            path=path,
            total_bytes=float(nbytes),
            chunk_bytes=self.chunk_bytes,
            total_chunks=len(sizes),
            threshold_chunks=min(self.threshold_chunks, len(sizes)),
            created_at=self.env.now,
            threshold=self.env.event(),
            delivered=self.env.event(),
            done=self.env.event(),
            virtual=virtual,
            declared_digest=digest,
            failed=self.env.event() if digest is not None else None,
        )
        self.sessions.append(session)
        self._m_sessions.inc()
        self.receiver.open(session, self.window)
        self.env.process(self._run(session, sizes, parent_span))
        return session

    # -- internals ---------------------------------------------------------
    def _source_digest(self, session: StreamSession) -> str:
        """The payload digest at send time (declared digest when no
        source filesystem is wired — unit/bench sessions)."""
        if self.source_fs is not None:
            try:
                return self.source_fs.stat(session.path).payload_digest
            except EndpointError:
                pass  # source vanished mid-session; keep the snapshot
        v = session.virtual
        if v is not None:
            return getattr(v, "payload_digest", session.declared_digest)
        return session.declared_digest

    def _wire_chunk(self, session: StreamSession, seq: int, nbytes: float, resend: int) -> FrameChunk:
        """Build the chunk as it goes on the wire, digest included —
        and, when a chaos corruptor is armed, as mangled by it."""
        digest = None
        wire_nbytes = nbytes
        if session.declared_digest is not None:
            digest = chunk_digest(self._source_digest(session), seq, nbytes)
            if self.corruptor is not None:
                fault = self.corruptor.draw(session, seq, resend)
                if fault is not None:
                    kind, frac, salt = fault
                    if kind == "chunk_truncate":
                        wire_nbytes = max(1.0, nbytes * frac)
                    digest = mangle(digest, salt)
        return FrameChunk(
            seq=seq, nbytes=wire_nbytes, sent_at=self.env.now, digest=digest
        )

    def _handshake_jitter(self) -> float:
        rng = self.rngs.stream("stream.handshake")
        return lognormal_from_median(rng, self.handshake_s, self.handshake_sigma)

    def _handshake(self, session: StreamSession) -> Generator:
        """(Re-)establish the control channel, retrying through outages
        with capped exponential backoff."""
        attempt = 0
        while True:
            try:
                if self.gate is not None:
                    self.gate.check(self.env.now)
            except ServiceUnavailable as exc:
                if exc.connect_timeout_s > 0:
                    yield self.env.timeout(exc.connect_timeout_s)
                delay = min(
                    self.backoff_initial_s * (2.0 ** attempt), self.backoff_max_s
                )
                attempt += 1
                yield self.env.timeout(delay)
                continue
            if self.handshake_s > 0:
                yield self.env.timeout(self._handshake_jitter())
            return

    def _run(self, session: StreamSession, sizes: "list[float]", parent_span: Any):
        receiver = self.receiver
        retries: dict[int, int] = {}
        span = (
            self.tracer.start("stream.deliver", parent_span)
            .set("session_id", session.session_id)
            .set("bytes", session.total_bytes)
            .set("chunks", session.total_chunks)
        )
        try:
            yield from self._handshake(session)
            seq = 0
            while seq < session.total_chunks:
                yield receiver.credit(session)
                chunk = self._wire_chunk(
                    session, seq, sizes[seq], retries.get(seq, 0)
                )
                if session.first_sent_at is None:
                    session.first_sent_at = self.env.now
                session.chunks_sent += 1
                self._m_chunks.inc()
                self._m_bytes.inc(chunk.nbytes)
                done = self.fabric.transfer(
                    self.src_host, receiver.host, chunk.nbytes, self.efficiency
                )
                timer = self.env.timeout(self.chunk_timeout_s)
                yield self.env.any_of([done, timer])
                if done.triggered:
                    if not timer.processed:
                        self.env.cancel(timer)
                else:
                    # Delivery timeout: withdraw the stalled stream.  A
                    # stream still inside its admission-latency window is
                    # not yet withdrawable — poll briefly; if the chunk
                    # lands meanwhile, count it delivered instead.
                    withdrawn = False
                    while not done.triggered:
                        if self.fabric.abort(done):
                            withdrawn = True
                            break
                        yield self.env.timeout(self.abort_poll_s)
                    if withdrawn:
                        receiver.refund(session)
                        session.renegotiations += 1
                        if self._m_renegotiations is None:
                            self._m_renegotiations = self._metrics.counter(
                                "stream.renegotiations"
                            )
                        self._m_renegotiations.inc()
                        yield from self._handshake(session)
                        # Resume from the receiver's acknowledged gap
                        # pointer.
                        seq = receiver.ack(session)
                        continue
                verdict = receiver.arrived(session, chunk)
                if verdict == "nak":
                    # Selective retransmit: re-send this sequence only
                    # (the credit came back with the NAK), up to the
                    # per-sequence cap.  A source whose payload itself
                    # no longer verifies can never produce a clean
                    # chunk — the session is unrepairable.
                    naks = retries.get(seq, 0) + 1
                    retries[seq] = naks
                    if naks > self.max_retransmits:
                        session.status = "FAILED"
                        session.error = (
                            f"integrity: chunk {seq} failed verification "
                            f"after {self.max_retransmits} retransmits"
                        )
                        span.set("status", "FAILED").set("failed_seq", seq)
                        if session.failed is not None:
                            session.failed.succeed(session)
                        return
                    session.retransmits += 1
                    if self._m_retransmits is None:
                        self._m_retransmits = self._metrics.counter(
                            "stream.retransmits"
                        )
                    self._m_retransmits.inc()
                    continue
                seq = max(seq + 1, receiver.ack(session))
            span.set("renegotiations", session.renegotiations)
            yield session.delivered
        finally:
            span.finish()
