"""Frame chunks and stream sessions: the wire units of streaming ingest.

A :class:`StreamSession` is one acquisition streamed from the
instrument host to a compute endpoint — the streaming counterpart of
one file-mode flow run.  The publisher slices the acquisition into
fixed-size :class:`FrameChunk` records (the last chunk carries the
remainder), numbers them, and sends them over long-lived fabric
streams; the receiver reassembles them in sequence order.

The session record doubles as the timing ledger the Fig.-4-style
ingest comparison reads: creation, first/last chunk delivery, the
partial-data analysis kickoff, and publication are all stamped in
simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import StreamError
from ..sim import Event

__all__ = ["FrameChunk", "StreamSession", "chunk_sizes"]


@dataclass(frozen=True)
class FrameChunk:
    """One fixed-size slice of an acquisition, as sent on the wire."""

    seq: int
    nbytes: float
    #: Simulated time the publisher put this chunk on the fabric.
    sent_at: float
    #: Wire digest computed by the publisher at send time (``None``
    #: when the session streams without integrity verification).
    digest: Optional[str] = None


def chunk_sizes(total_bytes: float, chunk_bytes: float) -> list[float]:
    """Slice ``total_bytes`` into full chunks plus a remainder chunk."""
    if total_bytes <= 0:
        raise StreamError(f"stream payload must be positive, got {total_bytes}")
    if chunk_bytes <= 0:
        raise StreamError(f"chunk size must be positive, got {chunk_bytes}")
    n_full = int(total_bytes // chunk_bytes)
    sizes = [float(chunk_bytes)] * n_full
    remainder = total_bytes - n_full * chunk_bytes
    if remainder > 0:
        sizes.append(float(remainder))
    return sizes


@dataclass
class StreamSession:
    """One acquisition in flight from detector to compute.

    Lifecycle: ``STREAMING`` → ``DELIVERED`` (all chunks contiguously
    received) → ``PUBLISHED`` (analysis output ingested into search),
    ``FAILED``, or ``QUARANTINED`` (the digest chain did not close —
    the record was dead-lettered, never indexed).  The DES events fire
    exactly once each:

    * :attr:`threshold` — the first ``threshold_chunks`` chunks landed
      in order; in-flight analysis may start on this partial data;
    * :attr:`delivered` — every chunk landed;
    * :attr:`done` — terminal (``PUBLISHED``/``FAILED``/``QUARANTINED``).

    Sessions with a :attr:`declared_digest` verify every chunk on
    arrival; :attr:`failed` (created only for those) fires when the
    publisher gives up on an unrepairable chunk.
    """

    session_id: str
    path: str
    total_bytes: float
    chunk_bytes: float
    total_chunks: int
    threshold_chunks: int
    created_at: float
    threshold: Event
    delivered: Event
    done: Event
    #: The source :class:`~repro.storage.VirtualFile`, when streaming
    #: out of a virtual filesystem (campaign mode).
    virtual: Any = None
    #: The acquisition's declared checksum; enables per-chunk digest
    #: verification when set.
    declared_digest: Optional[str] = None
    #: Fires when the publisher exhausts retransmits on a chunk that
    #: never verifies (``None`` unless verification is enabled).
    failed: Optional[Event] = None
    status: str = "STREAMING"
    error: Optional[str] = None

    # -- timing ledger (simulated seconds) --------------------------------
    first_sent_at: Optional[float] = None
    first_chunk_at: Optional[float] = None
    threshold_at: Optional[float] = None
    last_chunk_at: Optional[float] = None
    analysis_started_at: Optional[float] = None
    analysis_done_at: Optional[float] = None
    published_at: Optional[float] = None

    # -- protocol accounting ----------------------------------------------
    #: Chunks the receiver rejected as already accepted (renegotiation
    #: overlap or a withdrawn stream landing late).
    duplicates: int = 0
    #: Gap renegotiations after chunk-delivery timeouts.
    renegotiations: int = 0
    chunks_sent: int = 0
    #: Chunks the receiver rejected on digest/size verification.
    naks: int = 0
    #: Out-of-order arrivals (a sequence gap was open when they landed).
    gaps: int = 0
    #: Chunks the publisher re-sent in response to a NAK.
    retransmits: int = 0

    @property
    def detection_to_analysis_s(self) -> Optional[float]:
        """Creation → analysis kickoff: the latency Fig. 4 attributes to
        detection + staging in file mode, collapsed by streaming."""
        if self.analysis_started_at is None:
            return None
        return self.analysis_started_at - self.created_at

    @property
    def end_to_end_s(self) -> Optional[float]:
        if self.published_at is None:
            return None
        return self.published_at - self.created_at

    @property
    def terminal(self) -> bool:
        return self.status in ("PUBLISHED", "FAILED", "QUARANTINED")
