"""Streaming ingest: the detector→compute fast path.

The paper's measured pipeline stages data through files — watcher,
Globus transfer, polled flow steps — and Fig. 4 shows the polling and
detection lag dominating small-flow latency.  The follow-on streaming
work (Welborn et al.) replaces that pipeline with sockets from the
detector straight into compute nodes.  This package reproduces that
alternative inside the same testbed so the two ingest modes can be
measured head-to-head:

* :class:`StreamPublisher` — instrument-side: slices acquisitions into
  sequence-numbered chunks and pushes them over long-lived fabric
  streams, with gap renegotiation after link blackouts;
* :class:`StreamReceiver` — compute-side: credit-window backpressure,
  exactly-once in-order reassembly, and the partial-data analysis
  trigger;
* :class:`StreamIngestApp` — the application gluing sessions to the
  compute service and search index (the flow-trigger app's
  counterpart);
* :class:`StreamIngestActionProvider` — the flow-facing adapter.

Campaigns select the path per flow with ``ingest="file" | "stream"``
(see :func:`repro.core.run_campaign`); file mode is bit-identical with
this package present.
"""

from .ingest import StreamIngestApp
from .provider import StreamIngestActionProvider
from .publisher import StreamPublisher
from .receiver import StreamReceiver
from .session import FrameChunk, StreamSession, chunk_sizes

__all__ = [
    "FrameChunk",
    "StreamIngestActionProvider",
    "StreamIngestApp",
    "StreamPublisher",
    "StreamReceiver",
    "StreamSession",
    "chunk_sizes",
]
