"""The compute-side endpoint of the streaming fast path.

One :class:`StreamReceiver` lives on a compute host and terminates
every publisher session targeting it.  Per session it keeps:

* a **credit store** bounding the in-flight window — credits are
  consumed by the publisher before each send and returned only after
  the chunk is drained into the node's frame buffer, so a slow
  consumer blocks the producer (credit-based backpressure);
* a **sequence ledger** — chunks are accepted exactly once, in order;
  re-sent chunks that were already accepted (renegotiation overlap, a
  withdrawn stream landing late) count as duplicates and refund their
  credit immediately, so the analysis sees each frame exactly once;
* a **drain process** charging the node-side ingest time
  (``nbytes / ingest_bytes_per_s``) per accepted chunk, firing the
  session's ``threshold`` event once the first N chunks have landed
  (the in-flight analysis kickoff) and ``delivered`` on the last.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import StreamError
from ..integrity.digest import chunk_digest
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from ..sim import Environment, Store
from .session import FrameChunk, StreamSession, chunk_sizes

__all__ = ["StreamReceiver"]


@dataclass
class _RxState:
    """Per-session receive bookkeeping."""

    credits: Store
    arrivals: Store
    #: Next sequence number not yet accepted (the renegotiation ack).
    next_seq: int = 0
    #: Chunks accepted out of order, awaiting their predecessors.
    pending: dict[int, FrameChunk] = field(default_factory=dict)
    #: Contiguously drained chunk count (threshold/delivery triggers).
    drained: int = 0
    #: High-water mark of chunks in flight (sent, not yet drained).
    max_in_flight: int = 0
    #: Expected chunk sizes, precomputed when the session verifies.
    sizes: Optional[list[float]] = None
    #: Sequence numbers NAK'd and awaiting a clean retransmit.
    nak_seqs: set[int] = field(default_factory=set)


class StreamReceiver:
    """Reassembles chunk streams on a compute host.

    Parameters
    ----------
    env:
        Simulation environment.
    host:
        Topology node name this receiver terminates streams on.
    ingest_bytes_per_s:
        Node-side drain rate (frame-buffer write + decode); ``0``
        disables the charge.
    """

    def __init__(
        self,
        env: Environment,
        host: str,
        ingest_bytes_per_s: float = 0.0,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        self.env = env
        self.host = host
        self.ingest_bytes_per_s = float(ingest_bytes_per_s)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        m = metrics if metrics is not None else NULL_METRICS
        self._metrics = m
        self._m_chunks = m.counter("stream.chunks_delivered")
        self._m_bytes = m.counter("stream.bytes_delivered")
        self._m_duplicates: Any = None  # lazy; clean runs never see one
        self._m_naks: Any = None  # lazy; corruption-path only
        self._m_gaps: Any = None  # lazy; corruption-path only
        #: Integrity hook: a duck-typed
        #: :class:`~repro.integrity.IntegrityLedger` receiving
        #: detect/repair events for NAK'd chunks.  ``None`` disables.
        self.ledger: Any = None
        self._states: dict[str, _RxState] = {}

    # -- session lifecycle -------------------------------------------------
    def open(self, session: StreamSession, window: int) -> None:
        """Allocate receive state and start the drain process."""
        if session.session_id in self._states:
            raise StreamError(f"session already open: {session.session_id!r}")
        if window < 1:
            raise StreamError(f"window must be >= 1, got {window}")
        credits = Store(self.env, capacity=window)
        for _ in range(window):
            credits.put(1)
        state = _RxState(credits=credits, arrivals=Store(self.env))
        if session.declared_digest is not None:
            state.sizes = chunk_sizes(session.total_bytes, session.chunk_bytes)
        self._states[session.session_id] = state
        self.env.process(self._drain(session, state))

    def _state(self, session: StreamSession) -> _RxState:
        try:
            return self._states[session.session_id]
        except KeyError:
            raise StreamError(
                f"no open session: {session.session_id!r}"
            ) from None

    # -- publisher-facing protocol ----------------------------------------
    def credit(self, session: StreamSession):
        """Event firing when a window credit is available (consume it
        before sending a chunk)."""
        return self._state(session).credits.get()

    def refund(self, session: StreamSession) -> None:
        """Return the credit of a chunk that was withdrawn before
        delivery (the publisher re-acquires one for the resend)."""
        self._state(session).credits.put(1)

    def ack(self, session: StreamSession) -> int:
        """The next sequence number this receiver needs — the resume
        point a renegotiating publisher queries."""
        return self._state(session).next_seq

    def in_flight(self, session: StreamSession) -> int:
        """Chunks currently holding a window credit."""
        state = self._state(session)
        return int(state.credits.capacity) - len(state.credits.items)

    def arrived(self, session: StreamSession, chunk: FrameChunk) -> str:
        """A chunk's fabric stream completed: verify, accept, or reject.

        Returns a verdict the publisher acts on: ``"accepted"``,
        ``"duplicate"`` (already-accepted sequence number — refund the
        credit at once), or ``"nak"`` (the wire digest or size failed
        verification against the session's declared digest — the credit
        is refunded and the publisher must retransmit that sequence).
        """
        state = self._state(session)
        window_used = self.in_flight(session)
        if window_used > state.max_in_flight:
            state.max_in_flight = window_used
        if chunk.seq < state.next_seq or chunk.seq in state.pending:
            session.duplicates += 1
            if self._m_duplicates is None:
                self._m_duplicates = self._metrics.counter("stream.duplicates")
            self._m_duplicates.inc()
            state.credits.put(1)
            return "duplicate"
        if session.declared_digest is not None and state.sizes is not None:
            expected_nbytes = state.sizes[chunk.seq]
            expected = chunk_digest(
                session.declared_digest, chunk.seq, expected_nbytes
            )
            if chunk.nbytes != expected_nbytes or chunk.digest != expected:
                kind = (
                    "truncated" if chunk.nbytes != expected_nbytes else "corrupt"
                )
                session.naks += 1
                state.nak_seqs.add(chunk.seq)
                if self._m_naks is None:
                    self._m_naks = self._metrics.counter("stream.naks")
                self._m_naks.inc()
                if self.ledger is not None:
                    self.ledger.detect(
                        "stream",
                        kind,
                        path=session.path,
                        seq=chunk.seq,
                        session_id=session.session_id,
                    )
                state.credits.put(1)
                return "nak"
            if chunk.seq in state.nak_seqs:
                # A previously NAK'd sequence verified on retransmit.
                state.nak_seqs.discard(chunk.seq)
                if self.ledger is not None:
                    self.ledger.repair(
                        "stream",
                        "retransmit",
                        path=session.path,
                        seq=chunk.seq,
                        session_id=session.session_id,
                    )
        if session.first_chunk_at is None:
            session.first_chunk_at = self.env.now
        if chunk.seq > state.next_seq:
            session.gaps += 1
            if self._m_gaps is None:
                self._m_gaps = self._metrics.counter("stream.gaps")
            self._m_gaps.inc()
        state.pending[chunk.seq] = chunk
        # Release the contiguous run into the drain queue.  The walk is
        # counter-driven (not an iteration over the mutating dict), so
        # arrival order cannot leak into delivery order.
        while state.next_seq in state.pending:
            state.arrivals.put(state.pending.pop(state.next_seq))
            state.next_seq += 1
        return "accepted"

    # -- node-side drain ---------------------------------------------------
    def _drain(self, session: StreamSession, state: _RxState):
        span = (
            self.tracer.start("stream.drain")
            .set("session_id", session.session_id)
            .set("host", self.host)
        )
        try:
            while state.drained < session.total_chunks:
                chunk = yield state.arrivals.get()
                if self.ingest_bytes_per_s > 0 and chunk.nbytes > 0:
                    yield self.env.timeout(chunk.nbytes / self.ingest_bytes_per_s)
                state.drained += 1
                self._m_chunks.inc()
                self._m_bytes.inc(chunk.nbytes)
                if (
                    state.drained >= session.threshold_chunks
                    and session.threshold_at is None
                ):
                    session.threshold_at = self.env.now
                    session.threshold.succeed(session)
                state.credits.put(1)
            session.last_chunk_at = self.env.now
            session.status = "DELIVERED"
            span.set("chunks", state.drained)
            session.delivered.succeed(session)
        finally:
            span.finish()
