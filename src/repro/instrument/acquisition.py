"""The Sec. 3.3 data generator: a periodic file copier.

To provide a controlled environment, the paper drives its 1-hour
experiments with an application that periodically copies a file into the
transfer directory of the PicoProbe user computer.  :class:`FileCopier`
reproduces that as a DES process emitting :class:`VirtualFile` records
into the user machine's :class:`~repro.storage.VirtualFS`.

Two pacing modes (see DESIGN.md, "Campaign gating"):

* ``"periodic"`` — strictly one file every ``period_s``;
* ``"gated"`` — the next file lands at
  ``max(last_emit + period_s, previous flow completion)``, matching the
  paper's configuration "based on the approximate time it takes each
  transfer to complete" and its observed run counts (72 / 18 per hour).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from ..emd import SampleInfo
from ..emd.emdfile import estimate_emd_size
from ..errors import ReproError
from ..sim import Environment, Store
from ..storage import VirtualFS, VirtualFile
from ..units import MB
from .microscope import PicoProbe

__all__ = ["UseCaseSpec", "FileCopier", "HYPERSPECTRAL_USE_CASE", "SPATIOTEMPORAL_USE_CASE"]


@dataclass(frozen=True)
class UseCaseSpec:
    """One experimental use case as configured in Table 1."""

    name: str
    signal_type: str  # "hyperspectral" | "spatiotemporal"
    period_s: float  # start period (Table 1 row 1)
    file_size_bytes: float  # transfer volume (Table 1 row 2)
    shape: tuple[int, ...]  # nominal tensor dims of each file
    dtype: str
    sample: SampleInfo = field(default_factory=SampleInfo)

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ReproError(f"period must be positive, got {self.period_s}")
        if self.file_size_bytes <= 0:
            raise ReproError(f"file size must be positive, got {self.file_size_bytes}")


#: Table 1, column "Hyperspectral": 91 MB files every 30 s.  A 256×256 map
#: with 347 float32 channels + container overhead lands at ~91 MB.
HYPERSPECTRAL_USE_CASE = UseCaseSpec(
    name="hyperspectral",
    signal_type="hyperspectral",
    period_s=30.0,
    file_size_bytes=MB(91),
    shape=(256, 256, 347),
    dtype="<f4",
    sample=SampleInfo(
        name="polyamide membrane + heavy metals",
        elements=("C", "N", "O", "Au", "Pb"),
    ),
)

#: Table 1, column "Spatiotemporal": 1200 MB files every 120 s — 600
#: frames of 500×500 float64.
SPATIOTEMPORAL_USE_CASE = UseCaseSpec(
    name="spatiotemporal",
    signal_type="spatiotemporal",
    period_s=120.0,
    file_size_bytes=MB(1200),
    shape=(600, 500, 500),
    dtype="<f8",
    sample=SampleInfo(
        name="Au nanoparticles on carbon",
        elements=("Au", "C"),
    ),
)


class FileCopier:
    """DES process emitting virtual EMD files into a staging directory.

    Parameters
    ----------
    env, vfs:
        Simulation environment and the user machine's filesystem.
    use_case:
        What to emit and how often.
    instrument:
        Stamps each file's metadata.
    mode:
        ``"periodic"`` or ``"gated"`` (see module docstring).
    directory:
        Staging directory inside ``vfs``.
    """

    def __init__(
        self,
        env: Environment,
        vfs: VirtualFS,
        use_case: UseCaseSpec,
        instrument: Optional[PicoProbe] = None,
        mode: str = "gated",
        directory: str = "/transfer",
    ) -> None:
        if mode not in ("periodic", "gated"):
            raise ReproError(f"unknown copier mode: {mode!r}")
        self.env = env
        self.vfs = vfs
        self.use_case = use_case
        self.instrument = instrument or PicoProbe()
        self.mode = mode
        self.directory = directory.rstrip("/")
        #: Flow-completion notifications (gated mode): the campaign pushes
        #: one token per finished flow.
        self.completions: Store = Store(env)
        self.emitted: list[VirtualFile] = []

    def notify_flow_complete(self) -> None:
        """Tell a gated copier that a flow finished (any outcome)."""
        self.completions.put(self.env.now)

    def run(self, until: float) -> Generator:
        """The copier process: emit files until sim time ``until``.

        Use as ``env.process(copier.run(until=3600))``.
        """
        uc = self.use_case
        index = 0
        while self.env.now < until:
            self._emit(index)
            index += 1
            period = self.env.timeout(uc.period_s)
            if self.mode == "gated":
                # Next emission waits for BOTH the period and the
                # completion of the flow this file triggered.
                gate = self.completions.get()
                yield self.env.all_of([period, gate])
            else:
                yield period

    def _emit(self, index: int) -> VirtualFile:
        uc = self.use_case
        md = self.instrument.stamp_metadata(
            uc.signal_type,
            uc.shape,
            uc.dtype,
            uc.sample,
            acquired_at=self.env.now,
        )
        path = f"{self.directory}/{uc.name}_{index:04d}.emd"
        f = self.vfs.create(
            path,
            size_bytes=uc.file_size_bytes,
            created_at=self.env.now,
            kind="emd",
            metadata=md,
        )
        self.emitted.append(f)
        return f


def nominal_size_check(use_case: UseCaseSpec, tolerance: float = 0.35) -> float:
    """Sanity ratio between a use case's declared file size and the EMD
    size model for its tensor dims (≈1 when consistent)."""
    est = estimate_emd_size(use_case.shape, np.dtype(use_case.dtype))
    ratio = use_case.file_size_bytes / est
    if not (1 - tolerance) <= ratio <= (1 + tolerance):
        raise ReproError(
            f"{use_case.name}: declared size {use_case.file_size_bytes:.3g} B "
            f"vs size model {est:.3g} B (ratio {ratio:.2f})"
        )
    return ratio
