"""Reference loop implementations of the instrument generators.

These are the pre-vectorization per-frame / per-pixel code paths, kept
verbatim as the *numeric ground truth* for the batched implementations
in :mod:`.spatiotemporal` and :mod:`.phantoms`:

* ``tests/test_dataplane_identity.py`` asserts the vectorized outputs
  are bit-for-bit equal to these across seeds;
* ``repro bench dataplane`` times both and reports the speedup.

They are not exported from the package and must not be used by product
code.
"""

# repro: noqa-file[P602]  reference loop implementations, pinned on purpose

from __future__ import annotations

import numpy as np

from .phantoms import Particle
from .spatiotemporal import MovieSpec, simulate_trajectories


def render_frame_loops(
    shape: tuple[int, int],
    centers: np.ndarray,
    radii: np.ndarray,
    spec: MovieSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Pre-PR ``render_frame``: one background draw + per-particle adds."""
    h, w = shape
    frame = rng.normal(spec.background_level, spec.background_noise, size=shape)
    for (row, col), r in zip(centers, radii):
        sigma = r / 1.8
        half = int(np.ceil(3 * sigma))
        r0, r1 = max(int(row) - half, 0), min(int(row) + half + 1, h)
        c0, c1 = max(int(col) - half, 0), min(int(col) + half + 1, w)
        if r1 <= r0 or c1 <= c0:
            continue
        rr = np.arange(r0, r1, dtype=np.float64)[:, None]
        cc = np.arange(c0, c1, dtype=np.float64)[None, :]
        blob = np.exp(-0.5 * (((rr - row) ** 2 + (cc - col) ** 2) / sigma**2))
        frame[r0:r1, c0:c1] += spec.particle_peak * blob
    np.clip(frame, 0.0, None, out=frame)
    return frame


def generate_movie_loops(
    spec: MovieSpec, rng: "np.random.Generator | None" = None
) -> tuple[np.ndarray, list[list[Particle]]]:
    """Pre-PR ``generate_movie``: one :func:`render_frame_loops` per frame."""
    if rng is None:
        rng = np.random.default_rng(0)
    pos, radii = simulate_trajectories(spec, rng)
    movie = np.empty((spec.n_frames, *spec.shape), dtype=np.float64)
    truth: list[list[Particle]] = []
    for t in range(spec.n_frames):
        movie[t] = render_frame_loops(spec.shape, pos[t], radii, spec, rng)
        truth.append(
            [
                Particle(row=float(r), col=float(c), radius=float(rad), element="Au")
                for (r, c), rad in zip(pos[t], radii)
            ]
        )
    return movie, truth


def _soft_disk_loops(
    shape: tuple[int, int], row: float, col: float, radius: float, softness: float = 1.0
) -> np.ndarray:
    """Pre-PR ``_soft_disk``: full-frame distance transform per particle."""
    rr = np.arange(shape[0], dtype=np.float64)[:, None]
    cc = np.arange(shape[1], dtype=np.float64)[None, :]
    d = np.sqrt((rr - row) ** 2 + (cc - col) ** 2)
    return np.clip((radius - d) / max(softness, 1e-6) + 0.5, 0.0, 1.0)


def particle_mask_loops(
    shape: tuple[int, int], particles: "list[Particle]"
) -> np.ndarray:
    """Pre-PR ``particle_mask``: one full-frame soft disk per particle."""
    out = np.zeros(shape, dtype=np.float64)
    for p in particles:
        out += _soft_disk_loops(shape, p.row, p.col, p.radius)
    return out
