"""Characteristic X-ray line physics for hyperspectral (EDS) synthesis.

The XPAD detector on the Dynamic PicoProbe collects energy-dispersive
X-ray spectra per probe position.  This module synthesizes physically
flavoured spectra: Gaussian characteristic lines at tabulated energies,
a Kramers-style bremsstrahlung continuum, detector energy resolution, and
Poisson counting noise.  Cube synthesis is fully vectorized — one
spectral template per element, combined with per-pixel composition maps
by a single einsum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import ReproError

__all__ = ["XRayLine", "ELEMENT_LINES", "element_template", "synthesize_cube", "energy_axis"]


@dataclass(frozen=True)
class XRayLine:
    """One characteristic emission line."""

    label: str  # e.g. "Au-Ma"
    energy_ev: float
    relative_intensity: float  # within its element, strongest = 1.0


#: Characteristic lines (eV) for the elements the use cases involve:
#: the polyamide membrane (C/N/O), heavy-metal uptake (Au/Pb), supports
#: and common contaminants.  Energies from standard EDS tables.
ELEMENT_LINES: dict[str, tuple[XRayLine, ...]] = {
    "C": (XRayLine("C-Ka", 277.0, 1.0),),
    "N": (XRayLine("N-Ka", 392.4, 1.0),),
    "O": (XRayLine("O-Ka", 524.9, 1.0),),
    "Si": (XRayLine("Si-Ka", 1739.9, 1.0),),
    "S": (XRayLine("S-Ka", 2307.8, 1.0),),
    "Cl": (XRayLine("Cl-Ka", 2622.4, 1.0),),
    "Cu": (
        XRayLine("Cu-La", 929.7, 0.4),
        XRayLine("Cu-Ka", 8046.3, 1.0),
        XRayLine("Cu-Kb", 8905.3, 0.15),
    ),
    "Au": (
        XRayLine("Au-Ma", 2122.9, 1.0),
        XRayLine("Au-La", 9713.3, 0.6),
        XRayLine("Au-Lb", 11442.3, 0.25),
    ),
    "Pb": (
        XRayLine("Pb-Ma", 2345.5, 1.0),
        XRayLine("Pb-La", 10551.5, 0.55),
    ),
}


def energy_axis(n_channels: int = 1024, ev_per_channel: float = 12.0, offset_ev: float = 0.0) -> np.ndarray:
    """Detector energy axis in eV (channel centers)."""
    if n_channels < 1:
        raise ReproError(f"n_channels must be >= 1, got {n_channels}")
    return offset_ev + ev_per_channel * (np.arange(n_channels, dtype=np.float64) + 0.5)


def element_template(
    element: str,
    energies: np.ndarray,
    resolution_ev: float = 130.0,
) -> np.ndarray:
    """Unit-intensity spectral template for ``element`` on ``energies``.

    ``resolution_ev`` is the detector FWHM at Mn-Kα; peak width grows as
    sqrt(E) in real EDS detectors, approximated here by scaling FWHM with
    sqrt(E / 5899 eV).
    """
    try:
        lines = ELEMENT_LINES[element]
    except KeyError:
        raise ReproError(
            f"no line table for element {element!r}; known: {sorted(ELEMENT_LINES)}"
        ) from None
    e = np.asarray(energies, dtype=np.float64)
    out = np.zeros_like(e)
    for line in lines:
        fwhm = resolution_ev * np.sqrt(max(line.energy_ev, 1.0) / 5899.0)
        sigma = fwhm / 2.3548
        out += line.relative_intensity * np.exp(
            -0.5 * ((e - line.energy_ev) / sigma) ** 2
        )
    peak = out.max()
    return out / peak if peak > 0 else out


def bremsstrahlung(energies: np.ndarray, beam_energy_kev: float = 300.0) -> np.ndarray:
    """Kramers-law continuum: intensity ∝ (E0 - E) / E, clipped at 0."""
    e = np.asarray(energies, dtype=np.float64)
    e0 = beam_energy_kev * 1e3
    cont = np.clip(e0 - e, 0.0, None) / np.maximum(e, e[0])
    m = cont.max()
    return cont / m if m > 0 else cont


def synthesize_cube(
    composition_maps: Mapping[str, np.ndarray],
    energies: np.ndarray,
    rng: np.random.Generator,
    counts_per_pixel: float = 2000.0,
    background_fraction: float = 0.15,
    resolution_ev: float = 130.0,
    beam_energy_kev: float = 300.0,
    poisson: bool = True,
) -> np.ndarray:
    """Synthesize an H×W×E hyperspectral cube.

    ``composition_maps`` maps element symbol → H×W non-negative weight
    map (relative abundance at each pixel).  The expected spectrum at a
    pixel is the weighted sum of element templates plus a continuum
    scaled by total local mass; Poisson noise models counting statistics.
    """
    elements = sorted(composition_maps)
    if not elements:
        raise ReproError("composition_maps must contain at least one element")
    shapes = {composition_maps[el].shape for el in elements}
    if len(shapes) != 1:
        raise ReproError(f"composition maps disagree on shape: {shapes}")
    (hw,) = shapes
    if len(hw) != 2:
        raise ReproError(f"composition maps must be 2-D, got shape {hw}")

    e = np.asarray(energies, dtype=np.float64)
    weights = np.stack(
        [np.asarray(composition_maps[el], dtype=np.float64) for el in elements]
    )  # K x H x W
    if (weights < 0).any():
        raise ReproError("composition weights must be non-negative")
    templates = np.stack(
        [element_template(el, e, resolution_ev) for el in elements]
    )  # K x E

    # Expected signal: per-pixel weighted sum of templates (K contraction).
    cube = np.einsum("khw,ke->hwe", weights, templates, optimize=True)
    total_mass = weights.sum(axis=0)  # H x W
    cont = bremsstrahlung(e, beam_energy_kev)
    cube += background_fraction * total_mass[:, :, None] * cont[None, None, :]

    # Normalize so a unit-mass pixel integrates to counts_per_pixel.
    norm = cube.sum(axis=2, keepdims=True)
    scale = counts_per_pixel * np.divide(
        total_mass[:, :, None], norm, out=np.zeros_like(norm), where=norm > 0
    )
    cube *= scale
    if poisson:
        cube = rng.poisson(cube).astype(np.float64)
    return cube
