"""The simulated Dynamic PicoProbe instrument.

Physics-flavoured synthetic data generation (X-ray line spectra,
Brownian nanoparticle movies), the stateful microscope model, and the
Sec. 3.3 periodic file copier that drives the performance campaigns.
"""

from .acquisition import (
    HYPERSPECTRAL_USE_CASE,
    SPATIOTEMPORAL_USE_CASE,
    FileCopier,
    UseCaseSpec,
)
from .microscope import CAMERA_DETECTOR, XPAD_DETECTOR, PicoProbe
from .phantoms import Particle, gold_on_carbon_phantom, particle_mask, polyamide_film_phantom
from .spatiotemporal import MotionModel, MovieSpec, generate_movie, render_frame, simulate_trajectories
from .xray import ELEMENT_LINES, XRayLine, element_template, energy_axis, synthesize_cube

__all__ = [
    "PicoProbe",
    "XPAD_DETECTOR",
    "CAMERA_DETECTOR",
    "FileCopier",
    "UseCaseSpec",
    "HYPERSPECTRAL_USE_CASE",
    "SPATIOTEMPORAL_USE_CASE",
    "Particle",
    "polyamide_film_phantom",
    "gold_on_carbon_phantom",
    "particle_mask",
    "MovieSpec",
    "MotionModel",
    "generate_movie",
    "render_frame",
    "simulate_trajectories",
    "XRayLine",
    "ELEMENT_LINES",
    "element_template",
    "energy_axis",
    "synthesize_cube",
]
