"""Spatiotemporal movie synthesis: gold nanoparticles in Brownian motion.

The paper's second use case is a 600-frame movie of gold nanoparticles
moving on a carbon background (Sec. 3.2).  This module simulates particle
trajectories (Brownian diffusion + slow drift, reflective boundaries) and
renders detector-count frames: bright Gaussian blobs on a noisy support
film, stored float64 exactly as the paper's EMD files are (the expensive
fp64→uint8 cast in the conversion step is then faithful).

Rendering is windowed: each particle touches only a local ±3σ patch, so
cost scales with particle area, not frame area.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError
from .phantoms import Particle

__all__ = ["MotionModel", "MovieSpec", "simulate_trajectories", "render_frame", "generate_movie"]


@dataclass(frozen=True)
class MotionModel:
    """Brownian + drift kinematics in pixels/frame."""

    diffusion_px: float = 1.5  # per-axis std of the Brownian step
    drift_px: tuple[float, float] = (0.05, 0.02)  # (row, col) per frame
    margin_px: float = 4.0  # reflective wall inset


@dataclass(frozen=True)
class MovieSpec:
    """Geometry and radiometry of a synthetic movie."""

    n_frames: int = 600
    shape: tuple[int, int] = (640, 640)
    n_particles: int = 20
    radius_range: tuple[float, float] = (6.0, 14.0)
    background_level: float = 120.0  # mean carbon-support counts
    background_noise: float = 12.0  # gaussian read noise std
    particle_peak: float = 2400.0  # peak counts at particle center
    motion: MotionModel = field(default_factory=MotionModel)


def simulate_trajectories(
    spec: MovieSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(positions, radii)``: positions is (T, N, 2) float64
    (row, col), radii is (N,).  Walls reflect; radii are constant."""
    if spec.n_frames < 1 or spec.n_particles < 1:
        raise ReproError("movie needs at least one frame and one particle")
    h, w = spec.shape
    m = spec.motion
    radii = rng.uniform(*spec.radius_range, size=spec.n_particles)
    lo = m.margin_px + radii  # per-particle wall inset
    hi_r = h - m.margin_px - radii
    hi_c = w - m.margin_px - radii
    if (hi_r <= lo).any() or (hi_c <= lo).any():
        raise ReproError(f"frame {spec.shape} too small for radii up to {radii.max():.1f}")

    pos = np.empty((spec.n_frames, spec.n_particles, 2), dtype=np.float64)
    pos[0, :, 0] = rng.uniform(lo, hi_r)
    pos[0, :, 1] = rng.uniform(lo, hi_c)
    steps = rng.normal(0.0, m.diffusion_px, size=(spec.n_frames - 1, spec.n_particles, 2))
    steps[..., 0] += m.drift_px[0]
    steps[..., 1] += m.drift_px[1]
    for t in range(1, spec.n_frames):
        p = pos[t - 1] + steps[t - 1]
        # Reflect off per-particle walls (one bounce is enough for small steps).
        p[:, 0] = np.where(p[:, 0] < lo, 2 * lo - p[:, 0], p[:, 0])
        p[:, 0] = np.where(p[:, 0] > hi_r, 2 * hi_r - p[:, 0], p[:, 0])
        p[:, 1] = np.where(p[:, 1] < lo, 2 * lo - p[:, 1], p[:, 1])
        p[:, 1] = np.where(p[:, 1] > hi_c, 2 * hi_c - p[:, 1], p[:, 1])
        pos[t] = p
    return pos, radii


def render_frame(
    shape: tuple[int, int],
    centers: np.ndarray,
    radii: np.ndarray,
    spec: MovieSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Render one float64 frame: noisy background + Gaussian particles."""
    h, w = shape
    frame = rng.normal(spec.background_level, spec.background_noise, size=shape)
    for (row, col), r in zip(centers, radii):
        sigma = r / 1.8
        half = int(np.ceil(3 * sigma))
        r0, r1 = max(int(row) - half, 0), min(int(row) + half + 1, h)
        c0, c1 = max(int(col) - half, 0), min(int(col) + half + 1, w)
        if r1 <= r0 or c1 <= c0:
            continue
        rr = np.arange(r0, r1, dtype=np.float64)[:, None]
        cc = np.arange(c0, c1, dtype=np.float64)[None, :]
        blob = np.exp(-0.5 * (((rr - row) ** 2 + (cc - col) ** 2) / sigma**2))
        frame[r0:r1, c0:c1] += spec.particle_peak * blob
    np.clip(frame, 0.0, None, out=frame)
    return frame


def generate_movie(
    spec: MovieSpec, rng: "np.random.Generator | None" = None
) -> tuple[np.ndarray, list[list[Particle]]]:
    """Simulate and render a full movie.

    Returns ``(movie, truth)`` where ``movie`` is (T, H, W) float64 and
    ``truth[t]`` lists the ground-truth :class:`Particle` records for
    frame ``t`` (bounding boxes at ±radius around each center).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    pos, radii = simulate_trajectories(spec, rng)
    n_frames = spec.n_frames
    h, w = spec.shape
    # One batched draw for every background: a Generator consumes the
    # bit stream in C order, so a (T, H, W) normal() is bit-identical
    # to T sequential (H, W) draws.
    movie = rng.normal(
        spec.background_level, spec.background_noise, size=(n_frames, h, w)
    )
    # Particle blobs, batched over frames.  Radii are constant, so each
    # particle has one window size for the whole movie; frames whose
    # window stays inside the frame (the vast majority, given the
    # reflective wall margins) are scattered in one fancy-indexed add —
    # frame indices are distinct, so ``+=`` accumulates exactly once
    # per pixel, in the same particle-major order as the per-frame
    # loop.  Wall-clipped frames fall back to the windowed scalar path.
    # The particle loop stays Python (N ≈ 20): each iteration is one
    # whole-movie fancy-indexed scatter, and particle-major order is
    # what keeps the per-pixel accumulation order — and therefore the
    # float sums — bit-identical to the per-frame reference.
    t_all = np.arange(n_frames)
    for n in range(radii.shape[0]):  # repro: noqa[P602]
        r = radii[n]
        sigma = r / 1.8
        half = int(np.ceil(3 * sigma))
        k = 2 * half + 1
        rows = pos[:, n, 0]
        cols = pos[:, n, 1]
        ir = rows.astype(np.int64)  # positions are positive: trunc == floor
        ic = cols.astype(np.int64)
        r0 = ir - half
        c0 = ic - half
        interior = (r0 >= 0) & (ir + half + 1 <= h) & (c0 >= 0) & (ic + half + 1 <= w)
        t_in = t_all[interior]
        if t_in.size:
            offs = np.arange(k, dtype=np.int64)
            rr_idx = r0[t_in, None] + offs  # (Ti, K)
            cc_idx = c0[t_in, None] + offs
            dr2 = (rr_idx.astype(np.float64) - rows[t_in, None]) ** 2
            dc2 = (cc_idx.astype(np.float64) - cols[t_in, None]) ** 2
            # The transcendental work — one exp over every (frame, K, K)
            # window — is batched; the writes stay contiguous slice-adds
            # (a fancy-indexed scatter is slower than K×K slice adds).
            blob = np.exp(
                -0.5 * ((dr2[:, :, None] + dc2[:, None, :]) / sigma**2)
            )
            blob *= spec.particle_peak
            for j, t in enumerate(t_in):
                movie[t, r0[t] : r0[t] + k, c0[t] : c0[t] + k] += blob[j]
        for t in t_all[~interior]:
            row, col = rows[t], cols[t]
            b0, b1 = max(ir[t] - half, 0), min(ir[t] + half + 1, h)
            d0, d1 = max(ic[t] - half, 0), min(ic[t] + half + 1, w)
            if b1 <= b0 or d1 <= d0:
                continue
            rr = np.arange(b0, b1, dtype=np.float64)[:, None]
            cc = np.arange(d0, d1, dtype=np.float64)[None, :]
            blob = np.exp(-0.5 * (((rr - row) ** 2 + (cc - col) ** 2) / sigma**2))
            movie[t, b0:b1, d0:d1] += spec.particle_peak * blob
    np.clip(movie, 0.0, None, out=movie)
    pos_list = pos.tolist()
    radii_list = [float(rad) for rad in radii]
    truth: list[list[Particle]] = [
        [
            Particle(row=rc[0], col=rc[1], radius=rad, element="Au")
            for rc, rad in zip(frame_pos, radii_list)
        ]
        for frame_pos in pos_list
    ]
    return movie, truth
