"""The simulated Dynamic PicoProbe instrument.

:class:`PicoProbe` owns the microscope state (beam energy, stage pose,
detectors) and produces :class:`~repro.emd.EmdSignal` acquisitions —
hyperspectral cubes via the X-ray synthesis pipeline and spatiotemporal
movies via the Brownian-motion renderer — each stamped with full
:class:`~repro.emd.AcquisitionMetadata` exactly as the real instrument
software embeds it in EMD files.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..emd import (
    AcquisitionMetadata,
    DetectorConfig,
    EmdSignal,
    MicroscopeState,
    SampleInfo,
    StagePosition,
    default_dims,
    iso_from_campaign_seconds,
)
from ..emd.emdfile import DimVector
from ..rng import RngRegistry
from .phantoms import Particle, polyamide_film_phantom
from .spatiotemporal import MovieSpec, generate_movie
from .xray import energy_axis, synthesize_cube

__all__ = ["PicoProbe", "XPAD_DETECTOR", "CAMERA_DETECTOR"]

XPAD_DETECTOR = DetectorConfig(
    name="XPAD",
    kind="xray-hyperspectral",
    solid_angle_sr=4.5,  # world-highest collection efficiency (Sec. 2.1)
    energy_resolution_ev=130.0,
)

CAMERA_DETECTOR = DetectorConfig(
    name="TemCam",
    kind="camera",
    pixel_size_um=14.0,
)


class PicoProbe:
    """A stateful instrument producing EMD signals.

    Parameters
    ----------
    rngs:
        Random-stream registry (seeded) — acquisition noise draws from
        ``instrument.*`` streams.
    operator:
        Identity recorded in metadata.
    """

    def __init__(self, rngs: Optional[RngRegistry] = None, operator: str = "operator") -> None:
        self.rngs = rngs or RngRegistry(seed=0)
        self.operator = operator
        self.state = MicroscopeState(
            beam_energy_kev=300.0,
            probe_size_pm=50.0,
            magnification=1.2e6,
            detectors=(XPAD_DETECTOR, CAMERA_DETECTOR),
        )
        self._acq_counter = 0

    # -- configuration ----------------------------------------------------
    def set_beam_energy(self, kev: float) -> None:
        """Select the accelerating voltage (30–300 kV monochromated)."""
        if not 30.0 <= kev <= 300.0:
            raise ValueError(f"beam energy must be within 30-300 kV, got {kev}")
        self.state = replace(self.state, beam_energy_kev=float(kev))

    def move_stage(self, **pose: float) -> None:
        """Update stage position/tilt fields (x_um, y_um, z_um, alpha_deg, beta_deg)."""
        self.state = replace(self.state, stage=replace(self.state.stage, **pose))

    def _next_id(self, prefix: str) -> str:
        self._acq_counter += 1
        return f"{prefix}-{self._acq_counter:04d}"

    def stamp_metadata(
        self,
        signal_type: str,
        shape: tuple[int, ...],
        dtype: str,
        sample: SampleInfo,
        acquired_at: float,
    ) -> AcquisitionMetadata:
        """Mint acquisition metadata for a (possibly virtual) acquisition.

        Campaign simulations use this to stamp paper-scale virtual files
        with real metadata without synthesizing the tensor itself.
        """
        return AcquisitionMetadata(
            acquisition_id=self._next_id(signal_type[:5]),
            acquired_at=float(acquired_at),
            acquired_at_iso=iso_from_campaign_seconds(acquired_at),
            operator=self.operator,
            signal_type=signal_type,
            shape=shape,
            dtype=dtype,
            microscope=self.state,
            sample=sample,
        )

    # -- acquisitions ---------------------------------------------------------
    def acquire_hyperspectral(
        self,
        shape: tuple[int, int] = (256, 256),
        n_channels: int = 1024,
        acquired_at: float = 0.0,
        counts_per_pixel: float = 2000.0,
    ) -> tuple[EmdSignal, list[Particle]]:
        """Acquire a hyperspectral cube of the polyamide film sample.

        Returns the signal plus ground-truth particle records.
        """
        rng = self.rngs.stream("instrument.hyperspectral")
        comp, particles = polyamide_film_phantom(shape, rng)
        energies = energy_axis(n_channels)
        cube = synthesize_cube(
            comp,
            energies,
            rng,
            counts_per_pixel=counts_per_pixel,
            beam_energy_kev=self.state.beam_energy_kev,
        )
        sample = SampleInfo(
            name="polyamide membrane + heavy metals",
            description=(
                "Polyamide organic film treated to capture heavy metals "
                "from water (cf. Song et al. 2019)"
            ),
            elements=tuple(sorted(comp)),
            preparation="liquid-cell deposition",
        )
        md = self.stamp_metadata(
            "hyperspectral", cube.shape, cube.dtype.str, sample, acquired_at
        )
        dims = (
            default_dims(cube.shape, "hyperspectral")[0],
            default_dims(cube.shape, "hyperspectral")[1],
            DimVector(name="energy", units="eV", values=energies),
        )
        return EmdSignal(name=md.acquisition_id, data=cube, dims=dims, metadata=md), particles

    def acquire_spatiotemporal(
        self,
        spec: Optional[MovieSpec] = None,
        acquired_at: float = 0.0,
    ) -> tuple[EmdSignal, list[list[Particle]]]:
        """Acquire a movie of gold nanoparticles on carbon.

        Returns the signal plus per-frame ground truth.
        """
        spec = spec or MovieSpec()
        rng = self.rngs.stream("instrument.spatiotemporal")
        movie, truth = generate_movie(spec, rng)
        sample = SampleInfo(
            name="Au nanoparticles on carbon",
            description="Gold nanoparticles in motion on an amorphous carbon support",
            elements=("Au", "C"),
            preparation="drop-cast colloid",
        )
        md = self.stamp_metadata(
            "spatiotemporal", movie.shape, movie.dtype.str, sample, acquired_at
        )
        dims = default_dims(movie.shape, "spatiotemporal")
        return EmdSignal(name=md.acquisition_id, data=movie, dims=dims, metadata=md), truth
