"""Synthetic sample phantoms.

Two phantoms mirror the paper's use cases:

* :func:`polyamide_film_phantom` — the Fig. 2 sample: a polyamide organic
  membrane (C/N/O matrix with ridge-and-valley thickness variations, as in
  reverse-osmosis films) treated to capture heavy metals, so Au/Pb
  particles decorate the film surface.
* :func:`gold_on_carbon_phantom` — the Fig. 3 sample: gold nanoparticles
  scattered on an amorphous-carbon support.

Both return composition maps (for hyperspectral synthesis) and ground-
truth particle records (for detector calibration and mAP evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError

__all__ = ["Particle", "polyamide_film_phantom", "gold_on_carbon_phantom", "particle_mask"]


@dataclass(frozen=True)
class Particle:
    """Ground-truth particle: center (row, col), radius (px), element."""

    row: float
    col: float
    radius: float
    element: str = "Au"

    @property
    def bbox(self) -> tuple[float, float, float, float]:
        """(x0, y0, x1, y1) bounding box in pixel coordinates."""
        return (
            self.col - self.radius,
            self.row - self.radius,
            self.col + self.radius,
            self.row + self.radius,
        )


def _soft_disk(shape: tuple[int, int], row: float, col: float, radius: float, softness: float = 1.0) -> np.ndarray:
    """Anti-aliased disk of unit height (vectorized distance transform)."""
    rr = np.arange(shape[0], dtype=np.float64)[:, None]
    cc = np.arange(shape[1], dtype=np.float64)[None, :]
    d = np.sqrt((rr - row) ** 2 + (cc - col) ** 2)
    return np.clip((radius - d) / max(softness, 1e-6) + 0.5, 0.0, 1.0)


def particle_mask(shape: tuple[int, int], particles: "list[Particle]") -> np.ndarray:
    """Sum of soft disks for ``particles`` (values may exceed 1 where
    particles overlap).

    Each disk is evaluated only on the window where it can be non-zero:
    the soft edge reaches exactly ``radius + softness/2`` pixels from
    the center, so pixels beyond that contribute an exact ``+0.0`` and
    may be skipped without changing a single bit of the result (cost
    scales with particle area, not frame area — the same windowing the
    movie renderer uses).
    """
    h, w = shape
    softness = 1.0
    out = np.zeros(shape, dtype=np.float64)
    for p in particles:
        reach = p.radius + 0.5 * softness
        r0 = max(int(np.floor(p.row - reach)), 0)
        r1 = min(int(np.ceil(p.row + reach)) + 1, h)
        c0 = max(int(np.floor(p.col - reach)), 0)
        c1 = min(int(np.ceil(p.col + reach)) + 1, w)
        if r1 <= r0 or c1 <= c0:
            continue
        rr = np.arange(r0, r1, dtype=np.float64)[:, None]
        cc = np.arange(c0, c1, dtype=np.float64)[None, :]
        d = np.sqrt((rr - p.row) ** 2 + (cc - p.col) ** 2)
        out[r0:r1, c0:c1] += np.clip(
            (p.radius - d) / max(softness, 1e-6) + 0.5, 0.0, 1.0
        )
    return out


def _place_particles(
    shape: tuple[int, int],
    n: int,
    rng: np.random.Generator,
    radius_range: tuple[float, float],
    margin: float,
    element: str,
) -> list[Particle]:
    h, w = shape
    # Clamp radii so every particle fits inside the margins even on small
    # test-scale frames.
    limit = (min(h, w) - 2.0 * margin) / 2.0 - 1.0
    if limit <= 1.0:
        raise ReproError(
            f"frame {shape} too small for particles with margin {margin}"
        )
    r_lo = min(radius_range[0], limit)
    r_hi = max(r_lo, min(radius_range[1], limit))
    particles = []
    for _ in range(n):
        r = float(rng.uniform(r_lo, r_hi))
        particles.append(
            Particle(
                row=float(rng.uniform(margin + r, h - margin - r)),
                col=float(rng.uniform(margin + r, w - margin - r)),
                radius=r,
                element=element,
            )
        )
    return particles


def polyamide_film_phantom(
    shape: tuple[int, int] = (256, 256),
    rng: "np.random.Generator | None" = None,
    n_gold: int = 12,
    n_lead: int = 6,
) -> tuple[dict[str, np.ndarray], list[Particle]]:
    """Composition maps + particles for the polyamide heavy-metal sample.

    The film is a C/N/O matrix whose local thickness follows a smooth
    ridge-and-valley texture; Au and Pb decorate it as captured species.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    h, w = shape
    if h < 16 or w < 16:
        raise ReproError(f"phantom too small: {shape}")

    # Ridge-and-valley film thickness: sum of low-frequency cosines with
    # random phase, normalized to [0.4, 1].
    rr = np.arange(h)[:, None] / h
    cc = np.arange(w)[None, :] / w
    tex = np.zeros(shape, dtype=np.float64)
    for _ in range(6):
        fr, fc = rng.uniform(1, 5, size=2)
        ph_r, ph_c = rng.uniform(0, 2 * np.pi, size=2)
        tex += rng.uniform(0.4, 1.0) * np.cos(2 * np.pi * fr * rr + ph_r) * np.cos(
            2 * np.pi * fc * cc + ph_c
        )
    tex = (tex - tex.min()) / (tex.max() - tex.min() + 1e-12)
    thickness = 0.4 + 0.6 * tex

    # Polyamide stoichiometry (C6H11NO): relative C:N:O mass weights.
    comp = {
        "C": 0.62 * thickness,
        "N": 0.12 * thickness,
        "O": 0.26 * thickness,
    }

    particles = _place_particles(shape, n_gold, rng, (3.0, 8.0), 8.0, "Au")
    particles += _place_particles(shape, n_lead, rng, (2.0, 6.0), 8.0, "Pb")
    comp["Au"] = 2.0 * particle_mask(shape, [p for p in particles if p.element == "Au"])
    comp["Pb"] = 1.5 * particle_mask(shape, [p for p in particles if p.element == "Pb"])
    return comp, particles


def gold_on_carbon_phantom(
    shape: tuple[int, int] = (640, 640),
    rng: "np.random.Generator | None" = None,
    n_gold: int = 25,
    radius_range: tuple[float, float] = (6.0, 16.0),
) -> tuple[dict[str, np.ndarray], list[Particle]]:
    """Gold nanoparticles on an amorphous carbon support film."""
    if rng is None:
        rng = np.random.default_rng(0)
    particles = _place_particles(shape, n_gold, rng, radius_range, 12.0, "Au")
    comp = {
        "C": np.full(shape, 0.5, dtype=np.float64),
        "Au": 3.0 * particle_mask(shape, particles),
    }
    return comp, particles
