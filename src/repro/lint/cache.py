"""Content-hash incremental cache for the analyzer.

Linting ``src/repro`` parses ~80 files and runs every rule over each;
on a warm tree almost none of that work is new.  The cache keys each
file on a SHA-256 of its source, so repeat runs re-analyze only files
whose bytes changed — *plus* one global **environment fingerprint**
covering everything that can change a file's findings without touching
its bytes: the enabled rule set and config, the provider-schema table,
and the interprocedural call-graph summaries.  Any fingerprint mismatch
drops the whole cache (correct by construction: a one-line edit in
``sim/core.py`` can legitimately create findings in ``chaos/``).

The on-disk format is one JSON document::

    {"version": 2,
     "fingerprint": "....",
     "files": {"src/repro/x.py": {"hash": "...", "diags": [...]}},
     "summaries": {"src/repro/x.py": {"hash": "...", "version": 1,
                                      "payload": {...}}}}

``summaries`` holds per-module **taint summaries** (the symbolic local
phase of :mod:`repro.lint.taint`).  Unlike findings, a summary depends
*only* on the file's bytes and the engine version — not on the rule set
or the rest of the project — so it deliberately survives
:meth:`LintCache.set_fingerprint` invalidation.  This breaks the
chicken-and-egg with the fingerprint itself: the fingerprint *includes*
the taint index (edits elsewhere can change this file's findings), but
recomputing that index on a warm tree costs zero re-analysis because
every unchanged module's summary is served from here.

Corrupt or version-skewed cache files are treated as empty, never as
errors — the cache is an accelerator, not a source of truth.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from .diagnostics import Diagnostic

__all__ = ["LintCache", "source_hash"]

CACHE_VERSION = 2
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def source_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class LintCache:
    """Per-file diagnostic cache with hit/miss accounting."""

    def __init__(self, path: str = DEFAULT_CACHE_PATH) -> None:
        self.path = path
        self._files: dict[str, dict] = {}
        self._summaries: dict[str, dict] = {}
        self._fingerprint: Optional[str] = None
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
            return
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files
            self._fingerprint = data.get("fingerprint")
        summaries = data.get("summaries")
        if isinstance(summaries, dict):
            self._summaries = summaries

    # -- lifecycle ------------------------------------------------------
    def set_fingerprint(self, fingerprint: str) -> None:
        """Declare this run's environment fingerprint; entries recorded
        under a different one are discarded wholesale."""
        if self._fingerprint != fingerprint:
            if self._files:
                self._dirty = True
            self._files = {}
            self._fingerprint = fingerprint

    def get(self, path: str, source: str) -> Optional[list[Diagnostic]]:
        """Cached diagnostics for ``path`` if its content is unchanged."""
        entry = self._files.get(os.path.abspath(path))
        if entry is not None and entry.get("hash") == source_hash(source):
            self.hits += 1
            try:
                return [Diagnostic.from_dict(d) for d in entry["diags"]]
            except (KeyError, ValueError, TypeError):
                pass  # malformed entry: fall through to a miss
        self.misses += 1
        return None

    def put(self, path: str, source: str, diags: list[Diagnostic]) -> None:
        self._files[os.path.abspath(path)] = {
            "hash": source_hash(source),
            "diags": [d.as_dict() for d in diags],
        }
        self._dirty = True

    # -- taint summaries -------------------------------------------------
    def get_summary(self, path: str, source: str) -> Optional[dict]:
        """Cached taint-summary payload for ``path`` if its content and
        the engine version both match (content hash only — see the
        module docstring for why the fingerprint is *not* involved)."""
        from .taint import TAINT_VERSION

        entry = self._summaries.get(os.path.abspath(path))
        if (
            entry is not None
            and entry.get("hash") == source_hash(source)
            and entry.get("version") == TAINT_VERSION
            and isinstance(entry.get("payload"), dict)
        ):
            return entry["payload"]
        return None

    def put_summary(self, path: str, source: str, payload: dict) -> None:
        from .taint import TAINT_VERSION

        self._summaries[os.path.abspath(path)] = {
            "hash": source_hash(source),
            "version": TAINT_VERSION,
            "payload": payload,
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "fingerprint": self._fingerprint,
            "files": self._files,
            "summaries": self._summaries,
        }
        tmp = f"{self.path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path)
        except OSError:
            try:  # best effort: never let cache IO fail a lint run
                os.unlink(tmp)
            except OSError:
                pass
        self._dirty = False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
