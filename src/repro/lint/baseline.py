"""Baseline ratchet: suppress *known* findings, fail on new ones.

Turning a new rule pack on over a mature tree surfaces pre-existing
findings that are real but not this week's work.  Bulk-``noqa``-ing
them would freeze them invisibly; the baseline instead records them in
a committed file and subtracts them from future runs **by count**: each
``path::rule`` key suppresses at most the recorded number of findings,
so fixing one lowers the debt and introducing one more fails the run.
That is the ratchet — the count can only go down.

Workflow::

    python -m repro lint src/repro --write-baseline LINT_BASELINE.json
    git add LINT_BASELINE.json
    # later runs:
    python -m repro lint src/repro --baseline LINT_BASELINE.json

Keys use the path's basename-anchored repo-relative suffix so the file
is stable across checkouts at different absolute paths.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional

from .diagnostics import Diagnostic

__all__ = ["Baseline", "baseline_key"]

BASELINE_VERSION = 1


def baseline_key(diag: Diagnostic) -> str:
    """``relative/posix/path.py::RULE`` — location-free on purpose, so
    unrelated edits that shift line numbers do not churn the file."""
    path = diag.path.replace(os.sep, "/")
    # anchor at the package root when present, else use the basename
    marker = "/repro/"
    idx = path.rfind(marker)
    if idx >= 0:
        path = "repro/" + path[idx + len(marker):]
    else:
        path = path.rsplit("/", 1)[-1]
    return f"{path}::{diag.rule_id}"


class Baseline:
    """A recorded finding census and its subtraction logic."""

    def __init__(self, findings: Optional[dict[str, int]] = None) -> None:
        self.findings: dict[str, int] = dict(findings or {})

    # -- persistence ----------------------------------------------------
    @classmethod
    def record(cls, diagnostics: Iterable[Diagnostic]) -> "Baseline":
        counts: dict[str, int] = {}
        for d in diagnostics:
            key = baseline_key(d)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ValueError(f"not a lint baseline file: {path}")
        findings = data.get("findings", {})
        return cls({str(k): int(v) for k, v in findings.items()})

    def save(self, path: str) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": dict(sorted(self.findings.items())),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # -- application ----------------------------------------------------
    def apply(
        self, diagnostics: Iterable[Diagnostic]
    ) -> tuple[list[Diagnostic], int]:
        """Subtract baselined findings; returns ``(surviving findings,
        number suppressed)``.  Within one key, earlier (lower-line)
        findings are suppressed first — deterministic either way, and
        new findings in an already-baselined file still surface once the
        recorded budget is spent."""
        budget = dict(self.findings)
        kept: list[Diagnostic] = []
        suppressed = 0
        for d in sorted(diagnostics):
            key = baseline_key(d)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                suppressed += 1
            else:
                kept.append(d)
        return kept, suppressed
