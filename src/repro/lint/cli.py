"""``python -m repro lint`` — the command-line surface.

Examples
--------
::

    python -m repro lint src/repro                 # text report, exit 1 on errors
    python -m repro lint src/repro --format json   # machine-readable findings
    python -m repro lint --format sarif --output lint.sarif   # CI annotations
    python -m repro lint --fail-on warn            # strict: warnings also fail
    python -m repro lint --select D101,D102 path/  # run a subset of rules
    python -m repro lint --list-rules              # print the catalog
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Iterable, Optional

from .analyzer import Analyzer, all_rules
from .config import LintConfig
from .diagnostics import Diagnostic, Severity, sarif_report

__all__ = ["add_lint_arguments", "render_report", "run_lint", "main"]


def _default_target() -> str:
    """The installed ``repro`` package directory."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text", dest="fmt"
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this path instead of stdout",
    )
    parser.add_argument(
        "--fail-on",
        choices=["warn", "error"],
        default="error",
        help="lowest severity that causes a nonzero exit (default: error)",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule ids to run exclusively (e.g. D101,S202)",
    )
    parser.add_argument(
        "--ignore", default="", help="comma-separated rule ids to disable"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )


def _parse_ids(text: str) -> frozenset[str]:
    return frozenset(x.strip().upper() for x in text.split(",") if x.strip())


def render_report(
    diagnostics: Iterable[Diagnostic],
    fmt: str,
    n_paths: int = 1,
    tool_name: str = "repro.lint",
) -> str:
    """Render a finding list in one of the CLI's formats (shared with
    ``python -m repro sanitize``)."""
    diags = sorted(diagnostics)
    if fmt == "json":
        return json.dumps([d.as_dict() for d in diags], indent=2)
    if fmt == "sarif":
        summaries = {rid: cls.summary for rid, cls in all_rules().items()}
        return json.dumps(sarif_report(diags, summaries, tool_name=tool_name), indent=2)
    lines = [d.format() for d in diags]
    n_err = sum(1 for d in diags if d.severity >= Severity.ERROR)
    n_warn = len(diags) - n_err
    lines.append(
        f"{len(diags)} finding(s): {n_err} error(s), "
        f"{n_warn} warning(s) in {n_paths} path(s)"
    )
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    catalog = all_rules()
    if args.list_rules:
        for rid in sorted(catalog):
            cls = catalog[rid]
            print(f"{rid}  [{cls.severity}]  {cls.summary}")
        return 0
    for rid in _parse_ids(args.select) | _parse_ids(args.ignore):
        if rid not in catalog:
            print(f"unknown rule id: {rid} (try --list-rules)")
            return 2
    config = LintConfig(select=_parse_ids(args.select), ignore=_parse_ids(args.ignore))
    analyzer = Analyzer(config=config)
    paths = args.paths or [_default_target()]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no such file or directory: {missing[0]}")
        return 2
    diagnostics = analyzer.lint_paths(paths)

    report = render_report(diagnostics, args.fmt, n_paths=len(paths))
    output = getattr(args, "output", None)
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"wrote {len(diagnostics)} finding(s) to {output}")
    else:
        print(report)

    threshold = Severity.parse(args.fail_on)
    return 1 if any(d.severity >= threshold for d in diagnostics) else 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="determinism & flow-safety static analyzer",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - `python -m repro.lint.cli`
    import sys

    sys.exit(main())
