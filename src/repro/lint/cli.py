"""``python -m repro lint`` — the command-line surface.

Examples
--------
::

    python -m repro lint src/repro                 # text report, exit 1 on errors
    python -m repro lint src/repro --format json   # machine-readable findings
    python -m repro lint --format sarif --output lint.sarif   # CI annotations
    python -m repro lint --fail-on warn            # strict: warnings also fail
    python -m repro lint --select D101,D102 path/  # run a subset of rules
    python -m repro lint --list-rules              # print the catalog
    python -m repro lint --explain N701            # docs + bad/good example
    python -m repro lint src/repro --statistics    # per-rule counts, cache rate
    python -m repro lint --changed-only            # only files changed in git
    python -m repro lint --write-baseline          # ratchet: record current debt
    python -m repro lint --baseline LINT_BASELINE.json   # report only new findings

Repeated runs are incremental by default: per-file findings are cached
in ``.repro-lint-cache.json`` keyed by content hash, and invalidated
wholesale when the rule set, config, or interprocedural facts change.
``--no-cache`` forces a cold run.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import time
from typing import Iterable, Optional

from .analyzer import Analyzer, all_rules
from .baseline import Baseline
from .cache import LintCache
from .config import LintConfig
from .diagnostics import Diagnostic, Severity, sarif_report

__all__ = ["add_lint_arguments", "render_report", "run_lint", "main"]

DEFAULT_CACHE_PATH = ".repro-lint-cache.json"
DEFAULT_BASELINE_PATH = "LINT_BASELINE.json"


def _default_target() -> str:
    """The installed ``repro`` package directory."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text", dest="fmt"
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this path instead of stdout",
    )
    parser.add_argument(
        "--fail-on",
        choices=["warn", "error"],
        default="error",
        help="lowest severity that causes a nonzero exit (default: error)",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule ids to run exclusively (e.g. D101,S202)",
    )
    parser.add_argument(
        "--ignore", default="", help="comma-separated rule ids to disable"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print a rule's documentation, severity, and a minimal "
        "bad/good example pair, then exit",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE_PATH,
        help=f"incremental cache file (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files changed vs. git HEAD (plus untracked files)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="suppress findings recorded in this baseline file "
        "(ratchet mode: only new findings are reported)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the baseline and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="also report per-rule counts, files analyzed, cache hit "
        "rate, and wall time",
    )


def _parse_ids(text: str) -> frozenset[str]:
    return frozenset(x.strip().upper() for x in text.split(",") if x.strip())


def _expand_py_files(paths: Iterable[str]) -> list[str]:
    """Flatten directories into their ``.py`` files, sorted walk order
    (mirrors :meth:`Analyzer.lint_paths`)."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            files.append(path)
    return files


def _git_changed_files() -> Optional[set[str]]:
    """Absolute paths of files modified vs. HEAD plus untracked files;
    ``None`` when git is unavailable or this is not a work tree."""
    out: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        for line in proc.stdout.splitlines():
            line = line.strip()
            if line:
                out.add(os.path.abspath(line))
    return out


def render_report(
    diagnostics: Iterable[Diagnostic],
    fmt: str,
    n_paths: int = 1,
    tool_name: str = "repro.lint",
    statistics: Optional[dict] = None,
) -> str:
    """Render a finding list in one of the CLI's formats (shared with
    ``python -m repro sanitize``).

    Without ``statistics`` the json payload is a plain findings list —
    the stable machine interface; passing ``statistics`` switches json
    to a ``{"findings": ..., "statistics": ...}`` envelope and appends
    a summary block to the text format.
    """
    diags = sorted(diagnostics)
    if fmt == "json":
        findings = [d.as_dict() for d in diags]
        if statistics is not None:
            return json.dumps(
                {"findings": findings, "statistics": statistics}, indent=2
            )
        return json.dumps(findings, indent=2)
    if fmt == "sarif":
        summaries = {rid: cls.summary for rid, cls in all_rules().items()}
        return json.dumps(sarif_report(diags, summaries, tool_name=tool_name), indent=2)
    lines = [d.format() for d in diags]
    n_err = sum(1 for d in diags if d.severity >= Severity.ERROR)
    n_warn = len(diags) - n_err
    lines.append(
        f"{len(diags)} finding(s): {n_err} error(s), "
        f"{n_warn} warning(s) in {n_paths} path(s)"
    )
    if statistics is not None:
        lines.append("-- statistics --")
        lines.append(f"files analyzed:     {statistics['files_analyzed']}")
        lines.append(f"files from cache:   {statistics['files_cached']}")
        lines.append(f"cache hit rate:     {statistics['cache_hit_rate']:.1%}")
        if statistics.get("suppressed_by_baseline"):
            lines.append(
                f"baseline-suppressed: {statistics['suppressed_by_baseline']}"
            )
        lines.append(f"wall time:          {statistics['wall_time_s']:.3f}s")
        for rid in sorted(statistics["rule_counts"]):
            lines.append(f"  {rid}: {statistics['rule_counts'][rid]}")
    return "\n".join(lines)


def _explain_rule(catalog: dict, rule_id: str) -> int:
    """Print one rule's documentation and its bad/good example pair
    (the same sources the test suite pins — the bad twin must fire,
    the good twin must stay silent)."""
    rid = rule_id.strip().upper()
    cls = catalog.get(rid)
    if cls is None:
        print(f"unknown rule id: {rid} (try --list-rules)")
        return 2
    lines = [f"{rid}  [{cls.severity}]  {cls.summary}", ""]
    doc = (cls.__doc__ or "").strip("\n")
    if doc:
        import textwrap

        lines.append(textwrap.dedent(" " * 4 + doc).strip())
        lines.append("")
    bad = getattr(cls, "example_bad", None)
    good = getattr(cls, "example_good", None)
    if bad:
        lines.append("bad:")
        lines.extend("    " + ln for ln in bad.rstrip("\n").splitlines())
    if good:
        lines.append("good:")
        lines.extend("    " + ln for ln in good.rstrip("\n").splitlines())
    if not bad and not good:
        lines.append("(no example pair recorded for this rule)")
    print("\n".join(lines).rstrip())
    return 0


def run_lint(args: argparse.Namespace) -> int:
    t0 = time.perf_counter()  # repro: noqa[D101]  CLI wall-time report
    catalog = all_rules()
    if args.list_rules:
        for rid in sorted(catalog):
            cls = catalog[rid]
            print(f"{rid}  [{cls.severity}]  {cls.summary}")
        return 0
    if getattr(args, "explain", None):
        return _explain_rule(catalog, args.explain)
    for rid in _parse_ids(args.select) | _parse_ids(args.ignore):
        if rid not in catalog:
            print(f"unknown rule id: {rid} (try --list-rules)")
            return 2
    config = LintConfig(select=_parse_ids(args.select), ignore=_parse_ids(args.ignore))
    analyzer = Analyzer(config=config)
    paths = args.paths or [_default_target()]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no such file or directory: {missing[0]}")
        return 2

    if getattr(args, "changed_only", False):
        changed = _git_changed_files()
        if changed is None:
            print("--changed-only requires a git work tree")
            return 2
        paths = [
            f
            for f in _expand_py_files(paths)
            if os.path.abspath(f) in changed
        ]

    cache: Optional[LintCache] = None
    if not getattr(args, "no_cache", False):
        cache = LintCache(getattr(args, "cache", DEFAULT_CACHE_PATH))
    diagnostics = analyzer.lint_paths(paths, cache=cache)
    if cache is not None:
        cache.save()

    baseline_path = getattr(args, "baseline", None)
    if getattr(args, "write_baseline", False):
        path = baseline_path or DEFAULT_BASELINE_PATH
        Baseline.record(diagnostics).save(path)
        print(f"wrote baseline with {len(diagnostics)} finding(s) to {path}")
        return 0
    suppressed_count = 0
    if baseline_path is not None:
        if not os.path.exists(baseline_path):
            print(f"no such baseline file: {baseline_path}")
            return 2
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"cannot read baseline {baseline_path}: {exc}")
            return 2
        diagnostics, suppressed_count = baseline.apply(diagnostics)

    statistics = None
    if getattr(args, "statistics", False):
        statistics = analyzer.stats.as_dict()
        statistics["suppressed_by_baseline"] = suppressed_count
        statistics["wall_time_s"] = time.perf_counter() - t0  # repro: noqa[D101]

    report = render_report(
        diagnostics, args.fmt, n_paths=len(paths), statistics=statistics
    )
    output = getattr(args, "output", None)
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"wrote {len(diagnostics)} finding(s) to {output}")
    else:
        print(report)

    threshold = Severity.parse(args.fail_on)
    return 1 if any(d.severity >= threshold for d in diagnostics) else 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="determinism & flow-safety static analyzer",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - `python -m repro.lint.cli`
    import sys

    sys.exit(main())
