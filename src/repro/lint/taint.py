"""Interprocedural order/host taint engine — the N7xx substrate.

Every perf gate in this repo rests on bit-identical traces, and the
hazards that break them are *flow* hazards: an unsorted ``listdir``
result travels through three helpers before its order decides an
``env.schedule`` delay; a wall-clock read in an allow-listed file leaks
into a sim input through a return value.  The D1xx rules only see the
call site; this module sees the flow.  It is a forward taint analysis
layered on the PR-6 engine: per-function dataflow over the CFG
(:mod:`repro.lint.cfg`), joined across functions through summaries
resolved with the same one-scan/fixpoint pattern as
:mod:`repro.lint.callgraph`.

Taint kinds
-----------
``order``
    The value's *arrangement* depends on hash order, directory order, or
    completion order: iterating a ``set``, ``os.listdir``/``glob``/
    ``Path.iterdir`` results, ``as_completed``/``imap_unordered``
    streams, or an *unstable dict attribute* (a ``self.<attr>`` dict the
    module also ``del``s / ``pop``s from — its insertion order encodes
    mutation history, not content).
``host``
    Derived from the wall clock or the process environment
    (``time.time``, ``os.getenv``, ``os.environ[...]``): varies across
    hosts and runs, so a seed no longer pins behaviour.
``ident``
    Derived from ``id()`` / ``hash()``: object addresses and salted
    hashes change every process.

Two internal markers refine ``order``: ``uset`` tags a value that *is*
an unordered container (a set — deterministic content, arbitrary
iteration order; converting to a sequence or iterating degrades it to
``order``), and ``completion`` tags parallel completion-order streams
(so N702 can distinguish them from plain unordered data).

Sanitizers: ``sorted(...)`` (without an identity key), ``.sort()``,
``min``/``max``/``len`` (content-deterministic reductions), and
``math.fsum`` (exactly rounded, therefore order-independent) clear the
order-family kinds.  ``sum`` does **not**: float addition is
non-associative, so a ``sum`` over an order-tainted iterable is itself
recorded as an accumulation hazard (N703).

Sinks
-----
``schedule``   ``env.schedule(ev, delay, priority)`` / ``env.timeout``
               delays / ``env.process`` arguments — values that steer
               the DES kernel.
``tiebreak``   ``key=`` of ``sorted``/``.sort()``/``min``/``max``.
``emit``       metric/trace emission — ``.observe/.inc/.add/.set`` on a
               receiver whose name looks like an instrument or span.
``accum``      float accumulation (``sum(...)`` or ``+=`` in a loop)
               over an order-tainted iterable.
``merge``      a completion-order loop with no ordering barrier (the
               :mod:`repro.core.sweep` ordered-merge idiom — keyed
               stores or a post-loop sort — is the blessed pattern).

Interprocedural model
---------------------
:func:`analyze_module` runs once per module and is **purely local** —
call results become symbolic ``("call", key, ...)`` tokens and
parameters become ``p:<i>`` markers — so its result is cacheable by
content hash alone (the incremental cache stores it; unchanged files
recompute nothing).  :func:`build_taint_index` then resolves the
symbolic layer globally: a RET fixpoint (which kinds/params reach each
function's return) and a SINKPARAM fixpoint (which parameters flow into
which sinks, transitively), producing concrete
:class:`TaintFinding`s — including call-site findings where a caller
hands a tainted value to a helper that launders it into a sink.

Approximations (deliberate, documented): only local names and
``self.<attr>`` within one function are tracked; lambdas are opaque;
call tokens are depth-capped (deeper nests degrade to the union of
their argument taints); handler dispatch and joins are may-analysis
(union), so the engine over- rather than under-reports, with
``# repro: noqa[N70x]`` as the reviewed escape hatch.
"""

from __future__ import annotations

import ast
import hashlib
import json
from typing import Any, Iterable, Mapping, Optional

from .cfg import build_cfg
from .resolver import ImportResolver
from .rules.determinism import WALL_CLOCK_CALLS

__all__ = [
    "TAINT_VERSION",
    "KINDS",
    "FnTaint",
    "ModuleTaint",
    "TaintFinding",
    "TaintIndex",
    "analyze_module",
    "build_taint_index",
]

#: Bumped whenever the engine's semantics change: cached per-module
#: summaries recorded under another version are recomputed.
TAINT_VERSION = 1

#: The reportable taint kinds (internal markers normalize into these).
KINDS = frozenset({"order", "host", "ident"})

#: order-family tokens: any of these makes a value order-hazardous.
_ORDERISH = frozenset({"order", "uset", "completion"})

#: Canonical callee names that return directory/glob listings in
#: filesystem order.
_LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Attribute-call tails that return unordered/filesystem-ordered streams
#: even when the receiver cannot be resolved (pathlib.Path and friends).
_LISTING_ATTRS = frozenset({"iterdir", "rglob", "scandir"})

#: Completion-order sources (the N702 family).
_COMPLETION_CALLS = frozenset({"concurrent.futures.as_completed"})
_COMPLETION_ATTRS = frozenset({"as_completed", "imap_unordered"})

#: Environment-variable reads (host taint, same catalog as D105).
_ENV_READS = frozenset({"os.getenv", "os.environ.get"})

#: Receiver-name fragments that mark ``.observe/.inc/.add/.set`` calls
#: as metric/trace emission rather than generic container mutation.
_EMIT_RECEIVERS = ("span", "tracer", "trace", "metric", "gauge",
                   "hist", "counter", "stat")
_EMIT_ATTRS = frozenset({"observe", "inc", "add", "set"})

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


# ---------------------------------------------------------------------------
# tokens
#
# A taint value is a frozenset of tokens:
#   "order" | "host" | "ident" | "uset" | "completion"   concrete kinds
#   "p:<i>"                                              parameter marker
#   ("call", key, bound, (argtoks...), ((kw, toks)...))  symbolic call result
# ---------------------------------------------------------------------------

_EMPTY: frozenset = frozenset()
_MAX_CALL_DEPTH = 2


def _param_token(i: int) -> str:
    return f"p:{i}"


def _call_depth(tok: Any) -> int:
    if not isinstance(tok, tuple):
        return 0
    depth = 0
    for toks in tok[3] + tuple(t for _n, t in tok[4]):
        for sub in toks:
            depth = max(depth, _call_depth(sub))
    return depth + 1


def _make_call_token(
    key: str,
    bound: bool,
    args: "tuple[frozenset, ...]",
    kwargs: "tuple[tuple[str, frozenset], ...]",
) -> frozenset:
    """A call-result token set; degrades to the union of the argument
    taints when nesting would exceed the depth cap (loops like
    ``x = f(x)`` otherwise grow tokens without bound)."""
    tok = ("call", key, bound, args, kwargs)
    if _call_depth(tok) > _MAX_CALL_DEPTH:
        out: set = set()
        for toks in args + tuple(t for _n, t in kwargs):
            out |= toks
        return frozenset(out)
    return frozenset({tok})


def _seq_of(tokens: frozenset) -> frozenset:
    """The taint of a *sequence built from* ``tokens``: materializing an
    unordered container fixes an arbitrary order into the result."""
    if tokens & _ORDERISH:
        return (tokens - {"uset"}) | {"order"}
    return tokens


def _sanitize_order(tokens: frozenset) -> frozenset:
    return tokens - _ORDERISH


def normalize_kinds(tokens: Iterable[Any]) -> frozenset:
    """Collapse internal markers onto the three reportable kinds."""
    out: set = set()
    for tok in tokens:
        if tok in ("uset", "completion"):
            out.add("order")
        elif tok in KINDS:
            out.add(tok)
    return frozenset(out)


# ---------------------------------------------------------------------------
# per-function symbolic results
# ---------------------------------------------------------------------------


class FnTaint:
    """One function's local taint facts, with calls left symbolic."""

    __slots__ = ("qualname", "name", "params", "ret_tokens", "sink_hits",
                 "calls", "merges")

    def __init__(self, qualname: str, name: str, params: tuple) -> None:
        self.qualname = qualname
        self.name = name
        self.params = params
        #: tokens reaching any ``return`` expression
        self.ret_tokens: frozenset = _EMPTY
        #: (line, col, sink, tokens) — tainted values at local sinks
        self.sink_hits: list = []
        #: (line, col, key, bound, argtoks, kwargtoks) — resolved-callee
        #: call sites (for arg→callee-sink propagation)
        self.calls: list = []
        #: (line, col, has_barrier) — completion-order merge loops
        self.merges: list = []


class ModuleTaint:
    """Per-module symbolic taint results (the cacheable unit)."""

    __slots__ = ("path", "module", "functions")

    def __init__(self, path: str, module: Optional[str]) -> None:
        self.path = path
        self.module = module
        self.functions: dict[str, FnTaint] = {}

    # -- cache (de)serialization ----------------------------------------
    def to_payload(self) -> dict:
        return {
            "module": self.module,
            "functions": {
                q: {
                    "name": fn.name,
                    "params": list(fn.params),
                    "ret": _dump_tokens(fn.ret_tokens),
                    "sinks": [
                        [ln, col, sink, _dump_tokens(toks)]
                        for ln, col, sink, toks in fn.sink_hits
                    ],
                    "calls": [
                        [
                            ln,
                            col,
                            key,
                            bound,
                            [_dump_tokens(a) for a in args],
                            {n: _dump_tokens(t) for n, t in kwargs},
                        ]
                        for ln, col, key, bound, args, kwargs in fn.calls
                    ],
                    "merges": [list(m) for m in fn.merges],
                }
                for q, fn in sorted(self.functions.items())
            },
        }

    @classmethod
    def from_payload(cls, path: str, data: Mapping) -> "ModuleTaint":
        mt = cls(path, data.get("module"))
        for q, fd in data.get("functions", {}).items():
            fn = FnTaint(q, fd["name"], tuple(fd["params"]))
            fn.ret_tokens = _load_tokens(fd["ret"])
            fn.sink_hits = [
                (ln, col, sink, _load_tokens(toks))
                for ln, col, sink, toks in fd["sinks"]
            ]
            fn.calls = [
                (
                    ln,
                    col,
                    key,
                    bound,
                    tuple(_load_tokens(a) for a in args),
                    tuple(sorted((n, _load_tokens(t)) for n, t in kwargs.items())),
                )
                for ln, col, key, bound, args, kwargs in fd["calls"]
            ]
            fn.merges = [tuple(m) for m in fd["merges"]]
            mt.functions[q] = fn
        return mt


def _dump_tokens(tokens: frozenset) -> list:
    out = []
    for tok in tokens:
        if isinstance(tok, tuple):
            out.append(
                {
                    "c": tok[1],
                    "b": tok[2],
                    "a": [_dump_tokens(a) for a in tok[3]],
                    "k": {n: _dump_tokens(t) for n, t in tok[4]},
                }
            )
        else:
            out.append(tok)
    return sorted(out, key=repr)


def _load_tokens(data: Iterable) -> frozenset:
    out: set = set()
    for tok in data:
        if isinstance(tok, dict):
            out.add(
                (
                    "call",
                    tok["c"],
                    tok["b"],
                    tuple(_load_tokens(a) for a in tok["a"]),
                    tuple(sorted((n, _load_tokens(t)) for n, t in tok["k"].items())),
                )
            )
        else:
            out.add(tok)
    return frozenset(out)


# ---------------------------------------------------------------------------
# intra-function analysis
# ---------------------------------------------------------------------------


def _is_env_receiver(node: ast.AST) -> bool:
    """``env`` / ``self.env`` / ``self._env`` — the DES environment by
    the same strong convention the R5xx pack relies on."""
    return (isinstance(node, ast.Name) and node.id in ("env", "_env")) or (
        isinstance(node, ast.Attribute) and node.attr in ("env", "_env")
    )


def _self_attr_name(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _receiver_names(node: ast.AST) -> str:
    """Lower-cased dotted description of an attribute chain's names —
    the emit-sink receiver heuristic matches fragments against it."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(_receiver_names(node.func))
    return ".".join(reversed(parts)).lower()


def _unstable_dict_attrs(tree: ast.Module) -> frozenset[str]:
    """``self.<attr>`` names the module ``del``s or ``.pop()``s from.

    A dict attribute that only ever grows iterates in insertion order —
    deterministic under a fixed op sequence.  One with deletions
    iterates in *mutation-history* order: two directories with identical
    contents can list differently, which is exactly the replay hazard.
    """
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = _self_attr_name(target.value)
                    if attr is not None:
                        out.add(attr)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ("pop", "popitem"):
                attr = _self_attr_name(func.value)
                if attr is not None:
                    out.add(attr)
    return frozenset(out)


class _Intra:
    """Forward may-taint dataflow over one function's CFG."""

    def __init__(
        self,
        fn: ast.AST,
        qualname: str,
        resolver: ImportResolver,
        module: str,
        unstable_attrs: frozenset[str],
    ) -> None:
        self.fn = fn
        self.resolver = resolver
        self.module = module
        self.unstable_attrs = unstable_attrs
        args = fn.args
        self.params = tuple(
            p.arg for p in list(args.posonlyargs) + list(args.args)
        )
        self.out = FnTaint(qualname, fn.name, self.params)
        self.cfg = build_cfg(fn)

    # -- expression evaluation ------------------------------------------
    def eval(self, node: Optional[ast.AST], state: dict) -> frozenset:
        if node is None:
            return _EMPTY
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node, state)
        # default: union over child expressions (BinOp, BoolOp, Compare,
        # IfExp, UnaryOp, Starred, FormattedValue, JoinedStr, Await, ...)
        out: set = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword)):
                value = child.value if isinstance(child, ast.keyword) else child
                out |= self.eval(value, state)
        return frozenset(out)

    def _eval_Name(self, node: ast.Name, state: dict) -> frozenset:
        return state.get(node.id, _EMPTY)

    def _eval_Constant(self, node: ast.Constant, state: dict) -> frozenset:
        return _EMPTY

    def _eval_Lambda(self, node: ast.Lambda, state: dict) -> frozenset:
        return _EMPTY  # opaque: its body runs elsewhere

    def _eval_Attribute(self, node: ast.Attribute, state: dict) -> frozenset:
        attr = _self_attr_name(node)
        if attr is not None:
            return state.get(f"self.{attr}", _EMPTY)
        return self.eval(node.value, state)

    def _eval_Subscript(self, node: ast.Subscript, state: dict) -> frozenset:
        return self.eval(node.value, state) | self.eval(node.slice, state)

    def _eval_Set(self, node: ast.Set, state: dict) -> frozenset:
        out: set = {"uset"}
        for elt in node.elts:
            out |= self.eval(elt, state)
        return frozenset(out)

    def _eval_SetComp(self, node: ast.SetComp, state: dict) -> frozenset:
        return self._eval_comp(node, [node.elt], state) | {"uset"}

    def _eval_ListComp(self, node: ast.ListComp, state: dict) -> frozenset:
        return self._eval_comp(node, [node.elt], state)

    def _eval_GeneratorExp(self, node: ast.GeneratorExp, state: dict) -> frozenset:
        return self._eval_comp(node, [node.elt], state)

    def _eval_DictComp(self, node: ast.DictComp, state: dict) -> frozenset:
        return self._eval_comp(node, [node.key, node.value], state)

    def _eval_comp(
        self, node: ast.AST, results: list, state: dict
    ) -> frozenset:
        """Comprehensions: bind each target from its (element-tainted)
        iterable, then evaluate the result expression(s).  The produced
        sequence inherits ``order`` when any generator is order-ish."""
        ext = dict(state)
        seq_taint: set = set()
        for gen in node.generators:
            it = self.eval(gen.iter, ext)
            elem = _seq_of(it) - {"uset"} if it & _ORDERISH else it
            if it & _ORDERISH:
                seq_taint.add("order")
                if "completion" in it:
                    seq_taint.add("completion")
            self._bind(gen.target, elem, ext)
            for cond in gen.ifs:
                self.eval(cond, ext)  # conditions don't taint the result
        out: set = set(seq_taint)
        for res in results:
            out |= self.eval(res, ext)
        return frozenset(out)

    def _eval_Call(self, node: ast.Call, state: dict) -> frozenset:
        func = node.func
        resolved = self.resolver.resolve(func)
        arg_union: set = set()
        for a in node.args:
            arg_union |= self.eval(a, state)
        for kw in node.keywords:
            arg_union |= self.eval(kw.value, state)

        # -- sources ----------------------------------------------------
        if resolved in WALL_CLOCK_CALLS or resolved in _ENV_READS:
            return frozenset({"host"})
        if resolved in _LISTING_CALLS:
            return frozenset({"order"})
        if resolved in _COMPLETION_CALLS:
            return frozenset({"completion", "order"}) | frozenset(arg_union)
        if isinstance(func, ast.Name) and func.id not in self.resolver.aliases:
            name = func.id
            if name in ("id", "hash"):
                return frozenset({"ident"})
            if name in ("set", "frozenset"):
                return frozenset({"uset"}) | _sanitize_order(frozenset(arg_union))
            if name == "sorted":
                return self._eval_sorted(node, state)
            if name in ("min", "max", "len", "any", "all"):
                return _sanitize_order(frozenset(arg_union))
            if name == "sum":
                return self._eval_sum(node, frozenset(arg_union))
            if name in ("list", "tuple", "iter", "reversed", "enumerate"):
                return _seq_of(frozenset(arg_union))
            if name == "dict":
                return frozenset(arg_union)
        if resolved == "math.fsum":
            # exactly-rounded: the one order-independent float reduction
            return _sanitize_order(frozenset(arg_union))
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _LISTING_ATTRS or (
                attr == "glob" and resolved not in self.resolver.aliases
            ):
                return frozenset({"order"})
            if attr in _COMPLETION_ATTRS:
                return frozenset({"completion", "order"}) | frozenset(arg_union)
            if attr in ("keys", "values", "items"):
                owner = _self_attr_name(func.value)
                base = self.eval(func.value, state)
                if owner is not None and owner in self.unstable_attrs:
                    return frozenset({"order"}) | base
                return base
            if attr == "sort":
                return _EMPTY  # handled as a statement-level sanitizer

        # -- known project callee: leave symbolic -----------------------
        key = self._callee_key(func, resolved)
        if key is not None:
            args = tuple(self.eval(a, state) for a in node.args)
            kwargs = tuple(
                sorted(
                    (kw.arg, self.eval(kw.value, state))
                    for kw in node.keywords
                    if kw.arg is not None
                )
            )
            return _make_call_token(key, isinstance(func, ast.Attribute), args, kwargs)

        # -- unknown callee: conservative pass-through -------------------
        recv = (
            self.eval(func.value, state)
            if isinstance(func, ast.Attribute)
            else _EMPTY
        )
        return frozenset(arg_union) | recv

    def _eval_sorted(self, node: ast.Call, state: dict) -> frozenset:
        toks = _sanitize_order(
            self.eval(node.args[0], state) if node.args else _EMPTY
        )
        for kw in node.keywords:
            if kw.arg == "key":
                if isinstance(kw.value, ast.Name) and kw.value.id in ("id", "hash"):
                    toks = toks | {"ident"}
                else:
                    toks = toks | self.eval(kw.value, state)
        return toks

    def _eval_sum(self, node: ast.Call, arg_union: frozenset) -> frozenset:
        if arg_union & _ORDERISH:
            self._hit(node, "accum", arg_union)
        return _seq_of(arg_union) - {"uset"}

    def _callee_key(
        self, func: ast.AST, resolved: Optional[str]
    ) -> Optional[str]:
        """The summary-lookup key for a project call, mirroring the
        call-graph's resolution (dotted name, else bare tail)."""
        if resolved is not None:
            return resolved
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return f"{self.module}.{func.id}"
        return None

    # -- statements ------------------------------------------------------
    def _bind(self, target: ast.AST, tokens: frozenset, state: dict) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = tokens
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tokens, state)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tokens, state)
        elif isinstance(target, ast.Attribute):
            attr = _self_attr_name(target)
            if attr is not None:
                state[f"self.{attr}"] = tokens
        elif isinstance(target, ast.Subscript):
            # keyed store: the ordered-merge barrier — content taints
            # survive, arrival-order taints do not.
            root = target.value
            if isinstance(root, ast.Name):
                state[root.id] = state.get(root.id, _EMPTY) | (
                    tokens - {"order", "completion"}
                )

    def _elem_of(self, it: frozenset) -> frozenset:
        return _seq_of(it) - {"uset"} if it & _ORDERISH else it

    def transfer(self, block, state: dict) -> dict:
        """OUT state of a block given its IN state (one simple stmt)."""
        stmt = block.stmt
        state = dict(state)
        if isinstance(stmt, ast.Assign):
            tokens = self.eval(stmt.value, state)
            for target in stmt.targets:
                self._bind(target, tokens, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self.eval(stmt.value, state), state)
        elif isinstance(stmt, ast.AugAssign):
            tokens = self.eval(stmt.value, state)
            if isinstance(stmt.target, ast.Name):
                old = state.get(stmt.target.id, _EMPTY)
                self._bind(stmt.target, old | tokens, state)
            else:
                self._bind(stmt.target, tokens, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)) and block.kind == "stmt":
            if block.nodes and block.nodes[0] is stmt.iter:
                it = self.eval(stmt.iter, state)
                self._bind(stmt.target, self._elem_of(it), state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)) and block.kind == "stmt":
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(
                        item.optional_vars,
                        self.eval(item.context_expr, state),
                        state,
                    )
        elif isinstance(stmt, ast.Expr):
            call = stmt.value
            # `x.sort()` sanitizes x in place
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "sort"
                and isinstance(call.func.value, ast.Name)
            ):
                var = call.func.value.id
                state[var] = _sanitize_order(state.get(var, _EMPTY))
        return state

    # -- fixpoint --------------------------------------------------------
    def run(self) -> FnTaint:
        entry_state = {p: frozenset({_param_token(i)}) for i, p in enumerate(self.params)}
        in_states: dict[int, dict] = {self.cfg.entry.bid: entry_state}
        out_states: dict[int, dict] = {}
        worklist = [self.cfg.entry]
        rounds = 0
        while worklist and rounds < 40 * max(1, len(self.cfg.blocks)):
            rounds += 1
            block = worklist.pop(0)
            state = in_states.get(block.bid, {})
            out = self.transfer(block, state)
            if out_states.get(block.bid) == out:
                continue
            out_states[block.bid] = out
            for dst, _kind in block.succ:
                merged = self._join(in_states.get(dst.bid), out)
                if merged != in_states.get(dst.bid):
                    in_states[dst.bid] = merged
                    if dst not in worklist:
                        worklist.append(dst)
        # final pass: evaluate sinks / returns / merges with stable states
        for block in self.cfg.blocks:
            state = in_states.get(block.bid)
            if state is None:
                continue
            self._collect(block, state)
        return self.out

    @staticmethod
    def _join(a: Optional[dict], b: dict) -> dict:
        if a is None:
            return dict(b)
        merged = dict(a)
        for var, toks in b.items():
            merged[var] = merged.get(var, _EMPTY) | toks
        return merged

    # -- collection ------------------------------------------------------
    def _hit(self, node: ast.AST, sink: str, tokens: frozenset) -> None:
        if not tokens:
            return
        entry = (
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            sink,
            tokens,
        )
        if entry not in self.out.sink_hits:
            self.out.sink_hits.append(entry)

    def _collect(self, block, state: dict) -> None:
        stmt = block.stmt
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self.out.ret_tokens = self.out.ret_tokens | self.eval(stmt.value, state)
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Add):
            tokens = self.eval(stmt.value, state)
            if tokens:
                self._hit(stmt, "accum", tokens)
        if (
            isinstance(stmt, (ast.For, ast.AsyncFor))
            and block.kind == "stmt"
            and block.nodes
            and block.nodes[0] is stmt.iter
        ):
            it = self.eval(stmt.iter, state)
            if "completion" in it:
                self.out.merges.append(
                    (stmt.lineno, stmt.col_offset, self._merge_barrier(stmt))
                )
        for node in block.walk_nodes():
            if isinstance(node, ast.Call):
                self._check_sinks(node, state)
                self._record_call(node, state)

    def _check_sinks(self, call: ast.Call, state: dict) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in ("schedule", "timeout", "process") and _is_env_receiver(
                func.value
            ):
                exprs: list = []
                if attr == "timeout":
                    exprs = call.args[:1]
                    exprs += [kw.value for kw in call.keywords if kw.arg == "delay"]
                elif attr == "schedule":
                    exprs = call.args[1:3]
                    exprs += [
                        kw.value
                        for kw in call.keywords
                        if kw.arg in ("delay", "priority")
                    ]
                else:  # process: the generator's arguments steer the work
                    exprs = list(call.args)
                tokens: set = set()
                for e in exprs:
                    tokens |= self.eval(e, state)
                self._hit(call, "schedule", frozenset(tokens))
            elif attr in _EMIT_ATTRS and any(
                frag in _receiver_names(func.value) for frag in _EMIT_RECEIVERS
            ):
                tokens = set()
                for e in list(call.args) + [kw.value for kw in call.keywords]:
                    tokens |= self.eval(e, state)
                self._hit(call, "emit", frozenset(tokens))
            elif attr == "sort":
                self._check_tiebreak(call, state)
        elif isinstance(func, ast.Name) and func.id in ("sorted", "min", "max"):
            self._check_tiebreak(call, state)

    def _check_tiebreak(self, call: ast.Call, state: dict) -> None:
        for kw in call.keywords:
            if kw.arg != "key":
                continue
            if isinstance(kw.value, ast.Name) and kw.value.id in ("id", "hash"):
                tokens: frozenset = frozenset({"ident"})
            else:
                tokens = self.eval(kw.value, state)
            self._hit(call, "tiebreak", tokens)

    def _record_call(self, call: ast.Call, state: dict) -> None:
        key = self._callee_key(call.func, self.resolver.resolve(call.func))
        if key is None:
            return
        args = tuple(self.eval(a, state) for a in call.args)
        kwargs = tuple(
            sorted(
                (kw.arg, self.eval(kw.value, state))
                for kw in call.keywords
                if kw.arg is not None
            )
        )
        if not any(args) and not any(t for _n, t in kwargs):
            return  # nothing tainted flows in; no propagation to record
        self.out.calls.append(
            (
                call.lineno,
                call.col_offset,
                key,
                isinstance(call.func, ast.Attribute),
                args,
                kwargs,
            )
        )

    def _merge_barrier(self, loop: ast.AST) -> bool:
        """Does a completion-order loop re-establish an order?  Keyed
        stores (``out[k] = v``) are the sweep ordered-merge idiom; an
        ``append``/``extend``/``yield`` needs a post-loop sort."""
        accumulators: set[str] = set()
        for node in ast.walk(loop):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return False
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("append", "extend", "add") and isinstance(
                    node.func.value, ast.Name
                ):
                    accumulators.add(node.func.value.id)
        if not accumulators:
            return True  # only keyed stores / scalars: order-safe
        end = getattr(loop, "end_lineno", loop.lineno) or loop.lineno
        for node in ast.walk(self.fn):
            if getattr(node, "lineno", 0) <= end:
                continue
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id == "sorted"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in accumulators
                ):
                    accumulators.discard(node.args[0].id)
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "sort"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in accumulators
                ):
                    accumulators.discard(func.value.id)
        return not accumulators


def analyze_module(
    path: str, module: Optional[str], tree: ast.Module
) -> ModuleTaint:
    """The purely local phase: symbolic per-function taint results for
    one module (cacheable by content hash — no cross-file inputs)."""
    is_pkg = path.endswith("__init__.py")
    resolver = ImportResolver(tree, module=module, is_package=is_pkg)
    modname = module or "<module>"
    unstable = _unstable_dict_attrs(tree)
    mt = ModuleTaint(path, module)

    def add(fn: ast.AST, qualname: str) -> None:
        mt.functions[qualname] = _Intra(
            fn, qualname, resolver, modname, unstable
        ).run()

    for node in tree.body:
        if isinstance(node, _FUNC_NODES):
            add(node, f"{modname}.{node.name}")
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, _FUNC_NODES):
                    add(item, f"{modname}.{node.name}.{item.name}")
    return mt


# ---------------------------------------------------------------------------
# global resolution
# ---------------------------------------------------------------------------


class TaintFinding:
    """One resolved hazard: tainted kinds reaching a sink."""

    __slots__ = ("path", "line", "col", "sink", "kinds", "via")

    def __init__(self, path, line, col, sink, kinds, via=None) -> None:
        self.path = path
        self.line = line
        self.col = col
        self.sink = sink
        self.kinds = kinds
        self.via = via

    @property
    def lineno(self) -> int:  # duck-types as an AST node for ctx.report
        return self.line

    @property
    def col_offset(self) -> int:
        return self.col

    def key(self) -> tuple:
        return (self.path, self.line, self.col, self.sink,
                tuple(sorted(self.kinds)), self.via)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        via = f" via {self.via}" if self.via else ""
        return (
            f"<TaintFinding {self.sink}:{','.join(sorted(self.kinds))} "
            f"at {self.path}:{self.line}{via}>"
        )


class TaintIndex:
    """The project-wide resolved view the N7xx rules query."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleTaint] = {}
        self.functions: dict[str, FnTaint] = {}
        self.by_name: dict[str, list[str]] = {}
        #: qualname -> (concrete kinds reaching return, param idxs doing so)
        self.ret: dict[str, tuple[frozenset, frozenset]] = {}
        #: qualname -> {param idx: frozenset of sink names}
        self.sink_params: dict[str, dict[int, frozenset]] = {}
        self._findings: dict[str, list[TaintFinding]] = {}
        #: modules whose local phase was recomputed (vs. cache) this build
        self.recomputed = 0

    # -- queries ---------------------------------------------------------
    def findings_for(self, path: str) -> list[TaintFinding]:
        return self._findings.get(path, [])

    def summary(self, qualname: str) -> Optional[FnTaint]:
        return self.functions.get(qualname)

    def ret_of(self, qualname: str) -> tuple[frozenset, frozenset]:
        return self.ret.get(qualname, (_EMPTY, _EMPTY))

    def fingerprint(self) -> str:
        """Stable digest over every module's symbolic payload — editing
        one file can change findings in its callers, so the incremental
        cache keys on this (alongside the call-graph fingerprint)."""
        h = hashlib.sha256()
        h.update(f"taint-v{TAINT_VERSION};".encode())
        for path in sorted(self.modules):
            h.update(path.encode())
            h.update(
                json.dumps(
                    self.modules[path].to_payload(), sort_keys=True
                ).encode()
            )
            h.update(b";")
        return h.hexdigest()

    # -- resolution ------------------------------------------------------
    def _lookup(self, key: str, bound: bool) -> Optional[FnTaint]:
        hit = self.functions.get(key)
        if hit is not None:
            return hit
        candidates = self.by_name.get(key.rsplit(".", 1)[-1], ())
        if len(candidates) == 1:
            return self.functions[candidates[0]]
        return None

    @staticmethod
    def _offset(callee: FnTaint, bound: bool) -> int:
        return 1 if bound and callee.params[:1] in (("self",), ("cls",)) else 0

    def _arg_tokens(
        self,
        callee: FnTaint,
        param_idx: int,
        bound: bool,
        args: tuple,
        kwargs: tuple,
    ) -> Optional[frozenset]:
        """Tokens the call site supplies for the callee's ``param_idx``."""
        pos = param_idx - self._offset(callee, bound)
        if 0 <= pos < len(args):
            return args[pos]
        if 0 <= param_idx < len(callee.params):
            name = callee.params[param_idx]
            for kw, toks in kwargs:
                if kw == name:
                    return toks
        return None

    def _resolve(
        self, tokens: Iterable, depth: int = 0
    ) -> tuple[frozenset, frozenset]:
        """``tokens`` -> (concrete kind tokens, param indices)."""
        kinds: set = set()
        params: set = set()
        for tok in tokens:
            if isinstance(tok, str):
                if tok.startswith("p:"):
                    params.add(int(tok[2:]))
                else:
                    kinds.add(tok)
                continue
            _tag, key, bound, args, kwargs = tok
            callee = self._lookup(key, bound)
            if callee is None or depth > 4:
                # unknown callee: pass-through of its arguments
                for toks in args + tuple(t for _n, t in kwargs):
                    k, p = self._resolve(toks, depth + 1)
                    kinds |= k
                    params |= p
                continue
            ck, cp = self.ret_of(callee.qualname)
            kinds |= ck
            for idx in cp:
                supplied = self._arg_tokens(callee, idx, bound, args, kwargs)
                if supplied:
                    k, p = self._resolve(supplied, depth + 1)
                    kinds |= k
                    params |= p
        return frozenset(kinds), frozenset(params)

    def resolve_all(self) -> None:
        """Run the RET and SINKPARAM fixpoints, then materialize
        findings.  Monotone in both lattices; rounds are capped the same
        way the call-graph fixpoint is (chains here are short)."""
        # RET fixpoint
        for _round in range(8):
            changed = False
            for q, fn in self.functions.items():
                kinds, params = self._resolve(fn.ret_tokens)
                if (kinds, params) != self.ret.get(q, (_EMPTY, _EMPTY)):
                    self.ret[q] = (kinds, params)
                    changed = True
            if not changed:
                break
        # SINKPARAM fixpoint
        for q in self.functions:
            self.sink_params[q] = {}
        for _round in range(8):
            changed = False
            for q, fn in self.functions.items():
                mine = self.sink_params[q]
                for _ln, _col, sink, tokens in fn.sink_hits:
                    _kinds, params = self._resolve(tokens)
                    for i in params:
                        if sink not in mine.get(i, _EMPTY):
                            mine[i] = mine.get(i, _EMPTY) | {sink}
                            changed = True
                for _ln, _col, key, bound, args, kwargs in fn.calls:
                    callee = self._lookup(key, bound)
                    if callee is None:
                        continue
                    theirs = self.sink_params.get(callee.qualname, {})
                    for idx, sinks in theirs.items():
                        supplied = self._arg_tokens(callee, idx, bound, args, kwargs)
                        if not supplied:
                            continue
                        _kinds, params = self._resolve(supplied)
                        for i in params:
                            if not sinks <= mine.get(i, _EMPTY):
                                mine[i] = mine.get(i, _EMPTY) | sinks
                                changed = True
            if not changed:
                break
        # findings
        for path, mt in self.modules.items():
            out: list[TaintFinding] = []
            seen: set = set()

            def emit(f: TaintFinding) -> None:
                if f.kinds and f.key() not in seen:
                    seen.add(f.key())
                    out.append(f)

            for q, fn in mt.functions.items():
                for ln, col, sink, tokens in fn.sink_hits:
                    kinds, _params = self._resolve(tokens)
                    emit(
                        TaintFinding(
                            path, ln, col, sink, normalize_kinds(kinds)
                        )
                    )
                for ln, col, key, bound, args, kwargs in fn.calls:
                    callee = self._lookup(key, bound)
                    if callee is None:
                        continue
                    theirs = self.sink_params.get(callee.qualname, {})
                    for idx, sinks in theirs.items():
                        supplied = self._arg_tokens(callee, idx, bound, args, kwargs)
                        if not supplied:
                            continue
                        kinds, _params = self._resolve(supplied)
                        for sink in sorted(sinks):
                            emit(
                                TaintFinding(
                                    path,
                                    ln,
                                    col,
                                    sink,
                                    normalize_kinds(kinds),
                                    via=callee.name,
                                )
                            )
                for ln, col, barrier in fn.merges:
                    if not barrier:
                        emit(
                            TaintFinding(
                                path, ln, col, "merge", frozenset({"order"})
                            )
                        )
            out.sort(key=lambda f: (f.line, f.col, f.sink))
            self._findings[path] = out


def build_taint_index(
    sources: Mapping[str, tuple],
    texts: Optional[Mapping[str, str]] = None,
    cache=None,
) -> TaintIndex:
    """Build and resolve the project taint index from
    ``{path: (module_name, tree)}``.

    With ``texts`` (``{path: source}``) and a
    :class:`~repro.lint.cache.LintCache`, per-module symbolic results
    are served from the cache when the file's content hash matches —
    the global resolution phase (cheap token algebra, no AST walking)
    always runs.  ``TaintIndex.recomputed`` counts the modules whose
    local phase actually ran; the bench suite asserts it stays at zero
    on a warm tree.
    """
    index = TaintIndex()
    for path in sorted(sources):
        module, tree = sources[path]
        mt: Optional[ModuleTaint] = None
        text = texts.get(path) if texts is not None else None
        if cache is not None and text is not None:
            payload = cache.get_summary(path, text)
            if payload is not None:
                try:
                    mt = ModuleTaint.from_payload(path, payload)
                except (KeyError, TypeError, ValueError):
                    mt = None  # malformed entry: recompute
        if mt is None:
            mt = analyze_module(path, module, tree)
            index.recomputed += 1
            if cache is not None and text is not None:
                cache.put_summary(path, text, mt.to_payload())
        index.modules[path] = mt
        for q, fn in mt.functions.items():
            index.functions[q] = fn
            index.by_name.setdefault(fn.name, []).append(q)
    index.resolve_all()
    return index
