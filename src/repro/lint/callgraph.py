"""Project-wide call graph with cleanup summaries.

The R5xx lifecycle rules need one interprocedural fact: *does the thing
I handed this resource to clean it up?*  ``span`` passed to a helper
that calls ``span.finish()`` is not a leak; a timer attribute whose
class never ``Environment.cancel``s it is.  This module does one scan
over the files being linted (the same single-pass pattern as
``discover_provider_schemas``) and produces:

* a :class:`FnSummary` per module-level function and per method —
  which positional parameters the function *cleans up* and how
  (``finish``/``cancel``/``release``/``close``/``unlink``);
* a :class:`ClassSummary` per class — which ``self.<attr>`` names any
  method cancels or ``.processed``-checks (the PR-3 leaked-timer
  remediation shapes);
* resolved call edges (via :class:`~repro.lint.resolver.ImportResolver`
  with module context, local defs, and ``self.method`` dispatch) so
  cleanup facts propagate through one level of fixpoint iteration:
  a wrapper that forwards its parameter to a cleaner is itself a
  cleaner.

The graph also exposes a :meth:`ProjectGraph.fingerprint` — the
incremental cache keys on it, because editing one file can change
findings in *other* files through these summaries.
"""

from __future__ import annotations

import ast
import hashlib
import os
from typing import Iterable, Mapping, Optional

from .resolver import ImportResolver

__all__ = [
    "FnSummary",
    "ClassSummary",
    "ProjectGraph",
    "build_graph",
    "module_name_for_path",
    "CLEANUP_METHODS",
]

#: method-call-on-parameter names that count as cleaning it up.
CLEANUP_METHODS = {
    "finish": "finish",
    "cancel": "cancel",
    "release": "release",
    "close": "close",
}

#: function(arg) shapes that count as cleaning the argument up, keyed by
#: the resolved (or bare) callee name suffix.
CLEANUP_CALLEES = {
    "os.unlink": "unlink",
    "os.remove": "unlink",
    "os.replace": "unlink",
    "os.rename": "unlink",
    "os.close": "close",
    "os.rmdir": "unlink",
    "shutil.rmtree": "unlink",
}


def module_name_for_path(path: str) -> Optional[str]:
    """Dotted module name of ``path``, derived by walking up while the
    parent directory is a package (has ``__init__.py``)."""
    path = os.path.abspath(path)
    if not path.endswith(".py"):
        return None
    directory, fname = os.path.split(path)
    parts: list[str] = []
    if fname != "__init__.py":
        parts.append(fname[:-3])
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
        if not pkg:  # filesystem root, defensive
            break
    if not parts:
        return None
    return ".".join(reversed(parts))


class FnSummary:
    """What one function does to its positional parameters."""

    __slots__ = ("qualname", "params", "cleans", "forwards")

    def __init__(self, qualname: str, params: tuple[str, ...]) -> None:
        self.qualname = qualname
        self.params = params
        #: param index -> set of cleanup kinds performed directly
        self.cleans: dict[int, set[str]] = {}
        #: (callee key, callee param index, own param index) forwards —
        #: resolved during fixpoint propagation
        self.forwards: list[tuple[str, int, int]] = []

    def cleans_param(self, index: int) -> frozenset[str]:
        return frozenset(self.cleans.get(index, ()))


class ClassSummary:
    """Per-class teardown facts for attribute-held resources."""

    __slots__ = ("qualname", "cancelled_attrs", "processed_checked_attrs",
                 "finished_attrs")

    def __init__(self, qualname: str) -> None:
        self.qualname = qualname
        self.cancelled_attrs: set[str] = set()
        self.processed_checked_attrs: set[str] = set()
        self.finished_attrs: set[str] = set()


def _root_name(node: ast.AST) -> Optional[str]:
    """The root ``Name`` of an attribute/call chain:
    ``span.set("k", 1).finish()`` -> ``span``."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            break
    return node.id if isinstance(node, ast.Name) else None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` (possibly deeper: returns the first attribute)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class ProjectGraph:
    """The one-scan project index the lifecycle rules query."""

    def __init__(self) -> None:
        self.functions: dict[str, FnSummary] = {}
        self.classes: dict[str, ClassSummary] = {}
        #: bare function/method name -> qualnames (fallback resolution)
        self.by_name: dict[str, list[str]] = {}
        self.n_modules = 0

    # -- queries --------------------------------------------------------
    def function(self, qualname: str) -> Optional[FnSummary]:
        return self.functions.get(qualname)

    def lookup_bare(self, name: str) -> list[FnSummary]:
        return [self.functions[q] for q in self.by_name.get(name, ())]

    def class_summary_by_name(self, class_name: str) -> Optional[ClassSummary]:
        """Match on the trailing class name (rules usually only know the
        syntactic name); unambiguous matches only."""
        hits = [
            c
            for q, c in self.classes.items()
            if q.rsplit(".", 1)[-1] == class_name
        ]
        return hits[0] if len(hits) == 1 else None

    def callee_cleans(
        self, call: ast.Call, resolver: ImportResolver, arg_index: int
    ) -> Optional[frozenset[str]]:
        """What a call does to its ``arg_index``-th positional argument:
        a set of cleanup kinds if the callee is known, ``None`` if the
        callee cannot be resolved (caller should stay conservative)."""
        summary = self._resolve_callee(call, resolver)
        if summary is None:
            return None
        if (
            isinstance(call.func, ast.Attribute)
            and summary.params
            and summary.params[0] in ("self", "cls")
        ):
            # ``obj.method(a, b)``: the receiver is bound, so call-site
            # argument i lands on parameter i+1.
            arg_index += 1
        return summary.cleans_param(arg_index)

    def callee_cleans_keyword(
        self, call: ast.Call, resolver: ImportResolver, kw_name: str
    ) -> Optional[frozenset[str]]:
        """Like :meth:`callee_cleans` for a keyword argument — the name
        is mapped onto the callee's positional parameter list."""
        summary = self._resolve_callee(call, resolver)
        if summary is None:
            return None
        try:
            return summary.cleans_param(summary.params.index(kw_name))
        except ValueError:
            return frozenset()  # **kwargs etc.: not a tracked parameter

    def _resolve_callee(
        self, call: ast.Call, resolver: ImportResolver
    ) -> Optional[FnSummary]:
        resolved = resolver.resolve(call.func)
        if resolved is not None:
            hit = self.functions.get(resolved)
            if hit is not None:
                return hit
        # self.method(...) / obj.method(...): fall back to a bare-name
        # match when it is unambiguous project-wide.
        name = None
        if isinstance(call.func, ast.Attribute):
            name = call.func.attr
        elif isinstance(call.func, ast.Name):
            name = call.func.id
        if name is not None:
            candidates = self.lookup_bare(name)
            if len(candidates) == 1:
                return candidates[0]
        return None

    def fingerprint(self) -> str:
        """Stable digest of every interprocedural fact; cache entries
        are only valid while this is unchanged."""
        h = hashlib.sha256()
        for q in sorted(self.functions):
            fn = self.functions[q]
            h.update(q.encode())
            for idx in sorted(fn.cleans):
                h.update(f":{idx}={','.join(sorted(fn.cleans[idx]))}".encode())
            h.update(b";")
        for q in sorted(self.classes):
            c = self.classes[q]
            h.update(q.encode())
            h.update(
                (
                    "|".join(sorted(c.cancelled_attrs))
                    + "/"
                    + "|".join(sorted(c.processed_checked_attrs))
                    + "/"
                    + "|".join(sorted(c.finished_attrs))
                ).encode()
            )
            h.update(b";")
        return h.hexdigest()


def _param_names(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> tuple[str, ...]:
    a = fn.args
    return tuple(p.arg for p in list(a.posonlyargs) + list(a.args))


def _walk_own(node: ast.AST) -> Iterable[ast.AST]:
    stack = list(ast.iter_child_nodes(node))
    while stack:
        n = stack.pop()
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield n
        stack.extend(ast.iter_child_nodes(n))


def _summarize_function(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    qualname: str,
    resolver: ImportResolver,
    module: str,
    class_name: Optional[str],
) -> FnSummary:
    summary = FnSummary(qualname, _param_names(fn))
    index_of = {p: i for i, p in enumerate(summary.params)}
    for node in _walk_own(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # param.finish() / param.release() / param.set(...).cancel() ...
        if isinstance(func, ast.Attribute) and func.attr in CLEANUP_METHODS:
            root = _root_name(func.value)
            if root in index_of:
                summary.cleans.setdefault(index_of[root], set()).add(
                    CLEANUP_METHODS[func.attr]
                )
            continue
        # os.unlink(param) / env.cancel(param) / shutil.rmtree(param)
        resolved = resolver.resolve(func)
        kind = CLEANUP_CALLEES.get(resolved or "")
        if kind is None and isinstance(func, ast.Attribute):
            # unresolved receivers: match the bare tail (tempfile/os are
            # often attributes of an injected module object)
            for suffix, k in CLEANUP_CALLEES.items():
                if func.attr == suffix.rsplit(".", 1)[-1]:
                    kind = k
                    break
            if kind is None and func.attr == "cancel":
                kind = "cancel"  # env.cancel(ev) — Environment.cancel
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Name) and arg.id in index_of:
                if kind is not None:
                    summary.cleans.setdefault(
                        index_of[arg.id], set()
                    ).add(kind)
                else:
                    # forwarded to another function: record the edge
                    key = resolved
                    if key is None:
                        if isinstance(func, ast.Attribute):
                            key = func.attr
                        elif isinstance(func, ast.Name):
                            key = f"{module}.{func.id}"
                            if class_name and key not in ("",):
                                key = key  # local helper; class scope n/a
                    if key:
                        summary.forwards.append((key, i, index_of[arg.id]))
    return summary


def _summarize_class_attrs(cls: ast.ClassDef, summary: ClassSummary) -> None:
    for node in ast.walk(cls):
        if isinstance(node, ast.Call):
            func = node.func
            # self.X.cancel() / self.X.finish()
            if isinstance(func, ast.Attribute) and func.attr in CLEANUP_METHODS:
                attr = _self_attr(func.value)
                if attr is not None:
                    if func.attr == "cancel":
                        summary.cancelled_attrs.add(attr)
                    elif func.attr == "finish":
                        summary.finished_attrs.add(attr)
            # env.cancel(self.X) / self.env.cancel(self.X)
            if isinstance(func, ast.Attribute) and func.attr == "cancel":
                for arg in node.args:
                    attr = _self_attr(arg)
                    if attr is not None:
                        summary.cancelled_attrs.add(attr)
        elif isinstance(node, ast.Attribute) and node.attr == "processed":
            # `if not self.X.processed:` — the stale-timer guard
            attr = _self_attr(node.value)
            if attr is not None:
                summary.processed_checked_attrs.add(attr)


def build_graph(sources: Mapping[str, tuple[str, ast.Module]]) -> ProjectGraph:
    """Build the project graph from ``{path: (module_name, tree)}``.

    ``module_name`` may be ``None`` for scratch sources; those modules
    still contribute local functions under a ``<module>`` pseudo-root so
    intra-file interprocedural facts work in unit tests.
    """
    graph = ProjectGraph()
    for path in sorted(sources):
        module, tree = sources[path]
        modname = module or "<module>"
        is_pkg = os.path.basename(path) == "__init__.py"
        resolver = ImportResolver(tree, module=module, is_package=is_pkg)
        graph.n_modules += 1

        def add_fn(fn, qualname, class_name=None):
            summary = _summarize_function(fn, qualname, resolver, modname, class_name)
            graph.functions[qualname] = summary
            graph.by_name.setdefault(fn.name, []).append(qualname)

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_fn(node, f"{modname}.{node.name}")
            elif isinstance(node, ast.ClassDef):
                cls_q = f"{modname}.{node.name}"
                cs = ClassSummary(cls_q)
                _summarize_class_attrs(node, cs)
                graph.classes[cls_q] = cs
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        add_fn(item, f"{cls_q}.{item.name}", class_name=node.name)

    # Fixpoint: a function that forwards a param to a cleaner cleans it
    # too.  Cleanup chains in this codebase are short; cap the rounds.
    for _round in range(4):
        changed = False
        for fn in graph.functions.values():
            for key, callee_idx, own_idx in fn.forwards:
                callee = graph.functions.get(key)
                if callee is None:
                    candidates = graph.by_name.get(key.rsplit(".", 1)[-1], ())
                    if len(candidates) == 1:
                        callee = graph.functions[candidates[0]]
                if callee is None:
                    continue
                # method calls: account for the implicit `self` slot
                idx = callee_idx
                if callee.params[:1] == ("self",):
                    idx += 1
                kinds = callee.cleans.get(idx)
                if kinds:
                    mine = fn.cleans.setdefault(own_idx, set())
                    if not kinds <= mine:
                        mine |= kinds
                        changed = True
        if not changed:
            break
    return graph


def build_graph_for_trees(
    trees: Mapping[str, ast.Module]
) -> ProjectGraph:
    """Convenience wrapper: derive module names from paths."""
    return build_graph(
        {p: (module_name_for_path(p), t) for p, t in trees.items()}
    )
