"""Per-directory analyzer configuration.

Some files may legitimately touch what a rule forbids: the wall-clock
pacing layer (``sim/realtime.py``) and the real-filesystem polling
observer (``watcher/observer.py``) exist precisely to bridge simulated
and real time.  Rather than scattering ``noqa`` comments, the config
carries **path-scoped rule allowances**: glob patterns (matched against
the file's POSIX path *suffix*) mapping to the rule ids permitted there.

The flow-validation packs (``F3xx`` name checks and the ``F4xx``
dataflow pass) also need the action-provider registry: which provider
names exist and, for each, its declared ``input_schema`` /
``output_schema`` payload contract.  To keep the analyzer purely static
it does not import any :mod:`repro` module; it AST-scans the package
for provider-shaped classes (a literal ``name = "..."`` attribute plus
``run``/``status`` methods) and reads their literal schema dicts.  That
one scan — :func:`discover_provider_schemas` — is the single source of
truth: ``F304``'s name set is its key set, so a provider added to
``flows/providers.py`` is picked up by every rule at once.
"""

from __future__ import annotations

import ast
import fnmatch
import functools
import os
import types
from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = [
    "LintConfig",
    "DEFAULT_ALLOW",
    "ProviderSchema",
    "discover_provider_schemas",
    "discover_provider_names",
]

#: Default path-scoped allowances. Keys are glob patterns, values the rule
#: ids those files may violate.  ``sim/realtime.py`` *is* the wall clock
#: bridge; ``watcher/observer.py`` polls a real directory tree (its loop
#: takes injectable clock/sleep callables, but the defaults reference the
#: real clock and demos drive it for wall-clock durations).
DEFAULT_ALLOW: dict[str, frozenset[str]] = {
    "sim/realtime.py": frozenset({"D101", "D102"}),
    "watcher/observer.py": frozenset({"D101", "D102"}),
}

#: Fallback provider registry when ``providers.py`` cannot be scanned.
BUILTIN_PROVIDERS = frozenset({"transfer", "compute", "search_ingest"})


@dataclass(frozen=True)
class ProviderSchema:
    """One action provider's statically declared payload contract.

    ``input_schema``/``output_schema`` mirror the literal class
    attributes (see :mod:`repro.flows.action`); either is ``None`` when
    the class carries no literal declaration — the F4xx pass then skips
    the corresponding checks for that provider (and F404 reports the
    missing declaration).
    """

    name: str
    input_schema: Optional[Mapping[str, str]] = None
    output_schema: Optional[Mapping[str, str]] = None

    @property
    def required_params(self) -> frozenset[str]:
        if self.input_schema is None:
            return frozenset()
        return frozenset(k for k in self.input_schema if not k.endswith("?"))

    @property
    def accepted_params(self) -> frozenset[str]:
        if self.input_schema is None:
            return frozenset()
        return frozenset(k.rstrip("?") for k in self.input_schema)

    def param_type(self, param: str) -> Optional[str]:
        """Declared type of ``param`` (accepts the undecorated name)."""
        if self.input_schema is None:
            return None
        for key, tp in self.input_schema.items():
            if key.rstrip("?") == param:
                return tp
        return None


def _literal_str_dict(node: ast.AST) -> Optional[Mapping[str, str]]:
    """Parse a fully literal ``{"str": "str", ...}`` dict expression."""
    if not isinstance(node, ast.Dict):
        return None
    out: dict[str, str] = {}
    for key, value in zip(node.keys, node.values):
        if not (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return None
        out[key.value] = value.value
    return types.MappingProxyType(out)


def _class_literal_assign(node: ast.ClassDef, attr: str) -> Optional[ast.AST]:
    """The value expression of a class-level ``attr = ...`` binding, in
    either the bare (``name = "x"``) or annotated (``name: str = "x"``)
    spelling; annotation-only declarations carry no value and don't
    count."""
    for stmt in node.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == attr
        ):
            return stmt.value
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == attr
            and stmt.value is not None
        ):
            return stmt.value
    return None


def _providers_in_tree(tree: ast.AST) -> dict[str, ProviderSchema]:
    """Provider-shaped classes: a literal ``name = "..."`` class
    attribute alongside ``run`` and ``status`` methods, with any literal
    ``input_schema``/``output_schema`` dicts they declare."""
    out: dict[str, ProviderSchema] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            s.name for s in node.body if isinstance(s, ast.FunctionDef)
        }
        if not {"run", "status"} <= methods:
            continue
        name_node = _class_literal_assign(node, "name")
        if not (
            isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)
        ):
            continue
        in_node = _class_literal_assign(node, "input_schema")
        out_node = _class_literal_assign(node, "output_schema")
        out[name_node.value] = ProviderSchema(
            name=name_node.value,
            input_schema=_literal_str_dict(in_node) if in_node is not None else None,
            output_schema=_literal_str_dict(out_node) if out_node is not None else None,
        )
    return out


@functools.lru_cache(maxsize=8)
def discover_provider_schemas(
    package_root: Optional[str] = None,
) -> Mapping[str, ProviderSchema]:
    """Collect the action-provider registry by statically scanning the
    ``repro`` package (default: the package containing this file) for
    provider-shaped classes and their literal schema declarations.

    This is the one provider list every rule pack shares: ``F304``
    checks names against its keys and the ``F4xx`` dataflow pass reads
    the schemas.  Returns name-only :class:`ProviderSchema` stubs for
    :data:`BUILTIN_PROVIDERS` if nothing is found (so the analyzer still
    works on partial checkouts).  Memoized: the scan is pure-static, and
    one analyzer run builds many configs.
    """
    if package_root is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    found: dict[str, ProviderSchema] = {}
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames.sort()
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            try:
                with open(os.path.join(dirpath, fname), encoding="utf-8") as fh:
                    tree = ast.parse(fh.read())
            except (OSError, SyntaxError):
                continue
            found.update(_providers_in_tree(tree))
    if not found:
        found = {name: ProviderSchema(name=name) for name in BUILTIN_PROVIDERS}
    return types.MappingProxyType(dict(sorted(found.items())))


def discover_provider_names(package_root: Optional[str] = None) -> frozenset[str]:
    """Action-provider names — the key set of
    :func:`discover_provider_schemas` (kept as the convenience form the
    ``F304`` name check and older callers use)."""
    return frozenset(discover_provider_schemas(package_root))


@dataclass(frozen=True)
class LintConfig:
    """Analyzer configuration.

    Parameters
    ----------
    allow:
        ``{path glob: rule ids}`` — rules suppressed for matching files.
    select:
        If non-empty, only these rule ids run.
    ignore:
        Rule ids disabled everywhere.
    provider_schemas:
        The action-provider registry (name → declared payload schemas)
        shared by the ``F304`` name check and the ``F4xx`` dataflow
        pass; defaults to a static scan of the ``repro`` package.
    """

    allow: dict[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW)
    )
    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()
    provider_schemas: Mapping[str, ProviderSchema] = field(
        default_factory=discover_provider_schemas
    )

    @property
    def known_providers(self) -> frozenset[str]:
        """Provider names, derived from :attr:`provider_schemas` so the
        two views can never drift apart."""
        return frozenset(self.provider_schemas)

    def provider_schema(self, name: str) -> Optional[ProviderSchema]:
        return self.provider_schemas.get(name)

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select and rule_id not in self.select:
            return False
        return True

    def allowed_for_path(self, path: str, rule_id: str) -> bool:
        """True when ``rule_id`` is explicitly permitted for ``path``."""
        posix = path.replace(os.sep, "/")
        for pattern, rule_ids in self.allow.items():
            if rule_id not in rule_ids:
                continue
            if fnmatch.fnmatch(posix, pattern) or fnmatch.fnmatch(
                posix, "*/" + pattern
            ):
                return True
        return False
