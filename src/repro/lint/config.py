"""Per-directory analyzer configuration.

Some files may legitimately touch what a rule forbids: the wall-clock
pacing layer (``sim/realtime.py``) and the real-filesystem polling
observer (``watcher/observer.py``) exist precisely to bridge simulated
and real time.  Rather than scattering ``noqa`` comments, the config
carries **path-scoped rule allowances**: glob patterns (matched against
the file's POSIX path *suffix*) mapping to the rule ids permitted there.

The flow-validation pack also needs the set of registered action
provider names.  To keep the analyzer purely static it does not import
any :mod:`repro` module; it AST-scans the package for provider-shaped
classes (a literal ``name = "..."`` attribute plus ``run``/``status``
methods), falling back to the known builtin trio.
"""

from __future__ import annotations

import ast
import fnmatch
import functools
import os
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["LintConfig", "DEFAULT_ALLOW", "discover_provider_names"]

#: Default path-scoped allowances. Keys are glob patterns, values the rule
#: ids those files may violate.  ``sim/realtime.py`` *is* the wall clock
#: bridge; ``watcher/observer.py`` polls a real directory tree (its loop
#: takes injectable clock/sleep callables, but the defaults reference the
#: real clock and demos drive it for wall-clock durations).
DEFAULT_ALLOW: dict[str, frozenset[str]] = {
    "sim/realtime.py": frozenset({"D101", "D102"}),
    "watcher/observer.py": frozenset({"D101", "D102"}),
}

#: Fallback provider registry when ``providers.py`` cannot be scanned.
BUILTIN_PROVIDERS = frozenset({"transfer", "compute", "search_ingest"})


def _provider_names_in_tree(tree: ast.AST) -> set[str]:
    """Provider-shaped classes: a literal ``name = "..."`` class
    attribute alongside ``run`` and ``status`` methods."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            s.name for s in node.body if isinstance(s, ast.FunctionDef)
        }
        if not {"run", "status"} <= methods:
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "name"
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                names.add(stmt.value.value)
    return names


@functools.lru_cache(maxsize=8)
def discover_provider_names(package_root: Optional[str] = None) -> frozenset[str]:
    """Collect action-provider names by statically scanning the
    ``repro`` package (default: the package containing this file) for
    provider-shaped classes.

    Returns :data:`BUILTIN_PROVIDERS` if nothing is found (so the
    analyzer still works on partial checkouts).  Memoized: the scan is
    pure-static, and one analyzer run builds many configs.
    """
    if package_root is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    names: set[str] = set()
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames.sort()
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            try:
                with open(os.path.join(dirpath, fname), encoding="utf-8") as fh:
                    tree = ast.parse(fh.read())
            except (OSError, SyntaxError):
                continue
            names |= _provider_names_in_tree(tree)
    return frozenset(names) if names else BUILTIN_PROVIDERS


@dataclass(frozen=True)
class LintConfig:
    """Analyzer configuration.

    Parameters
    ----------
    allow:
        ``{path glob: rule ids}`` — rules suppressed for matching files.
    select:
        If non-empty, only these rule ids run.
    ignore:
        Rule ids disabled everywhere.
    known_providers:
        Action-provider names the ``F304`` rule accepts; defaults to a
        static scan of ``repro/flows/providers.py``.
    """

    allow: dict[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW)
    )
    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()
    known_providers: frozenset[str] = field(default_factory=discover_provider_names)

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select and rule_id not in self.select:
            return False
        return True

    def allowed_for_path(self, path: str, rule_id: str) -> bool:
        """True when ``rule_id`` is explicitly permitted for ``path``."""
        posix = path.replace(os.sep, "/")
        for pattern, rule_ids in self.allow.items():
            if rule_id not in rule_ids:
                continue
            if fnmatch.fnmatch(posix, pattern) or fnmatch.fnmatch(
                posix, "*/" + pattern
            ):
                return True
        return False
