"""Per-function control-flow graphs over stdlib ``ast``.

The v3 rule packs (R5xx resource lifecycle, P6xx hot-path perf) need to
reason about *paths*, not statements: "is this span finished on every
edge that leaves the function?", "can this temp file escape to the
exceptional exit without an unlink?".  This module builds a small,
deliberately explicit CFG for one function:

* one :class:`Block` per simple statement (plus synthetic ``entry``,
  ``exit`` and ``raise`` blocks), so tests can assert edge sets against
  hand-checked fixtures;
* **exception edges** (kind ``"exc"``) from every statement that can
  raise to the innermost handler entries, through ``finally`` bodies,
  and ultimately to the ``raise`` exit;
* **finally routing**: ``return``/``break``/``continue`` and exception
  propagation all pass through enclosing ``finally`` bodies before
  reaching their targets, and a ``finally`` body that itself terminates
  (``return`` inside ``finally``) correctly swallows the pending
  exception — no edge to the ``raise`` exit survives;
* **with cleanup blocks**: every exit from a ``with`` body (normal or
  exceptional) passes through a synthetic cleanup block representing
  ``__exit__``, so "was this protected by a context manager?" is a
  plain path query;
* **generator yield points**: blocks whose statement contains a
  ``yield``/``await`` at the function's own nesting level are marked,
  and carry exception edges (the kernel may throw into a suspended
  process).

Nested ``def``/``class`` bodies are *not* part of the enclosing CFG —
they only bind a name here and get their own CFG when the analyzer
visits them.

Approximations (documented, deliberate): handler dispatch connects a
raising block to **every** handler entry of the enclosing ``try`` (no
type matching); a "handler may not match" edge escapes outward from the
last handler unless it catches ``Exception``/``BaseException``/bare;
``finally`` bodies are built once with the union of their continuations
rather than duplicated per path.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Optional, Union

__all__ = ["Block", "CFG", "build_cfg"]

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Statement types that can never raise on their own.
_SAFE_STMTS = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)

#: Expression node types whose evaluation can raise (used to decide
#: whether a block needs an exception edge).
_RAISING_EXPRS = (
    ast.Call,
    ast.Attribute,
    ast.Subscript,
    ast.BinOp,
    ast.UnaryOp,
    ast.Compare,
    ast.Yield,
    ast.YieldFrom,
    ast.Await,
    ast.FormattedValue,
    ast.comprehension,
)


def _walk_own(node: ast.AST) -> Iterable[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class
    bodies (their code runs in another frame)."""
    stack = [node]
    while stack:
        n = stack.pop()
        yield n
        for child in ast.iter_child_nodes(n):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                yield child  # the binding itself is visible, its body is not
                continue
            stack.append(child)


class Block:
    """One CFG node.

    ``stmts`` holds the AST statement(s) the block stands for; ``nodes``
    holds only what is *semantically evaluated* here (an ``If`` block
    evaluates just its test — the branch bodies live in their own
    blocks), so rules can scan ``nodes`` without seeing child blocks'
    code.
    """

    __slots__ = ("bid", "label", "kind", "stmts", "nodes", "succ", "pred")

    def __init__(self, bid: int, label: str, kind: str = "stmt") -> None:
        self.bid = bid
        self.label = label
        self.kind = kind  # entry | exit | raise | stmt | handler | cleanup | finally
        self.stmts: list[ast.AST] = []
        self.nodes: list[ast.AST] = []
        self.succ: list[tuple["Block", str]] = []
        self.pred: list[tuple["Block", str]] = []

    @property
    def stmt(self) -> Optional[ast.AST]:
        return self.stmts[0] if self.stmts else None

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    @property
    def has_yield(self) -> bool:
        """A generator suspension point at the function's own level."""
        for part in self.nodes:
            for sub in _walk_own(part):
                if isinstance(sub, (ast.Yield, ast.YieldFrom, ast.Await)):
                    return True
        return False

    @property
    def can_raise(self) -> bool:
        if self.kind in ("entry", "exit", "raise"):
            return False
        for part in self.nodes:
            if isinstance(part, _RAISING_EXPRS):
                return True
            for sub in _walk_own(part):
                if isinstance(sub, _RAISING_EXPRS):
                    return True
        return self.kind == "handler" or isinstance(
            self.stmt, (ast.Raise, ast.Assert)
        )

    def walk_nodes(self) -> Iterable[ast.AST]:
        """All AST nodes evaluated in this block (own nesting level)."""
        for part in self.nodes:
            yield from _walk_own(part)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.label} ({self.kind})>"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: FuncNode) -> None:
        self.func = func
        self.blocks: list[Block] = []
        self._labels: dict[str, int] = {}
        self._by_stmt: dict[int, Block] = {}
        self.entry = self.new_block("entry", kind="entry")
        self.exit = self.new_block("exit", kind="exit")
        self.raise_exit = self.new_block("raise", kind="raise")

    # -- construction ------------------------------------------------------
    def new_block(self, label: str, kind: str = "stmt") -> Block:
        # Disambiguate labels (two statements can share a line only in
        # pathological one-liners, but synthetic blocks reuse lines).
        n = self._labels.get(label, 0)
        self._labels[label] = n + 1
        if n:
            label = f"{label}.{n}"
        b = Block(len(self.blocks), label, kind)
        self.blocks.append(b)
        return b

    def add_edge(self, src: Block, dst: Block, kind: str = "next") -> None:
        if (dst, kind) not in src.succ:
            src.succ.append((dst, kind))
            dst.pred.append((src, kind))

    def map_stmt(self, stmt: ast.AST, block: Block) -> None:
        self._by_stmt[id(stmt)] = block

    # -- queries -----------------------------------------------------------
    def block_of(self, stmt: ast.AST) -> Optional[Block]:
        return self._by_stmt.get(id(stmt))

    def edge_set(self) -> set[tuple[str, str, str]]:
        """``{(src_label, dst_label, kind)}`` — the hand-checkable view."""
        out: set[tuple[str, str, str]] = set()
        for b in self.blocks:
            for dst, kind in b.succ:
                out.add((b.label, dst.label, kind))
        return out

    @property
    def yield_blocks(self) -> list[Block]:
        return [b for b in self.blocks if b.has_yield]

    def find_path(
        self,
        start: Block,
        goals: "Iterable[Block] | Block",
        avoid: Optional[Callable[[Block], bool]] = None,
    ) -> Optional[list[Block]]:
        """A path from ``start`` to any goal block, never *traversing* a
        block where ``avoid`` holds (``start`` itself is exempt; a goal
        is accepted before its ``avoid`` status is consulted).  Returns
        the block list including both endpoints, or ``None``.
        Deterministic: successors are explored in insertion order.
        """
        goal_set = {goals} if isinstance(goals, Block) else set(goals)
        if start in goal_set:
            return [start]
        seen = {start}
        stack: list[tuple[Block, list[Block]]] = [(start, [start])]
        while stack:
            block, path = stack.pop()
            for dst, _kind in reversed(block.succ):
                if dst in goal_set:
                    return path + [dst]
                if dst in seen:
                    continue
                if avoid is not None and avoid(dst):
                    continue
                seen.add(dst)
                stack.append((dst, path + [dst]))
        return None

    def reachable_without(
        self,
        start: Block,
        avoid: Optional[Callable[[Block], bool]] = None,
    ) -> list[Block]:
        """All blocks reachable from ``start`` without traversing an
        avoided block (``start`` excluded from the result)."""
        seen = {start}
        out: list[Block] = []
        stack = [start]
        while stack:
            block = stack.pop()
            for dst, _kind in reversed(block.succ):
                if dst in seen:
                    continue
                seen.add(dst)
                if avoid is not None and avoid(dst):
                    continue
                out.append(dst)
                stack.append(dst)
        return out


# -- exception-context frames ------------------------------------------------


class _HandlerFrame:
    """A ``try`` with except clauses: raising blocks jump to the handler
    entries; the last entry leaks outward unless it is a catch-all."""

    __slots__ = ("entries", "catch_all")

    def __init__(self, entries: list[Block], catch_all: bool) -> None:
        self.entries = entries
        self.catch_all = catch_all


class _FinallyFrame:
    """A pending ``finally`` body.  Continuations accumulate while the
    protected region builds; the body is built once and wired to every
    continuation afterwards."""

    __slots__ = ("entry", "continuations", "frontier")

    def __init__(self, entry: Block) -> None:
        self.entry = entry
        #: (target, kind) pairs; target is a Block or a routing token
        #: ("exc", stack_tuple) / ("break"|"continue", loop_frame).
        self.continuations: list[tuple[object, str]] = []
        self.frontier: list[tuple[Block, str]] = []


class _CleanupFrame:
    """A ``with`` body: every exception passes its cleanup block."""

    __slots__ = ("block",)

    def __init__(self, block: Block) -> None:
        self.block = block


class _LoopFrame:
    __slots__ = ("head", "break_frontier", "depth")

    def __init__(self, head: Block, depth: int) -> None:
        self.head = head
        self.break_frontier: list[tuple[Block, str]] = []
        self.depth = depth  # exception-stack depth at loop entry


_Frontier = list  # list[tuple[Block, str]]


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.stack: list[object] = []  # _HandlerFrame | _FinallyFrame | _CleanupFrame
        self.loops: list[_LoopFrame] = []

    # -- frontier plumbing -------------------------------------------------
    def _connect(self, frontier: _Frontier, block: Block) -> None:
        for src, kind in frontier:
            self.cfg.add_edge(src, block, kind)

    def _stmt_block(self, stmt: ast.stmt, frontier: _Frontier, nodes=None) -> Block:
        b = self.cfg.new_block(f"L{stmt.lineno}")
        b.stmts = [stmt]
        b.nodes = list(nodes) if nodes is not None else [stmt]
        self.cfg.map_stmt(stmt, b)
        self._connect(frontier, b)
        if b.can_raise:
            self._exc_route(b, tuple(self.stack))
        return b

    # -- exception routing -------------------------------------------------
    def _exc_route(self, src: Block, stack: tuple) -> None:
        """Wire ``src``'s exception edge through the given context
        stack (innermost last)."""
        for i in range(len(stack) - 1, -1, -1):
            frame = stack[i]
            if isinstance(frame, _HandlerFrame):
                for entry in frame.entries:
                    self.cfg.add_edge(src, entry, "exc")
                return
            if isinstance(frame, _FinallyFrame):
                self.cfg.add_edge(src, frame.entry, "exc")
                frame.continuations.append((("exc", stack[:i]), "exc"))
                return
            if isinstance(frame, _CleanupFrame):
                self.cfg.add_edge(src, frame.block, "exc")
                return
        self.cfg.add_edge(src, self.cfg.raise_exit, "exc")

    def _unwind(self, block: Block, target: object, kind: str) -> None:
        """Route a ``return``/``break``/``continue`` from ``block`` to
        ``target`` through every enclosing finally/cleanup (for break
        and continue, only frames inside the loop)."""
        depth0 = 0
        if isinstance(target, tuple) and target[0] in ("break", "continue"):
            depth0 = target[1].depth
        frontier: _Frontier = [(block, kind)]
        for i in range(len(self.stack) - 1, depth0 - 1, -1):
            frame = self.stack[i]
            if isinstance(frame, _FinallyFrame):
                self._connect(frontier, frame.entry)
                frame.continuations.append((self._strip(target), kind))
                return
            if isinstance(frame, _CleanupFrame):
                self._connect(frontier, frame.block)
                frontier = [(frame.block, kind)]
        self._deliver(frontier, self._strip(target), kind)

    @staticmethod
    def _strip(target: object) -> object:
        return target

    def _deliver(self, frontier: _Frontier, target: object, kind: str) -> None:
        if isinstance(target, Block):
            self._connect(frontier, target)
        elif isinstance(target, tuple) and target[0] == "exc":
            for src, _k in frontier:
                self._exc_route(src, target[1])
        elif isinstance(target, tuple) and target[0] == "break":
            target[1].break_frontier.extend(frontier)
        elif isinstance(target, tuple) and target[0] == "continue":
            for src, _k in frontier:
                self.cfg.add_edge(src, target[1].head, "back")
        else:  # pragma: no cover - defensive
            raise AssertionError(f"bad routing target {target!r}")

    # -- statement dispatch ------------------------------------------------
    def body(self, stmts: Iterable[ast.stmt], frontier: _Frontier) -> _Frontier:
        for stmt in stmts:
            if not frontier:
                break  # unreachable tail (after return/raise/...)
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, node: ast.stmt, frontier: _Frontier) -> _Frontier:
        if isinstance(node, ast.If):
            return self._if(node, frontier)
        if isinstance(node, (ast.While,)):
            return self._while(node, frontier)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return self._for(node, frontier)
        if isinstance(node, ast.Try):
            return self._try(node, frontier)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return self._with(node, frontier)
        if isinstance(node, ast.Return):
            b = self._stmt_block(node, frontier)
            self._unwind(b, self.cfg.exit, "next")
            return []
        if isinstance(node, ast.Raise):
            b = self._stmt_block(node, frontier)
            # can_raise already routed the edge; a bare block (raise of
            # a plain name) still must leave exceptionally.
            if not b.can_raise:
                self._exc_route(b, tuple(self.stack))
            return []
        if isinstance(node, ast.Break):
            b = self._stmt_block(node, frontier)
            self._unwind(b, ("break", self.loops[-1]), "next")
            return []
        if isinstance(node, ast.Continue):
            b = self._stmt_block(node, frontier)
            self._unwind(b, ("continue", self.loops[-1]), "back")
            return []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Binds a name; the body runs elsewhere.  Decorators and
            # defaults do evaluate here.
            nodes = list(node.decorator_list)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nodes += list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
            b = self._stmt_block(node, frontier, nodes=nodes)
            return [(b, "next")]
        b = self._stmt_block(node, frontier)
        return [(b, "next")]

    # -- compound statements ----------------------------------------------
    def _if(self, node: ast.If, frontier: _Frontier) -> _Frontier:
        test = self._stmt_block(node, frontier, nodes=[node.test])
        out = self.body(node.body, [(test, "next")])
        if node.orelse:
            out = out + self.body(node.orelse, [(test, "next")])
        else:
            out = out + [(test, "next")]
        return out

    def _while(self, node: ast.While, frontier: _Frontier) -> _Frontier:
        head = self._stmt_block(node, frontier, nodes=[node.test])
        always = isinstance(node.test, ast.Constant) and bool(node.test.value)
        loop = _LoopFrame(head, len(self.stack))
        self.loops.append(loop)
        body_out = self.body(node.body, [(head, "next")])
        for src, _k in body_out:
            self.cfg.add_edge(src, head, "back")
        self.loops.pop()
        out: _Frontier = list(loop.break_frontier)
        if not always:
            if node.orelse:
                out += self.body(node.orelse, [(head, "next")])
            else:
                out += [(head, "next")]
        return out

    def _for(self, node: "ast.For | ast.AsyncFor", frontier: _Frontier) -> _Frontier:
        head = self._stmt_block(node, frontier, nodes=[node.iter, node.target])
        loop = _LoopFrame(head, len(self.stack))
        self.loops.append(loop)
        body_out = self.body(node.body, [(head, "next")])
        for src, _k in body_out:
            self.cfg.add_edge(src, head, "back")
        self.loops.pop()
        out: _Frontier = list(loop.break_frontier)
        if node.orelse:
            out += self.body(node.orelse, [(head, "next")])
        else:
            out += [(head, "next")]
        return out

    def _with(self, node: "ast.With | ast.AsyncWith", frontier: _Frontier) -> _Frontier:
        nodes: list[ast.AST] = []
        for item in node.items:
            nodes.append(item.context_expr)
            if item.optional_vars is not None:
                nodes.append(item.optional_vars)
        header = self._stmt_block(node, frontier, nodes=nodes)
        cleanup = self.cfg.new_block(f"W{node.lineno}", kind="cleanup")
        cleanup.stmts = [node]
        self.stack.append(_CleanupFrame(cleanup))
        body_out = self.body(node.body, [(header, "next")])
        self.stack.pop()
        self._connect(body_out, cleanup)
        # __exit__ re-raises anything it was entered with.
        self._exc_route(cleanup, tuple(self.stack))
        return [(cleanup, "next")]

    @staticmethod
    def _is_catch_all(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names = (
            [n for n in handler.type.elts]
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for n in names:
            ident = n.id if isinstance(n, ast.Name) else getattr(n, "attr", None)
            if ident in ("Exception", "BaseException"):
                return True
        return False

    def _try(self, node: ast.Try, frontier: _Frontier) -> _Frontier:
        fin: Optional[_FinallyFrame] = None
        if node.finalbody:
            fin = _FinallyFrame(self.cfg.new_block(f"F{node.lineno}", kind="finally"))
            fin.entry.stmts = [node]
            self.stack.append(fin)

        handler_entries: list[Block] = []
        for h in node.handlers:
            entry = self.cfg.new_block(f"H{h.lineno}", kind="handler")
            entry.stmts = [h]
            entry.nodes = [h.type] if h.type is not None else []
            self.cfg.map_stmt(h, entry)
            handler_entries.append(entry)

        if handler_entries:
            self.stack.append(
                _HandlerFrame(
                    handler_entries,
                    catch_all=any(self._is_catch_all(h) for h in node.handlers),
                )
            )
        body_out = self.body(node.body, frontier)
        if handler_entries:
            self.stack.pop()

        # else clause: after the body completed without an exception.
        if node.orelse:
            body_out = self.body(node.orelse, body_out)

        # handler bodies: exceptions inside them go to finally/outer.
        handler_out: _Frontier = []
        for h, entry in zip(node.handlers, handler_entries):
            handler_out += self.body(h.body, [(entry, "next")])
        if handler_entries and not self._is_catch_all(node.handlers[-1]):
            # no handler matched: keep propagating.
            self._exc_route(handler_entries[-1], tuple(self.stack))

        normal_out = body_out + handler_out
        if fin is None:
            return normal_out

        self.stack.pop()  # the finally frame
        self._connect(normal_out, fin.entry)
        fin.frontier = self.body(node.finalbody, [(fin.entry, "next")])
        # Wire the collected continuations; a finally body that
        # terminated (returned/raised) has an empty frontier and
        # swallows them all.  Block/loop targets re-unwind from here so
        # they still pass through any *outer* finally bodies; exception
        # continuations carry their own context snapshot.
        for target, kind in fin.continuations:
            for src, _k in fin.frontier:
                if isinstance(target, tuple) and target[0] == "exc":
                    self._exc_route(src, target[1])
                else:
                    self._unwind(src, target, kind)
        return list(fin.frontier)


def build_cfg(func: FuncNode) -> CFG:
    """Build the CFG of one function's own body."""
    cfg = CFG(func)
    builder = _Builder(cfg)
    out = builder.body(func.body, [(cfg.entry, "next")])
    builder._connect(out, cfg.exit)  # falling off the end returns None
    return cfg
