"""F4xx resilience rules: fault-path hygiene in action providers.

The chaos subsystem (:mod:`repro.chaos`) relies on failures *surfacing*:
an outage gate raises :class:`~repro.errors.ServiceUnavailable`, the
flow executor's retry loop catches it, charges the connect timeout, and
retries or dead-letters.  An action provider that catches these fault
signals itself and swallows them breaks the whole recovery chain — the
executor sees a healthy action where there was an outage, so nothing
retries, nothing degrades, and the run silently loses work.
"""

from __future__ import annotations

import ast

from ..analyzer import FileContext, Rule, register
from ..diagnostics import Severity

__all__ = ["SwallowedFaultSignal"]

#: Exception names the flow executor's recovery machinery must see.
_FAULT_SIGNALS = frozenset({"ServiceUnavailable", "FlowError", "ActionTimeout"})


def _caught_names(type_node: ast.AST) -> set[str]:
    names: set[str] = set()
    nodes = (
        list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
    )
    for n in nodes:
        if isinstance(n, ast.Name):
            names.add(n.id)
        elif isinstance(n, ast.Attribute):
            names.add(n.attr)
    return names


def _is_provider_class(cls: ast.ClassDef) -> bool:
    """Heuristic for "this class is an action provider": declares an
    ``input_schema`` or implements both ``run`` and ``status`` (the
    :class:`~repro.flows.ActionProvider` protocol), or says so by name."""
    if cls.name.endswith("ActionProvider") or cls.name.endswith("Provider"):
        return True
    methods: set[str] = set()
    has_schema = False
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "input_schema":
                    has_schema = True
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "input_schema"
            ):
                has_schema = True
    return has_schema or {"run", "status"} <= methods


def _records_or_escalates(handler: ast.ExceptHandler) -> bool:
    """Does the handler body do *anything* observable with the fault?

    Observable means: re-raising, returning a value, calling anything
    (logging, recording a span, charging a timeout...), or writing the
    error into state (an attribute/subscript assignment).  A body of
    ``pass``, bare ``continue``, or plain local assignments is silent.
    """
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Return) and node.value is not None:
                return True
            if isinstance(node, (ast.Call, ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        return True
    return False


@register
class SwallowedFaultSignal(Rule):
    """F405: an action provider catches a fault signal
    (ServiceUnavailable / FlowError / ActionTimeout) and silently drops
    it, hiding outages from the flow executor's retry machinery."""

    rule_id = "F405"
    severity = Severity.ERROR
    summary = "action provider swallows ServiceUnavailable/FlowError"
    interests = (ast.ExceptHandler,)

    def visit(self, ctx: FileContext, node: ast.ExceptHandler) -> None:
        if node.type is None:
            return  # bare except: S203's business
        caught = _caught_names(node.type) & _FAULT_SIGNALS
        if not caught:
            return
        # Only inside provider-ish classes: the executor owns retry
        # semantics for these, so a provider intercepting them breaks
        # the contract.  Elsewhere (the executor itself, the chaos
        # controller, tests) catching them is the whole point.
        cls = self._enclosing_class(ctx, node)
        if cls is None or not _is_provider_class(cls):
            return
        if _records_or_escalates(node):
            return
        names = "/".join(sorted(caught))
        ctx.report(
            self,
            node,
            f"except {names} with a silent body inside provider "
            f"{cls.name!r} hides the outage from the flow executor — "
            f"record it in the action status or re-raise",
        )

    @staticmethod
    def _enclosing_class(
        ctx: FileContext, node: ast.AST
    ) -> "ast.ClassDef | None":
        current: "ast.AST | None" = node
        while current is not None:
            current = ctx.parent(current)
            if isinstance(current, ast.ClassDef):
                return current
        return None
