"""F4xx rules: whole-flow dataflow analysis over payload schemas.

The F3xx pack proves a literal flow's *state graph* is sound; this pack
proves its *payloads* are.  Every action provider declares a literal
``input_schema``/``output_schema`` (see :mod:`repro.flows.action`), and
the one static registry scan (:func:`repro.lint.discover_provider_schemas`)
makes those contracts visible here.  ``F401`` then symbolically executes
each literal :class:`~repro.flows.FlowDefinition` state by state,
propagating the set of payload keys every completed state makes
available, so a ``$.states.X.key`` template that no reachable upstream
state can have produced is rejected at review time — the silent
payload-shape drift that otherwise only surfaces mid-campaign.  ``F402``
checks every literal :class:`~repro.flows.FlowState` (including
fragments inside Gladier tools) against its provider's input schema;
``F403`` flags keys bound to conflicting types, both across the dataflow
(a ``bool`` payload feeding a ``str`` parameter) and within one
parameters literal (a duplicate key overwriting an earlier one);
``F404`` enforces that provider classes declare their schemas at all.

As everywhere in the analyzer, only what is certain is reported:
dynamic state names, f-string templates, and computed parameter dicts
are skipped, and references whose provider has no declared schema are
given the benefit of the doubt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from ..analyzer import FileContext, Rule, register
from ..config import ProviderSchema, _class_literal_assign, _literal_str_dict
from ..diagnostics import Severity
from .flowdef import (
    LiteralState,
    chain_order,
    parse_literal_definition,
)

__all__ = [
    "DanglingPayloadReference",
    "UndeclaredParameter",
    "PayloadTypeConflict",
    "UndeclaredProviderSchema",
    "TemplateRef",
]

#: Inferable types of literal parameter values (template strings are
#: classified separately).  ``bool`` must be tested before ``int``.
_CONST_TYPES = ((bool, "bool"), (str, "str"), (int, "int"), (float, "float"))


def _value_type(node: ast.AST) -> Optional[str]:
    """The schema type of a literal expression, ``None`` when dynamic."""
    if isinstance(node, ast.Constant):
        for pytype, name in _CONST_TYPES:
            if isinstance(node.value, pytype):
                return name
        return None
    if isinstance(node, ast.Dict):
        return "dict"
    if isinstance(node, (ast.List, ast.Tuple)):
        return "list"
    return None


def _numeric(tp: str) -> bool:
    return tp in ("int", "float", "number")


def _compatible(declared: Optional[str], actual: Optional[str]) -> bool:
    """Whether an inferred type satisfies a declared one (unknown and
    ``any`` always do; ``int``/``float``/``number`` inter-match)."""
    if declared is None or actual is None:
        return True
    if declared == "any" or actual == "any":
        return True
    if declared == actual:
        return True
    return _numeric(declared) and _numeric(actual)


@dataclass(frozen=True)
class TemplateRef:
    """One literal ``$.`` template string inside a parameters expression."""

    node: ast.AST  # the Constant carrying the string
    text: str  # the full template, e.g. "$.states.Analyze.output"
    root: str  # first path segment ("input", "states", ...)
    state: Optional[str] = None  # for $.states refs: the state name
    key: Optional[str] = None  # first payload key after the state, if any


def iter_template_refs(parameters: ast.AST) -> Iterator[TemplateRef]:
    """All literal ``$.`` template strings nested in ``parameters``
    (``$$.`` escapes are literals, not references)."""
    for sub in ast.walk(parameters):
        if not (isinstance(sub, ast.Constant) and isinstance(sub.value, str)):
            continue
        text = sub.value
        if not text.startswith("$.") or text.startswith("$$."):
            continue
        parts = text[2:].split(".")
        if not parts or not parts[0]:
            continue
        state = parts[1] if parts[0] == "states" and len(parts) > 1 else None
        key = parts[2] if state is not None and len(parts) > 2 else None
        yield TemplateRef(node=sub, text=text, root=parts[0], state=state, key=key)


def _ref_type(
    ref: TemplateRef, produced: Mapping[str, Optional[Mapping[str, str]]]
) -> Optional[str]:
    """The declared type a ``$.states.X.key`` reference resolves to, or
    ``None`` when unknowable (``$.input``, undeclared schema, deep path
    beyond the first key, refs F303 already rejects)."""
    if ref.state is None or ref.state not in produced:
        return None
    schema = produced[ref.state]
    if schema is None:
        return None
    if ref.key is None:
        return "dict"  # the whole result payload
    if ref.text.count(".") > 3:
        return None  # deeper than states.<X>.<key>: not declared
    return schema.get(ref.key)


class _FlowDataflow:
    """Shared symbolic execution of one literal flow definition.

    Walks states in execution order, recording each completed state's
    declared ``output_schema`` as the payload available downstream, and
    accumulates findings tagged by kind so F401 and F403 can each report
    their own."""

    def __init__(
        self,
        start_at: Optional[str],
        states: list[LiteralState],
        ctx: FileContext,
    ) -> None:
        self.findings: list[tuple[str, ast.AST, str]] = []
        order = chain_order(start_at, states)
        by_name = {s.name: s for s in states}
        names = {s.name for s in states}
        #: state name -> declared output schema (None = undeclared)
        produced: dict[str, Optional[Mapping[str, str]]] = {}
        for name in order:
            state = by_name[name]
            schema = ctx.config.provider_schema(state.provider or "")
            if state.parameters is not None:
                self._check_references(state, names, produced)
                if schema is not None:
                    self._check_types(state, schema, produced)
            produced[name] = schema.output_schema if schema is not None else None

    def _check_references(
        self,
        state: LiteralState,
        names: set,
        produced: Mapping[str, Optional[Mapping[str, str]]],
    ) -> None:
        for ref in iter_template_refs(state.parameters):
            if ref.root not in ("input", "states"):
                self.findings.append(
                    (
                        "dangling-root",
                        ref.node,
                        f"state {state.name!r} references {ref.text!r}, but the "
                        f"run context only exposes '$.input' and '$.states' — "
                        f"no state can produce root {ref.root!r}",
                    )
                )
                continue
            if ref.state is None or ref.state not in produced:
                # $.input.* is opaque flow input; refs to unknown or
                # not-yet-run states are F303's findings.
                continue
            schema = produced[ref.state]
            if schema is not None and ref.key is not None and ref.key not in schema:
                self.findings.append(
                    (
                        "dangling-key",
                        ref.node,
                        f"state {state.name!r} references {ref.text!r}, but "
                        f"upstream state {ref.state!r} only produces keys "
                        f"{sorted(schema)}",
                    )
                )

    def _check_types(
        self,
        state: LiteralState,
        schema: ProviderSchema,
        produced: Mapping[str, Optional[Mapping[str, str]]],
    ) -> None:
        if not isinstance(state.parameters, ast.Dict):
            return
        for key_node, value_node in zip(state.parameters.keys, state.parameters.values):
            if not (isinstance(key_node, ast.Constant) and isinstance(key_node.value, str)):
                continue
            declared = schema.param_type(key_node.value)
            if declared is None:
                continue  # unknown parameter: F402's finding
            if not (
                isinstance(value_node, ast.Constant)
                and isinstance(value_node.value, str)
                and value_node.value.startswith("$.")
                and not value_node.value.startswith("$$.")
            ):
                continue  # literal values are F403's FlowState-level check
            refs = list(iter_template_refs(value_node))
            if not refs:
                continue
            actual = _ref_type(refs[0], produced)
            if not _compatible(declared, actual):
                self.findings.append(
                    (
                        "type-conflict",
                        value_node,
                        f"state {state.name!r} binds parameter "
                        f"{key_node.value!r} (declared {declared!r}) to "
                        f"{refs[0].text!r}, which upstream declares as "
                        f"{actual!r}",
                    )
                )


def _flow_findings(ctx: FileContext, node: ast.Call) -> Optional[_FlowDataflow]:
    parsed = parse_literal_definition(node)
    if parsed is None:
        return None
    start_at, states = parsed
    return _FlowDataflow(start_at, states, ctx)


@register
class DanglingPayloadReference(Rule):
    """F401: a ``$.`` template reference that no reachable upstream state
    can have produced — the step deploys, then every run dies resolving
    its parameters (or worse, resolves against drifted payload shapes)."""

    rule_id = "F401"
    severity = Severity.ERROR
    summary = "$. template references a payload no upstream state produces"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        flow = _flow_findings(ctx, node)
        if flow is None:
            return
        for kind, ref_node, message in flow.findings:
            if kind in ("dangling-root", "dangling-key"):
                ctx.report(self, ref_node, message)


@register
class UndeclaredParameter(Rule):
    """F402: a literal FlowState invoking its provider with parameters
    outside the declared input schema, or missing required ones.  Runs on
    every literal FlowState — inside full definitions and inside Gladier
    tool fragments alike."""

    rule_id = "F402"
    severity = Severity.ERROR
    summary = "FlowState parameters violate the provider's input schema"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        state = _literal_flowstate(node)
        if state is None:
            return
        provider, params = state
        schema = ctx.config.provider_schema(provider)
        if schema is None or schema.input_schema is None:
            return  # unknown provider is F304; undeclared schema is F404
        literal_keys: set[str] = set()
        any_dynamic = False
        for key_node in params.keys:
            if isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
                literal_keys.add(key_node.value)
            else:
                any_dynamic = True
        for key in sorted(literal_keys - schema.accepted_params):
            ctx.report(
                self,
                node,
                f"provider {provider!r} does not accept parameter {key!r} "
                f"(declared: {sorted(schema.accepted_params)})",
            )
        if not any_dynamic:
            for key in sorted(schema.required_params - literal_keys):
                ctx.report(
                    self,
                    node,
                    f"provider {provider!r} requires parameter {key!r}, "
                    f"which this state never supplies",
                )


@register
class PayloadTypeConflict(Rule):
    """F403: a payload key bound to a conflicting type — a literal value
    of the wrong type for its declared parameter, a ``$.states`` payload
    whose declared type conflicts with the consuming parameter, or a
    duplicate key inside one parameters literal silently overwriting an
    earlier binding."""

    rule_id = "F403"
    severity = Severity.ERROR
    summary = "payload key bound/overwritten with a conflicting type"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        # Whole-flow pass: template-derived types through the dataflow.
        flow = _flow_findings(ctx, node)
        if flow is not None:
            for kind, ref_node, message in flow.findings:
                if kind == "type-conflict":
                    ctx.report(self, ref_node, message)
            return
        # Per-state pass: literal values and duplicate keys.
        state = _literal_flowstate(node)
        if state is None:
            return
        provider, params = state
        schema = ctx.config.provider_schema(provider)
        seen: dict[str, ast.AST] = {}
        for key_node, value_node in zip(params.keys, params.values):
            if not (isinstance(key_node, ast.Constant) and isinstance(key_node.value, str)):
                continue
            key = key_node.value
            if key in seen:
                first_tp = _value_type(seen[key]) or "dynamic"
                second_tp = _value_type(value_node) or "dynamic"
                conflict = (
                    f" ({first_tp!r} overwritten with {second_tp!r})"
                    if first_tp != second_tp
                    else ""
                )
                ctx.report(
                    self,
                    key_node,
                    f"duplicate parameter key {key!r} — the later binding "
                    f"silently overwrites the earlier one{conflict}",
                )
            seen[key] = value_node
            if schema is None:
                continue
            declared = schema.param_type(key)
            if declared is None:
                continue
            if isinstance(value_node, ast.Constant) and isinstance(
                value_node.value, str
            ):
                if value_node.value.startswith("$.") and not value_node.value.startswith(
                    "$$."
                ):
                    continue  # template: typed by the whole-flow pass
            actual = _value_type(value_node)
            if not _compatible(declared, actual):
                ctx.report(
                    self,
                    value_node,
                    f"parameter {key!r} of provider {provider!r} is declared "
                    f"{declared!r} but bound to a {actual!r} literal",
                )


@register
class UndeclaredProviderSchema(Rule):
    """F404: a provider-shaped class without literal
    ``input_schema``/``output_schema`` declarations is invisible to the
    F4xx dataflow pass — every flow through it goes unchecked."""

    rule_id = "F404"
    severity = Severity.ERROR
    summary = "action provider lacks literal input/output schema declarations"
    interests = (ast.ClassDef,)

    def visit(self, ctx: FileContext, node: ast.ClassDef) -> None:
        methods = {s.name for s in node.body if isinstance(s, ast.FunctionDef)}
        if not {"run", "status"} <= methods:
            return
        name_node = _class_literal_assign(node, "name")
        if not (
            isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)
        ):
            return  # not provider-shaped by the registry's definition
        missing = []
        for attr in ("input_schema", "output_schema"):
            value = _class_literal_assign(node, attr)
            if value is None or _literal_str_dict(value) is None:
                missing.append(attr)
        if missing:
            ctx.report(
                self,
                node,
                f"provider class {node.name!r} ({name_node.value!r}) declares "
                f"no literal {' or '.join(missing)} — the F4xx dataflow pass "
                f"cannot check flows through it (see repro.flows.action)",
            )


def _literal_flowstate(node: ast.Call) -> Optional[tuple[str, ast.Dict]]:
    """A ``FlowState(...)`` call with a literal provider name and a
    literal-dict ``parameters``; ``None`` otherwise."""
    func = node.func
    callee = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else None
    )
    if callee != "FlowState":
        return None
    provider_node: Optional[ast.AST] = None
    params_node: Optional[ast.AST] = None
    for kw in node.keywords:
        if kw.arg == "provider":
            provider_node = kw.value
        elif kw.arg == "parameters":
            params_node = kw.value
    if provider_node is None and len(node.args) >= 2:
        provider_node = node.args[1]
    if params_node is None and len(node.args) >= 3:
        params_node = node.args[2]
    if not (
        isinstance(provider_node, ast.Constant)
        and isinstance(provider_node.value, str)
        and isinstance(params_node, ast.Dict)
    ):
        return None
    return provider_node.value, params_node
