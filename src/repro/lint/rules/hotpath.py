"""P6xx — hot-path performance rules.

The ROADMAP's "next 10x on the hot paths" item: the DES kernel inner
loop and the instrument/analysis data plane are the two places profile
time actually goes.  These rules are warnings, not errors — they flag
*candidates* (and are scoped tightly so they stay quiet elsewhere):

* **P601** fires only inside functions marked ``# repro: hotpath`` and
  flags per-call closure creation and per-iteration container
  allocation — both showed up in the fast-path kernel work (PR 5).
* **P602** fires only under ``repro/instrument`` and ``repro/analysis``
  and flags per-element Python loops over arrays (``m[i, j]`` inside a
  ``range`` loop, chained ``[i][j]`` indexing) — whole-frame iteration
  like ``data[t]`` is deliberately not flagged.
* **P603** fires only in hot functions and flags invariant attribute
  chains (``self.a.b``) re-looked-up on every iteration of a yield-free
  loop — the classic hoist-to-local before a kernel loop.

The ``# repro: hotpath`` marker goes on the ``def`` line, the line
above it, or the first body line.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..analyzer import FileContext, Rule, register
from ..diagnostics import Severity

__all__ = ["HotpathAllocation", "PerElementArrayLoop", "InvariantLoopLookup"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_DATA_PLANE_DIRS = ("instrument", "analysis")


def _walk_own_level(node: ast.AST) -> Iterable[ast.AST]:
    stack = list(ast.iter_child_nodes(node))
    while stack:
        n = stack.pop()
        if isinstance(n, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
            yield n  # the binding is visible; the body is another frame
            continue
        yield n
        stack.extend(ast.iter_child_nodes(n))


def _in_data_plane(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return any(d in parts for d in _DATA_PLANE_DIRS)


@register
class HotpathAllocation(Rule):
    """Allocation/closure creation inside ``# repro: hotpath`` code."""

    rule_id = "P601"
    severity = Severity.WARNING
    summary = "allocation or closure creation in a hotpath function"
    interests = _FUNC_NODES

    def visit(self, ctx: FileContext, fn: ast.AST) -> None:
        if not ctx.is_hotpath(fn):
            return
        for node in _walk_own_level(fn):
            if isinstance(node, _FUNC_NODES + (ast.Lambda,)):
                what = (
                    "lambda"
                    if isinstance(node, ast.Lambda)
                    else f"nested def '{node.name}'"
                )
                ctx.report(
                    self,
                    node,
                    f"{what} is created on every call of a hotpath "
                    "function — hoist it to module or class level",
                )
        for loop in _walk_own_level(fn):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in self._loop_body_allocs(loop):
                ctx.report(
                    self,
                    node,
                    f"{self._describe(node)} allocated on every iteration "
                    "of a hot loop — hoist or reuse it",
                )

    @staticmethod
    def _loop_body_allocs(loop: ast.AST) -> list[ast.AST]:
        """Container displays/comprehensions in the *innermost* loop
        that contains them (so nested loops report each site once)."""
        out = []
        allocs = (
            ast.ListComp,
            ast.SetComp,
            ast.DictComp,
            ast.GeneratorExp,
            ast.List,
            ast.Dict,
            ast.Set,
        )
        parents: dict[int, ast.AST] = {}
        for parent in ast.walk(loop):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        body = list(loop.body)
        stack = list(body)
        while stack:
            n = stack.pop()
            if isinstance(n, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(n, allocs):
                # innermost-loop check: nearest enclosing loop is `loop`
                p = parents.get(id(n))
                nearest = None
                while p is not None:
                    if isinstance(p, (ast.For, ast.While)):
                        nearest = p
                        break
                    p = parents.get(id(p))
                if nearest is loop:
                    out.append(n)
            stack.extend(ast.iter_child_nodes(n))
        return sorted(out, key=lambda n: (n.lineno, n.col_offset))

    @staticmethod
    def _describe(node: ast.AST) -> str:
        return {
            ast.ListComp: "list comprehension",
            ast.SetComp: "set comprehension",
            ast.DictComp: "dict comprehension",
            ast.GeneratorExp: "generator expression",
            ast.List: "list literal",
            ast.Dict: "dict literal",
            ast.Set: "set literal",
        }[type(node)]


@register
class PerElementArrayLoop(Rule):
    """Per-element Python loops over arrays in the data plane — the
    vectorization candidates behind the data-plane 10x item."""

    rule_id = "P602"
    severity = Severity.WARNING
    summary = "per-element Python loop over an array (vectorize instead)"
    interests = (ast.For,)

    def visit(self, ctx: FileContext, loop: ast.For) -> None:
        if not _in_data_plane(ctx.path):
            return
        if not (
            isinstance(loop.iter, ast.Call)
            and isinstance(loop.iter.func, ast.Name)
            and loop.iter.func.id == "range"
        ):
            return
        if not isinstance(loop.target, ast.Name):
            return
        var = loop.target.id
        flagged: set[str] = set()
        for node in self._body_walk(loop):
            base = self._element_access(node, var)
            if base is not None and base not in flagged:
                # only the innermost loop reports a given access
                if self._nearest_loop(ctx, node) is loop:
                    flagged.add(base)
                    ctx.report(
                        self,
                        loop,
                        f"per-element indexing of '{base}' with loop "
                        f"variable '{var}' — replace the Python loop "
                        "with vectorized array ops",
                    )

    @staticmethod
    def _body_walk(loop: ast.For) -> Iterable[ast.AST]:
        stack = list(loop.body)
        while stack:
            n = stack.pop()
            if isinstance(n, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
                continue
            yield n
            stack.extend(ast.iter_child_nodes(n))

    @staticmethod
    def _nearest_loop(ctx: FileContext, node: ast.AST) -> Optional[ast.AST]:
        p = ctx.parent(node)
        while p is not None:
            if isinstance(p, (ast.For, ast.While)):
                return p
            p = ctx.parent(p)
        return None

    @staticmethod
    def _element_access(node: ast.AST, var: str) -> Optional[str]:
        """``base[..., var, ...]`` tuple indexing or chained
        ``base[u][var]`` — returns the base's dotted-ish name."""
        if not isinstance(node, ast.Subscript):
            return None
        sl = node.slice
        uses_var = (
            isinstance(sl, ast.Tuple)
            and any(
                isinstance(e, ast.Name) and e.id == var for e in sl.elts
            )
        ) or (
            isinstance(sl, ast.Name)
            and sl.id == var
            and isinstance(node.value, ast.Subscript)
        )
        if not uses_var:
            return None
        base = node.value
        while isinstance(base, ast.Subscript):
            base = base.value
        parts = []
        while isinstance(base, ast.Attribute):
            parts.append(base.attr)
            base = base.value
        if isinstance(base, ast.Name):
            parts.append(base.id)
            return ".".join(reversed(parts))
        return None


@register
class InvariantLoopLookup(Rule):
    """Loop-invariant attribute chains re-resolved every iteration of a
    hot, yield-free loop."""

    rule_id = "P603"
    severity = Severity.WARNING
    summary = "invariant attribute lookups inside a hot loop"
    interests = (ast.For, ast.While)

    def visit(self, ctx: FileContext, loop: ast.AST) -> None:
        fn = ctx.enclosing_function
        if fn is None or not ctx.is_hotpath(fn):
            return
        # only the outermost hot loop reports (avoid duplicate findings
        # for the same chain from every nesting level)
        p = ctx.parent(loop)
        while p is not None and p is not fn:
            if isinstance(p, (ast.For, ast.While)):
                return
            p = ctx.parent(p)
        body = self._own_body(loop)
        if any(
            isinstance(n, (ast.Yield, ast.YieldFrom, ast.Await)) for n in body
        ):
            return  # a suspension point can invalidate anything
        assigned = self._assigned_names(loop, body)
        counts: dict[str, int] = {}
        lines: dict[str, int] = {}
        for node in body:
            if not isinstance(node, ast.Attribute):
                continue
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                continue
            parent = ctx.parent(node)
            if isinstance(parent, ast.Call) and parent.func is node:
                continue  # the method name itself, not a data lookup
            if isinstance(parent, ast.Attribute) and not (
                isinstance(ctx.parent(parent), ast.Call)
                and ctx.parent(parent).func is parent
            ):
                continue  # inner link of a longer chain: count it once
            chain = self._pure_chain(node)
            if chain is None or len(chain) < 3:  # root + >= 2 attrs
                continue
            if chain[0] in assigned:
                continue
            dotted = ".".join(chain)
            counts[dotted] = counts.get(dotted, 0) + 1
            lines.setdefault(dotted, node.lineno)
        for dotted in sorted(counts):
            if counts[dotted] >= 2:
                ctx.report(
                    self,
                    loop,
                    f"'{dotted}' is looked up {counts[dotted]}x per "
                    "iteration but never changes in the loop — hoist it "
                    "to a local before the loop",
                )

    @staticmethod
    def _own_body(loop: ast.AST) -> list[ast.AST]:
        out = []
        stack = list(loop.body) + list(getattr(loop, "orelse", []))
        while stack:
            n = stack.pop()
            if isinstance(n, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
                continue
            out.append(n)
            stack.extend(ast.iter_child_nodes(n))
        return out

    @staticmethod
    def _assigned_names(loop: ast.AST, body: list[ast.AST]) -> set[str]:
        names: set[str] = set()
        if isinstance(loop, ast.For):
            for n in ast.walk(loop.target):
                if isinstance(n, ast.Name):
                    names.add(n.id)
        for node in body:
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    for n in ast.walk(t):
                        if isinstance(n, ast.Name):
                            names.add(n.id)
            elif isinstance(node, ast.For):
                for n in ast.walk(node.target):
                    if isinstance(n, ast.Name):
                        names.add(n.id)
        return names

    @staticmethod
    def _pure_chain(node: ast.Attribute) -> Optional[list[str]]:
        """``["self", "a", "b"]`` for ``self.a.b``; None if the chain
        passes through calls/subscripts."""
        parts = []
        cur: ast.AST = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(cur.id)
        return list(reversed(parts))
