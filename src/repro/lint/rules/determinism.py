"""D-rules: determinism under a seed.

Every campaign replay rests on the DES kernel seeing identical inputs,
so scheduling-relevant code must not read the wall clock, draw from
unseeded global RNGs, iterate unordered containers, or depend on object
identity or the process environment.  These rules catch each escape
hatch at the AST level.
"""

from __future__ import annotations

import ast

from ..analyzer import FileContext, Rule, register
from ..diagnostics import Severity

__all__ = [
    "WallClockCall",
    "WallSleep",
    "GlobalRandom",
    "LegacyNumpyRandom",
    "EnvVarRead",
    "UnorderedIteration",
    "IdentityOrdering",
]

#: Canonical names that read the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random entry points that ARE the seeded-stream API.
NP_RANDOM_OK = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
    }
)


@register
class WallClockCall(Rule):
    """D101: wall-clock reads make replays diverge from recorded runs."""

    rule_id = "D101"
    severity = Severity.ERROR
    summary = "wall-clock call in deterministic code"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        name = ctx.resolver.resolve_call(node)
        if name in WALL_CLOCK_CALLS:
            ctx.report(
                self,
                node,
                f"wall-clock call {name}() — simulated components must take "
                f"time from Environment.now (or an injected clock)",
            )


@register
class WallSleep(Rule):
    """D102: blocking sleeps stall the event loop and tie tests to real
    time; only the realtime pacing layer may sleep."""

    rule_id = "D102"
    severity = Severity.ERROR
    summary = "time.sleep outside the realtime allowlist"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        if ctx.resolver.resolve_call(node) == "time.sleep":
            ctx.report(
                self,
                node,
                "time.sleep() — use env.timeout(delay) in simulation code, "
                "or accept an injectable sleep callable",
            )


@register
class GlobalRandom(Rule):
    """D103: the global ``random`` module is shared mutable state; any
    import-order change silently reorders every draw."""

    rule_id = "D103"
    severity = Severity.ERROR
    summary = "unseeded global random.* call"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        name = ctx.resolver.resolve_call(node)
        if name and name.startswith("random."):
            ctx.report(
                self,
                node,
                f"{name}() draws from the global random state — use a named "
                f"stream from repro.rng.RngRegistry instead",
            )


@register
class LegacyNumpyRandom(Rule):
    """D104: legacy ``np.random.*`` functions share one hidden global
    RandomState; the repo's RngRegistry hands out independent
    ``default_rng`` streams instead."""

    rule_id = "D104"
    severity = Severity.ERROR
    summary = "legacy np.random.* instead of seeded generator streams"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        name = ctx.resolver.resolve_call(node)
        if (
            name
            and name.startswith("numpy.random.")
            and name not in NP_RANDOM_OK
        ):
            ctx.report(
                self,
                node,
                f"legacy {name}() uses numpy's hidden global state — draw "
                f"from a repro.rng stream (numpy.random.Generator) instead",
            )


@register
class EnvVarRead(Rule):
    """D105: environment variables vary across hosts and CI runs, so a
    seed no longer pins behaviour."""

    rule_id = "D105"
    severity = Severity.ERROR
    summary = "environment-variable read in simulation code"
    interests = (ast.Call, ast.Subscript)

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            name = ctx.resolver.resolve_call(node)
            if name == "os.getenv" or name == "os.environ.get":
                ctx.report(
                    self,
                    node,
                    f"{name}() — thread configuration through explicit "
                    f"parameters (campaign config), not the process env",
                )
        elif isinstance(node, ast.Subscript):
            if ctx.resolve(node.value) == "os.environ":
                ctx.report(
                    self,
                    node,
                    "os.environ[...] read — thread configuration through "
                    "explicit parameters, not the process env",
                )


def _is_unordered_expr(node: ast.AST, ctx: FileContext) -> bool:
    """Syntactically-certain unordered iterables: set literals, set
    comprehensions, and direct set()/frozenset() calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset") and node.func.id not in ctx.resolver.aliases:
            return True
    return False


@register
class UnorderedIteration(Rule):
    """D106: iterating a set (or popping dict items) yields a hash-order
    sequence; feeding that into event scheduling makes traces
    irreproducible across processes."""

    rule_id = "D106"
    severity = Severity.ERROR
    summary = "unordered set iteration / dict.popitem in scheduling code"
    interests = (ast.For, ast.comprehension, ast.Call)

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        if isinstance(node, ast.For) and _is_unordered_expr(node.iter, ctx):
            ctx.report(
                self,
                node.iter,
                "iterating a set produces hash-order results — wrap in "
                "sorted(...) before it reaches scheduling",
            )
        elif isinstance(node, ast.comprehension) and _is_unordered_expr(
            node.iter, ctx
        ):
            ctx.report(
                self,
                node.iter,
                "comprehension over a set produces hash-order results — "
                "wrap in sorted(...)",
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "popitem"
        ):
            ctx.report(
                self,
                node,
                "dict.popitem() order is an implementation detail — pop an "
                "explicit, deterministic key",
            )


@register
class IdentityOrdering(Rule):
    """D107: ``id()`` values change every run, so orderings keyed on them
    are unreproducible by construction."""

    rule_id = "D107"
    severity = Severity.ERROR
    summary = "id()-based ordering"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        # sorted(xs, key=id) / xs.sort(key=id) / min(..., key=id) ...
        for kw in node.keywords:
            if (
                kw.arg == "key"
                and isinstance(kw.value, ast.Name)
                and kw.value.id == "id"
                and "id" not in ctx.resolver.aliases
            ):
                ctx.report(
                    self,
                    node,
                    "ordering keyed on id() changes every process — sort on "
                    "a stable field (name, sequence number)",
                )
                return
        # id(a) < id(b) style ordering comparisons (== is a plain
        # identity test and stays deterministic within one run)
        parent = ctx.parent(node)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and "id" not in ctx.resolver.aliases
            and isinstance(parent, ast.Compare)
            and any(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                for op in parent.ops
            )
        ):
            ctx.report(
                self,
                node,
                "comparing id() values orders objects by memory address — "
                "use a stable key instead",
            )
