"""S-rules: discrete-event-simulation safety.

The DES kernel (:mod:`repro.sim`) has sharp edges the type system cannot
guard: a process generator must only yield :class:`~repro.sim.Event`
objects, a claimed :class:`~repro.sim.Resource` unit must be released on
every path, and exception handlers inside process generators must not
silently swallow kernel failures.  These rules check the idioms
statically, on the same "process generator" heuristic the analyzer uses
(a generator function that takes or touches an ``env``).
"""

from __future__ import annotations

import ast
from typing import Optional

from ..analyzer import FileContext, Rule, register
from ..diagnostics import Severity

__all__ = ["YieldNonEvent", "UnreleasedRequest", "SwallowedSimError"]


@register
class YieldNonEvent(Rule):
    """S201: the kernel throws at runtime when a process yields a
    non-Event; catch the obvious literal cases at review time."""

    rule_id = "S201"
    severity = Severity.ERROR
    summary = "process generator yields a non-Event literal"
    interests = (ast.Yield,)

    def visit(self, ctx: FileContext, node: ast.Yield) -> None:
        if not ctx.in_process_generator:
            return
        value = node.value
        if value is None:
            ctx.report(
                self,
                node,
                "bare `yield` in a process generator yields None, which the "
                "kernel rejects — yield an Event (e.g. env.timeout(...))",
            )
            return
        if isinstance(value, (ast.Constant, ast.Tuple, ast.List, ast.Dict, ast.Set)):
            ctx.report(
                self,
                node,
                f"process generator yields a literal "
                f"({ast.dump(value)[:40]}...) — the kernel only accepts "
                f"Event objects",
            )


def _assigned_name(call: ast.Call, ctx: FileContext) -> Optional[str]:
    """If ``call``'s value is bound to a simple local name (``req = X``
    or ``req = yield X`` styles), return that name."""
    parent = ctx.parent(call)
    if isinstance(parent, (ast.Yield, ast.Await)):
        parent = ctx.parent(parent)
    if (
        isinstance(parent, ast.Assign)
        and len(parent.targets) == 1
        and isinstance(parent.targets[0], ast.Name)
    ):
        return parent.targets[0].id
    if isinstance(parent, ast.AnnAssign) and isinstance(parent.target, ast.Name):
        return parent.target.id
    return None


@register
class UnreleasedRequest(Rule):
    """S202: a ``Resource.request()`` whose unit can never be given back
    starves every later requester.  Accepted shapes: ``with r.request()``
    blocks, an explicit ``.release()`` in the function (ideally inside
    ``try/finally``), or handing the request object off (returned or
    passed on — ownership transfer, as the scheduler does into ``Node``)."""

    rule_id = "S202"
    severity = Severity.ERROR
    summary = "Resource.request() without release on all paths"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "request"):
            return
        if node.args or node.keywords:
            return  # Resource.request() takes no arguments
        parent = ctx.parent(node)
        if isinstance(parent, ast.withitem):
            return  # `with r.request() as req:` releases on exit
        enclosing = ctx.enclosing_function
        if enclosing is None:
            return  # module level: nothing to analyze
        name = _assigned_name(node, ctx)
        if name is None:
            ctx.report(
                self,
                node,
                "request() result is discarded — the claimed unit can never "
                "be released; use `with ... .request() as req:`",
            )
            return
        if self._name_released_or_escapes(enclosing, name, node):
            return
        ctx.report(
            self,
            node,
            f"request() bound to {name!r} is never released in this "
            f"function and never handed off — use a `with` block or "
            f"try/finally with {name}.release()",
        )

    @staticmethod
    def _name_released_or_escapes(
        fn: ast.AST, name: str, request_call: ast.Call
    ) -> bool:
        for sub in ast.walk(fn):
            if sub is request_call:
                continue
            # name.release() anywhere in the function
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "release"
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == name
            ):
                return True
            # escape: returned, or passed into another call (ownership
            # transfer — e.g. stored on a Node that releases it later)
            if isinstance(sub, ast.Return) and sub.value is not None:
                for leaf in ast.walk(sub.value):
                    if isinstance(leaf, ast.Name) and leaf.id == name:
                        return True
            if isinstance(sub, ast.Call):
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    for leaf in ast.walk(arg):
                        if isinstance(leaf, ast.Name) and leaf.id == name:
                            return True
        return False


@register
class SwallowedSimError(Rule):
    """S203: a bare ``except:`` (anywhere), or an except handler inside a
    process generator that catches kernel/base exceptions and does
    nothing, hides simulation failures that should abort the run."""

    rule_id = "S203"
    severity = Severity.ERROR
    summary = "bare except / silently swallowed SimulationError"
    interests = (ast.ExceptHandler,)

    _BROAD = frozenset({"Exception", "BaseException", "SimulationError"})

    def visit(self, ctx: FileContext, node: ast.ExceptHandler) -> None:
        if node.type is None:
            ctx.report(
                self,
                node,
                "bare `except:` catches SystemExit/KeyboardInterrupt and "
                "kernel control-flow exceptions — name the exception types",
            )
            return
        if not ctx.in_process_generator:
            return
        caught = self._caught_names(node.type)
        if not (caught & self._BROAD):
            return
        if all(isinstance(stmt, ast.Pass) for stmt in node.body):
            ctx.report(
                self,
                node,
                f"except {'/'.join(sorted(caught & self._BROAD))} with a "
                f"pass-only body inside a process generator swallows "
                f"simulation failures — record the error or re-raise",
            )

    @staticmethod
    def _caught_names(type_node: ast.AST) -> set[str]:
        names: set[str] = set()
        nodes = (
            list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for n in nodes:
            if isinstance(n, ast.Name):
                names.add(n.id)
            elif isinstance(n, ast.Attribute):
                names.add(n.attr)
        return names
