"""N7xx — interprocedural ordering/taint rules.

The flow-aware layer over :mod:`repro.lint.taint`: where D1xx flags a
syntactic *call site* (``time.time()``, ``for x in a_set``), these rules
flag a *flow* — an order- or host-tainted value that traveled through
assignments, returns, and helper calls before reaching a sink that can
break bit-identical replay:

* **N701** order taint (directory listings, set/unstable-dict iteration,
  completion order) reaching a scheduling sink — ``env.schedule``
  delays/priorities, ``env.timeout`` delays, ``env.process`` arguments.
* **N702** a parallel completion-order stream (``as_completed``,
  ``imap_unordered``) merged without an ordering barrier.  The
  :mod:`repro.core.sweep` ordered-merge idiom — keyed stores
  (``out[key] = value``) or a post-loop ``sort`` — is the blessed
  pattern.
* **N703** float accumulation (``sum``/``+=``) over an unordered
  iterable, or order taint reaching a metrics/trace emission sink:
  float addition is non-associative, so iteration order perturbs the
  Table-1 numbers.  ``math.fsum`` (exactly rounded) and ``sorted(...)``
  are the fixes.
* **N704** identity/hash dependence (``id()``, ``hash()``, ``key=id``)
  reaching a tie-break key, a scheduling sink, or an emitted payload —
  object addresses and salted hashes change every process.
* **N705** a wall-clock or env-var read laundered through helper
  returns into a sim input (the interprocedural upgrade of D101/D105:
  the *read* may sit in an allow-listed bridge module, but its value
  must not steer the simulation).

All five are errors: each one is a replay-determinism hazard, and the
golden-trace suite treats any of them as a broken invariant.  Because
the engine is a may-analysis it over-approximates; a reviewed
``# repro: noqa[N70x]`` on the sink line is the escape hatch.

Every rule carries an ``example_bad``/``example_good`` pair (shown by
``python -m repro lint --explain RULE`` and pinned by the test suite:
the bad twin must fire, the good twin must stay silent).
"""

from __future__ import annotations

import ast

from ..analyzer import FileContext, Rule, register
from ..diagnostics import Severity

__all__ = [
    "OrderTaintedSchedule",
    "UnorderedCompletionMerge",
    "UnorderedFloatAccumulation",
    "IdentityOrderDependence",
    "LaunderedHostRead",
]

_SINK_DESC = {
    "schedule": "a scheduling sink (env.schedule/timeout/process)",
    "tiebreak": "a sort tie-break key",
    "emit": "a metrics/trace emission",
    "accum": "a float accumulation",
    "merge": "a completion-order merge",
}


def _flow(finding) -> str:
    kinds = "+".join(sorted(finding.kinds)) or "order"
    where = _SINK_DESC.get(finding.sink, finding.sink)
    via = f" via {finding.via}()" if finding.via else ""
    return f"{kinds}-tainted value reaches {where}{via}"


class _TaintRule(Rule):
    """Shared shape: one pass over the module's resolved findings."""

    interests = (ast.Module,)
    severity = Severity.ERROR

    def matches(self, finding) -> bool:
        raise NotImplementedError

    def message(self, finding) -> str:
        raise NotImplementedError

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        for finding in ctx.taint_findings():
            if self.matches(finding):
                ctx.report(self, finding, self.message(finding))


@register
class OrderTaintedSchedule(_TaintRule):
    """Order-dependent value steering the DES scheduler.

    A delay, priority, or process argument derived from an unsorted
    directory listing, set/unstable-dict iteration, or parallel
    completion order makes the event queue's contents depend on hash
    seeds, filesystem state, or thread timing — the trace diverges
    between runs even under a fixed seed.  Sort the source
    (``sorted(os.listdir(...))``) before it feeds the scheduler.
    """

    rule_id = "N701"
    summary = "order-tainted value reaches a scheduling sink"

    example_bad = (
        "import os\n"
        "\n"
        "def arm(env, root):\n"
        "    for offset, _name in enumerate(os.listdir(root)):\n"
        "        yield env.timeout(offset)\n"
    )
    example_good = (
        "import os\n"
        "\n"
        "def arm(env, root):\n"
        "    for offset, _name in enumerate(sorted(os.listdir(root))):\n"
        "        yield env.timeout(offset)\n"
    )

    def matches(self, finding) -> bool:
        return finding.sink == "schedule" and "order" in finding.kinds

    def message(self, finding) -> str:
        return (
            f"{_flow(finding)} — the event queue now depends on "
            "iteration/listing order; sort the source before it "
            "steers the scheduler"
        )


@register
class UnorderedCompletionMerge(_TaintRule):
    """Completion-order results merged without an ordering barrier.

    Appending or yielding from an ``as_completed``/``imap_unordered``
    loop bakes thread/process finish order into the result.  Use the
    sweep ordered-merge idiom: store into a dict keyed by submission
    index (``out[key] = value``) or sort the accumulator after the
    loop — both make the merged result a pure function of the inputs.
    """

    rule_id = "N702"
    summary = "parallel completion order merged without an ordering barrier"

    example_bad = (
        "from concurrent.futures import as_completed\n"
        "\n"
        "def gather(futures):\n"
        "    out = []\n"
        "    for fut in as_completed(futures):\n"
        "        out.append(fut.result())\n"
        "    return out\n"
    )
    example_good = (
        "from concurrent.futures import as_completed\n"
        "\n"
        "def gather(futures):\n"
        "    out = []\n"
        "    for fut in as_completed(futures):\n"
        "        out.append(fut.result())\n"
        "    out.sort()\n"
        "    return out\n"
    )

    def matches(self, finding) -> bool:
        return finding.sink == "merge"

    def message(self, finding) -> str:
        return (
            "completion-order loop accumulates results without an "
            "ordering barrier — key the store by submission index or "
            "sort the accumulator after the loop (see the sweep "
            "ordered-merge idiom)"
        )


@register
class UnorderedFloatAccumulation(_TaintRule):
    """Order-sensitive float reduction feeding results or metrics.

    ``sum`` and ``+=`` round after every addition, so the total depends
    on iteration order; over a set or an unstable dict that order is
    arbitrary, and the drift lands straight in the Table-1 numbers.
    Sort the iterable first, or use ``math.fsum`` (exactly rounded,
    order-independent).
    """

    rule_id = "N703"
    summary = "float accumulation over an unordered iterable feeds results"

    example_bad = (
        "def total(values):\n"
        "    pending = set(values)\n"
        "    return sum(pending)\n"
    )
    example_good = (
        "def total(values):\n"
        "    pending = set(values)\n"
        "    return sum(sorted(pending))\n"
    )

    def matches(self, finding) -> bool:
        return "order" in finding.kinds and finding.sink in ("accum", "emit")

    def message(self, finding) -> str:
        return (
            f"{_flow(finding)} — float addition is order-sensitive; "
            "sort the iterable or use math.fsum"
        )


@register
class IdentityOrderDependence(_TaintRule):
    """``id()``/``hash()`` values deciding order or emitted payloads.

    Object addresses are allocation-order artifacts and string hashes
    are salted per process: a tie-break key, schedule input, or trace
    field derived from them differs on every run.  Tie-break on a
    stable attribute (name, sequence number) instead.
    """

    rule_id = "N704"
    summary = "identity/hash-dependent value reaches ordering or payloads"

    example_bad = (
        "def rank(items):\n"
        "    return sorted(items, key=id)\n"
    )
    example_good = (
        "def rank(items):\n"
        "    return sorted(items, key=str)\n"
    )

    def matches(self, finding) -> bool:
        return "ident" in finding.kinds and finding.sink in (
            "tiebreak",
            "schedule",
            "emit",
        )

    def message(self, finding) -> str:
        return (
            f"{_flow(finding)} — id()/hash() values differ per process; "
            "use a stable key (name, sequence number)"
        )


@register
class LaunderedHostRead(_TaintRule):
    """Wall-clock/env read reaching a sim input through the call graph.

    D101/D105 flag the read itself, but an allow-listed bridge module
    may legitimately touch the wall clock — what must never happen is
    that value flowing onward into a delay or priority.  This rule
    follows the value through helper returns and call arguments to the
    scheduling sink.  Derive sim inputs from the seeded RNG or the sim
    clock (``env.now``) instead.
    """

    rule_id = "N705"
    summary = "laundered wall-clock/env read reaches a sim input"

    example_bad = (
        "import time\n"
        "\n"
        "def _jitter():\n"
        "    return time.time() % 1.0\n"
        "\n"
        "def launch(env):\n"
        "    yield env.timeout(_jitter())\n"
    )
    example_good = (
        "def _jitter(rng):\n"
        "    return rng.random()\n"
        "\n"
        "def launch(env, rng):\n"
        "    yield env.timeout(_jitter(rng))\n"
    )

    def matches(self, finding) -> bool:
        return finding.sink == "schedule" and "host" in finding.kinds

    def message(self, finding) -> str:
        return (
            f"{_flow(finding)} — wall-clock/env values vary per host "
            "and run; derive sim inputs from the seeded RNG or env.now"
        )
