"""R5xx — resource lifecycle rules (CFG + call-graph based).

Each rule in this pack is a reconstruction of a bug class fixed by hand
in PRs 3–4, turned into a permanent gate:

* **R501** — a scheduled event handle (``env.timeout(...)`` /
  ``env.schedule(ev)``) that can go stale without a matching
  ``Environment.cancel``: the leaked fabric completion-timer class.
* **R502** — a tracer span opened but not ``finish()``ed on some path
  to the function's exit (normal or exceptional): the open-span class
  audited in ``chaos/controller.py`` and ``obs``.
* **R503** — a temp file/fd created with a cleanup-free exception path:
  the ``CheckpointStore._flush`` class.
* **R504** — a Resource request acquired outside ``with`` and held
  across a sim-yield with an exception edge that skips the release.

All four are path queries over :mod:`repro.lint.cfg`, refined by the
interprocedural cleanup summaries in :mod:`repro.lint.callgraph`:
handing a span to a helper that is *known* to finish it is cleanup,
handing it to an unknown callee is an escape (assume the callee owns
it), and handing it to a known callee that does *neither* keeps the
leak path alive.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..analyzer import FileContext, Rule, register
from ..callgraph import _root_name
from ..cfg import CFG, Block
from ..diagnostics import Severity

__all__ = [
    "LeakedScheduledEvent",
    "SpanLeak",
    "TempFileLeak",
    "HeldRequestAcrossYield",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _walk_own_level(fn: ast.AST) -> Iterable[ast.AST]:
    """Walk a function's body without entering nested defs/classes."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_env_receiver(node: ast.AST) -> bool:
    """``env`` / ``self.env`` / ``anything.env`` — the DES environment
    by strong convention throughout this codebase."""
    return (isinstance(node, ast.Name) and node.id == "env") or (
        isinstance(node, ast.Attribute) and node.attr == "env"
    )


def _binding_of(ctx: FileContext, call: ast.Call):
    """How a call's result is bound: ``("name", n)``, ``("attr", a)``
    for ``self.a = ...``, ``("discard", None)`` for a bare expression
    statement, ``("with", None)``, or ``("other", None)`` (yielded,
    returned, passed along — someone else owns it)."""
    node: ast.AST = call
    parent = ctx.parent(node)
    # climb fluent chains: tracer.start(...).set(...).set(...)
    while isinstance(parent, (ast.Attribute, ast.Call)):
        node = parent
        parent = ctx.parent(node)
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        target = parent.targets[0]
        if isinstance(target, ast.Name):
            return "name", target.id
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return "attr", target.attr
        if isinstance(target, ast.Tuple):
            return "tuple", target
        return "other", None
    if isinstance(parent, ast.Expr):
        return "discard", None
    if isinstance(parent, ast.withitem):
        return "with", None
    return "other", None


def _stmt_block(ctx: FileContext, cfg: CFG, node: ast.AST) -> Optional[Block]:
    """The CFG block of the statement enclosing ``node``."""
    current: Optional[ast.AST] = node
    while current is not None:
        blk = cfg.block_of(current)
        if blk is not None:
            return blk
        current = ctx.parent(current)
    return None


def _leak_path(
    cfg: CFG, start: Block, goals: set[Block], avoid
) -> Optional[list[Block]]:
    """A path from just *after* ``start`` to a goal, avoiding cleanup
    blocks.  ``start``'s own exception edge is excluded: if the creating
    call itself raises, the resource never existed."""
    for dst, kind in start.succ:
        if kind == "exc":
            continue
        if dst in goals:
            return [start, dst]
        if avoid(dst):
            continue
        path = cfg.find_path(dst, goals, avoid)
        if path is not None:
            return [start] + path
    return None


def _calls_on_name(block: Block, name: str, methods: set[str]) -> bool:
    """Does the block call one of ``methods`` on ``name`` (fluent chains
    included)?"""
    for node in block.walk_nodes():
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in methods
            and _root_name(node.func.value) == name
        ):
            return True
    return False


def _name_in(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(node)
    )


def _passed_to_cleaner(
    ctx: FileContext, block: Block, name: str, kind: str
) -> Optional[bool]:
    """Is ``name`` handed to a callee in this block?  Returns ``True``
    (callee performs ``kind`` cleanup or is unknown — either way the
    path is resolved here), ``False`` (known callee that does NOT clean
    it — the leak path continues), or ``None`` (not passed at all)."""
    graph = getattr(ctx, "graph", None)
    verdict: Optional[bool] = None
    for node in block.walk_nodes():
        if not isinstance(node, ast.Call):
            continue
        for i, arg in enumerate(node.args):
            if not (isinstance(arg, ast.Name) and arg.id == name):
                continue
            # `env.cancel(x)` etc. are handled by _calls_with_arg before
            if graph is None:
                return True  # no interprocedural view: assume handoff
            kinds = graph.callee_cleans(node, ctx.resolver, i)
            if kinds is None or kind in kinds:
                return True
            verdict = False  # known callee, does not clean it up
        for kw in node.keywords:
            if kw.arg is None or not (
                isinstance(kw.value, ast.Name) and kw.value.id == name
            ):
                continue
            if graph is None:
                return True
            kinds = graph.callee_cleans_keyword(node, ctx.resolver, kw.arg)
            if kinds is None or kind in kinds:
                return True
            verdict = False
    return verdict


def _calls_with_arg(block: Block, name: str, func_attrs: set[str]) -> bool:
    """``anything.cancel(name)`` style cleanup in this block."""
    for node in block.walk_nodes():
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in func_attrs
            and any(
                isinstance(a, ast.Name) and a.id == name for a in node.args
            )
        ):
            return True
    return False


def _escapes_in(block: Block, name: str) -> bool:
    """The handle leaves this function's custody in this block."""
    for node in block.walk_nodes():
        if isinstance(node, ast.Return) and node.value is not None:
            if _name_in(node.value, name):
                return True
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            ) and _name_in(node.value, name):
                return True
        if isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
            # yielded to a caller that now owns it (kernel or driver)
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == name
            ):
                return True
    return False


def _rebinds(block: Block, name: str) -> bool:
    for node in block.walk_nodes():
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            return True
        if isinstance(node, ast.AugAssign) and (
            isinstance(node.target, ast.Name) and node.target.id == name
        ):
            return True
    return False


# ---------------------------------------------------------------------------


@register
class LeakedScheduledEvent(Rule):
    """The PR-3 fabric bug: completion timers scheduled per flow, left
    in the queue when the flow finished early — thousands of stale
    events keeping the heap hot and ``any_of`` wakeups misfiring."""

    rule_id = "R501"
    severity = Severity.ERROR
    summary = (
        "scheduled event handle can go stale without Environment.cancel"
    )
    interests = _FUNC_NODES

    def visit(self, ctx: FileContext, fn: ast.AST) -> None:
        params = {
            a.arg
            for a in list(fn.args.posonlyargs)
            + list(fn.args.args)
            + list(fn.args.kwonlyargs)
        }
        for node in _walk_own_level(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if node.func.attr == "timeout" and _is_env_receiver(
                node.func.value
            ):
                self._check_timeout(ctx, fn, node)
            elif node.func.attr == "schedule" and _is_env_receiver(
                node.func.value
            ):
                if not node.args:
                    continue
                arg = node.args[0]
                if (
                    isinstance(arg, ast.Name)
                    and arg.id != "self"
                    and arg.id not in params
                ):
                    self._check_name(ctx, fn, node, arg.id)

    def _check_timeout(
        self, ctx: FileContext, fn: ast.AST, call: ast.Call
    ) -> None:
        how, what = _binding_of(ctx, call)
        if how == "name":
            self._check_name(ctx, fn, call, what)
        elif how == "attr":
            self._check_self_attr(ctx, fn, call, what)
        elif how == "discard":
            ctx.report(
                self,
                call,
                "scheduled event handle is dropped on the floor — it can "
                "neither be awaited nor cancelled (bind it or yield it)",
            )
        # "other"/"with"/"tuple": yielded, returned or handed off — the
        # consumer owns its lifecycle.

    def _check_name(
        self, ctx: FileContext, fn: ast.AST, call: ast.Call, name: str
    ) -> None:
        cancelled = False
        direct_yield = False
        composite_yield = False
        escapes = False
        for node in _walk_own_level(fn):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr == "cancel" and any(
                    isinstance(a, ast.Name) and a.id == name
                    for a in node.args
                ):
                    cancelled = True
                if node.func.attr == "any_of" and any(
                    _name_in(a, name) for a in node.args
                ):
                    composite_yield = True
                if node.func.attr == "all_of" and any(
                    _name_in(a, name) for a in node.args
                ):
                    # every member of an all_of is awaited to completion;
                    # there is no losing timer to cancel
                    direct_yield = True
                if node.func.attr not in (
                    "cancel",
                    "any_of",
                    "all_of",
                    "timeout",
                    "schedule",
                ) and any(
                    isinstance(a, ast.Name) and a.id == name
                    for a in node.args
                ):
                    escapes = True  # handed to another function
            elif isinstance(node, ast.Attribute) and node.attr == "processed":
                if isinstance(node.value, ast.Name) and node.value.id == name:
                    cancelled = True  # stale-check guard counts
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == name
                ):
                    direct_yield = True
            elif isinstance(node, ast.Return) and node.value is not None:
                if _name_in(node.value, name):
                    escapes = True
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ) and _name_in(node.value, name):
                    escapes = True
        if cancelled or escapes:
            return
        if composite_yield:
            ctx.report(
                self,
                call,
                f"event '{name}' is raced in any_of but never "
                "cancelled or .processed-checked — the losing timer stays "
                "scheduled (Environment.cancel it after the race)",
            )
        elif not direct_yield:
            ctx.report(
                self,
                call,
                f"scheduled event '{name}' is never awaited, cancelled, "
                "or handed off",
            )

    def _check_self_attr(
        self, ctx: FileContext, fn: ast.AST, call: ast.Call, attr: str
    ) -> None:
        # teardown may live in any method of the class: scan the
        # enclosing ClassDef syntactically, then fall back to the
        # project graph (covers split class definitions).
        cls = None
        node: Optional[ast.AST] = fn
        while node is not None:
            node = ctx.parent(node)
            if isinstance(node, ast.ClassDef):
                cls = node
                break
        cancelled = False
        if cls is not None:
            for sub in ast.walk(cls):
                if isinstance(sub, ast.Call) and isinstance(
                    sub.func, ast.Attribute
                ):
                    if sub.func.attr == "cancel":
                        if any(
                            isinstance(a, ast.Attribute)
                            and a.attr == attr
                            and isinstance(a.value, ast.Name)
                            and a.value.id == "self"
                            for a in sub.args
                        ):
                            cancelled = True
                        f = sub.func.value
                        if (
                            isinstance(f, ast.Attribute)
                            and f.attr == attr
                        ):
                            cancelled = True
                elif (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == "processed"
                    and isinstance(sub.value, ast.Attribute)
                    and sub.value.attr == attr
                ):
                    cancelled = True
        graph = getattr(ctx, "graph", None)
        if not cancelled and graph is not None and cls is not None:
            cs = graph.class_summary_by_name(cls.name)
            if cs is not None and (
                attr in cs.cancelled_attrs
                or attr in cs.processed_checked_attrs
            ):
                cancelled = True
        if not cancelled:
            ctx.report(
                self,
                call,
                f"timer stored on self.{attr} but no method of the class "
                "ever cancels or .processed-checks it — stale events "
                "accumulate in the kernel queue",
            )


@register
class SpanLeak(Rule):
    """Tracer spans must end on every path out of the function; an open
    span skews duration aggregates and pins its children forever."""

    rule_id = "R502"
    severity = Severity.ERROR
    summary = "tracer span not finished on some path to the function exit"
    interests = _FUNC_NODES

    def visit(self, ctx: FileContext, fn: ast.AST) -> None:
        cfg: Optional[CFG] = None
        for node in _walk_own_level(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "start"
                and self._is_tracer(node.func.value)
            ):
                continue
            how, what = _binding_of(ctx, node)
            if how == "discard":
                ctx.report(
                    self,
                    node,
                    "span handle is discarded at the call site — it can "
                    "never be finished",
                )
                continue
            if how != "name":
                continue  # stored/handed off: the new owner finishes it
            if cfg is None:
                cfg = ctx.cfg(fn)
            self._check_span(ctx, cfg, node, what)

    @staticmethod
    def _is_tracer(receiver: ast.AST) -> bool:
        """``tracer.start`` / ``self.tracer.start`` / ``obs.tracer.start``."""
        node = receiver
        while isinstance(node, ast.Attribute):
            if node.attr == "tracer":
                return True
            node = node.value
        return isinstance(node, ast.Name) and node.id == "tracer"

    def _check_span(
        self, ctx: FileContext, cfg: CFG, call: ast.Call, name: str
    ) -> None:
        start = _stmt_block(ctx, cfg, call)
        if start is None:
            return

        def avoid(block: Block) -> bool:
            if _calls_on_name(block, name, {"finish"}):
                return True
            if _escapes_in(block, name) or _rebinds(block, name):
                return True
            handed = _passed_to_cleaner(ctx, block, name, "finish")
            if handed is True:
                return True
            return False

        goals = {cfg.exit, cfg.raise_exit}
        path = _leak_path(cfg, start, goals, avoid)
        if path is None:
            return
        where = (
            "an exception path" if path[-1] is cfg.raise_exit else "a normal path"
        )
        via = next(
            (b.line for b in path[1:-1] if b.line), path[0].line
        )
        ctx.report(
            self,
            call,
            f"span '{name}' can reach the function exit on {where} "
            f"(via line {via}) without .finish() — close it in a "
            "try/finally",
        )


@register
class TempFileLeak(Rule):
    """The ``CheckpointStore._flush`` class: ``mkstemp`` then an
    exception before the ``os.replace`` leaves the temp file (and fd)
    behind on every crash."""

    rule_id = "R503"
    severity = Severity.ERROR
    summary = "temp file creation with a cleanup-free exception path"
    interests = _FUNC_NODES

    _MAKERS = {"mkstemp", "mkdtemp"}
    _CLEANERS = {"unlink", "remove", "replace", "rename", "rmtree", "rmdir"}

    def visit(self, ctx: FileContext, fn: ast.AST) -> None:
        cfg: Optional[CFG] = None
        for node in _walk_own_level(fn):
            if not (isinstance(node, ast.Call) and self._is_maker(ctx, node)):
                continue
            name = self._path_binding(ctx, node)
            if name is None:
                continue
            if cfg is None:
                cfg = ctx.cfg(fn)
            self._check(ctx, cfg, node, name)

    def _is_maker(self, ctx: FileContext, call: ast.Call) -> bool:
        resolved = ctx.resolve(call.func)
        if resolved in ("tempfile.mkstemp", "tempfile.mkdtemp"):
            return True
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in self._MAKERS
        )

    @staticmethod
    def _path_binding(ctx: FileContext, call: ast.Call) -> Optional[str]:
        how, what = _binding_of(ctx, call)
        if how == "name":
            return what
        if how == "tuple":  # fd, tmp = tempfile.mkstemp(...)
            elts = what.elts
            if len(elts) == 2 and isinstance(elts[1], ast.Name):
                return elts[1].id
        return None

    def _cleans(self, ctx: FileContext, node: ast.AST, name: str) -> bool:
        """``node`` is a call that removes/consumes the ``name`` path."""
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        tail = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if tail in self._CLEANERS and any(
            isinstance(a, ast.Name) and a.id == name for a in node.args
        ):
            return True
        return False

    def _check(
        self, ctx: FileContext, cfg: CFG, call: ast.Call, name: str
    ) -> None:
        fn = cfg.func
        # Cleanup inside *any* except/finally counts as protection, even
        # when the cleanup code itself has raise-able sub-steps (the
        # committed CheckpointStore._flush closes the fd under a nested
        # `except OSError` before the unlink; a hypothetical non-OSError
        # there is an accepted residual, not the leak class this rule
        # exists for).
        for node in _walk_own_level(fn):
            if not isinstance(node, ast.Try):
                continue
            protected = list(node.finalbody)
            for h in node.handlers:
                protected.extend(h.body)
            for stmt in protected:
                for sub in ast.walk(stmt):
                    if self._cleans(ctx, sub, name):
                        return
        start = _stmt_block(ctx, cfg, call)
        if start is None:
            return

        def avoid(block: Block) -> bool:
            if any(self._cleans(ctx, n, name) for n in block.walk_nodes()):
                return True
            if _escapes_in(block, name) or _rebinds(block, name):
                return True
            if _passed_to_cleaner(ctx, block, name, "unlink") is True:
                return True
            return False

        path = _leak_path(cfg, start, {cfg.raise_exit}, avoid)
        if path is None:
            return
        ctx.report(
            self,
            call,
            f"temp file '{name}' survives an exception raised before its "
            "cleanup — unlink it in an except/finally and re-raise",
        )


@register
class HeldRequestAcrossYield(Rule):
    """A Resource request held across a sim-yield: if the kernel throws
    into the suspended process (chaos interrupt, cancelled flow), the
    unit is never released and every later requester deadlocks."""

    rule_id = "R504"
    severity = Severity.ERROR
    summary = (
        "resource held across a sim-yield without try/finally release"
    )
    interests = _FUNC_NODES

    def visit(self, ctx: FileContext, fn: ast.AST) -> None:
        cfg: Optional[CFG] = None
        for node in _walk_own_level(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("request", "acquire")
                and not node.args
                and not node.keywords
            ):
                continue
            how, what = _binding_of(ctx, node)
            if how != "name":
                continue  # `with res.request():` is the safe form
            if cfg is None:
                cfg = ctx.cfg(fn)
            self._check(ctx, cfg, node, what)

    def _check(
        self, ctx: FileContext, cfg: CFG, call: ast.Call, name: str
    ) -> None:
        start = _stmt_block(ctx, cfg, call)
        if start is None:
            return

        def avoid(block: Block) -> bool:
            if _calls_on_name(block, name, {"release", "cancel"}):
                return True
            # NB: `yield req` is the acquisition wait, not an ownership
            # transfer — only returns/stores/handoffs count as escapes.
            for node in block.walk_nodes():
                if isinstance(node, ast.Return) and node.value is not None:
                    if _name_in(node.value, name):
                        return True
                if isinstance(node, ast.Assign):
                    if any(
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in node.targets
                    ) and _name_in(node.value, name):
                        return True
            if _rebinds(block, name):
                return True
            if _passed_to_cleaner(ctx, block, name, "release") is True:
                return True
            return False

        def foreign_yield(block: Block) -> bool:
            # the acquisition wait (`yield req`) is part of acquiring,
            # not of holding — only *other* suspension points count
            for node in block.walk_nodes():
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    if (
                        isinstance(node, ast.Yield)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == name
                    ):
                        continue
                    return True
            return False

        # Anchor the search on the suspension point itself: the request
        # is still held at every block reachable from the acquisition
        # without passing a release/escape, and it leaks if an exception
        # thrown into any such foreign yield can reach the raise exit
        # without passing a release.  (A single front-to-back path query
        # would be masked by the acquisition wait's own exception edge.)
        held = cfg.reachable_without(start, avoid)
        for block in held:
            if block is start or not foreign_yield(block):
                continue
            if cfg.find_path(block, {cfg.raise_exit}, avoid) is None:
                continue
            ctx.report(
                self,
                call,
                f"request '{name}' is held across the sim-yield at line "
                f"{block.line} and leaks if the kernel throws into the "
                "process — release it in a try/finally or use `with`",
            )
            return
