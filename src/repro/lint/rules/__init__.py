"""The rule catalog.

Importing this package registers every rule with the analyzer's global
registry.  Three packs, id-spaced by concern:

* ``D1xx`` — determinism under a seed (:mod:`.determinism`)
* ``S2xx`` — DES kernel safety (:mod:`.des_safety`)
* ``F3xx`` — flow-definition validation (:mod:`.flowdef`)
* ``F4xx`` — whole-flow payload dataflow (:mod:`.dataflow`) and
  fault-path resilience (:mod:`.resilience`)
* ``R5xx`` — resource lifecycle over the CFG/call-graph engine
  (:mod:`.lifecycle`)
* ``P6xx`` — hot-path performance candidates (:mod:`.hotpath`)
* ``N7xx`` — interprocedural ordering/host taint flows
  (:mod:`.ordering`, over :mod:`repro.lint.taint`)
"""

from __future__ import annotations

from . import (  # noqa: F401  (registration)
    dataflow,
    des_safety,
    determinism,
    flowdef,
    hotpath,
    lifecycle,
    ordering,
    resilience,
)
from .dataflow import (
    DanglingPayloadReference,
    PayloadTypeConflict,
    UndeclaredParameter,
    UndeclaredProviderSchema,
)
from .des_safety import SwallowedSimError, UnreleasedRequest, YieldNonEvent
from .determinism import (
    EnvVarRead,
    GlobalRandom,
    IdentityOrdering,
    LegacyNumpyRandom,
    UnorderedIteration,
    WallClockCall,
    WallSleep,
)
from .flowdef import (
    DanglingTransition,
    ForwardStateReference,
    UnknownProvider,
    UnreachableState,
)
from .hotpath import HotpathAllocation, InvariantLoopLookup, PerElementArrayLoop
from .lifecycle import (
    HeldRequestAcrossYield,
    LeakedScheduledEvent,
    SpanLeak,
    TempFileLeak,
)
from .ordering import (
    IdentityOrderDependence,
    LaunderedHostRead,
    OrderTaintedSchedule,
    UnorderedCompletionMerge,
    UnorderedFloatAccumulation,
)
from .resilience import SwallowedFaultSignal

__all__ = [
    "WallClockCall",
    "WallSleep",
    "GlobalRandom",
    "LegacyNumpyRandom",
    "EnvVarRead",
    "UnorderedIteration",
    "IdentityOrdering",
    "YieldNonEvent",
    "UnreleasedRequest",
    "SwallowedSimError",
    "DanglingTransition",
    "UnreachableState",
    "ForwardStateReference",
    "UnknownProvider",
    "DanglingPayloadReference",
    "UndeclaredParameter",
    "PayloadTypeConflict",
    "UndeclaredProviderSchema",
    "SwallowedFaultSignal",
    "LeakedScheduledEvent",
    "SpanLeak",
    "TempFileLeak",
    "HeldRequestAcrossYield",
    "HotpathAllocation",
    "PerElementArrayLoop",
    "InvariantLoopLookup",
    "OrderTaintedSchedule",
    "UnorderedCompletionMerge",
    "UnorderedFloatAccumulation",
    "IdentityOrderDependence",
    "LaunderedHostRead",
]
