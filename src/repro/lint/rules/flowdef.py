"""F-rules: static validation of literal flow definitions.

``FlowDefinition`` validates its state table at *construction* time, but
a flow wired at module import or deep inside a campaign only blows up
when that code path finally runs.  These rules evaluate **fully literal**
``FlowDefinition(...)``/``FlowState(...)`` constructions at review time:
dangling ``next`` targets, unreachable states, ``$.states.X`` template
paths that reference states which cannot have run yet, and provider
names absent from the action-provider registry.  Constructions with any
dynamic part (f-strings, variables, comprehensions) are skipped — the
rules only report what is certain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from ..analyzer import FileContext, Rule, register
from ..diagnostics import Severity

__all__ = [
    "DanglingTransition",
    "UnreachableState",
    "ForwardStateReference",
    "UnknownProvider",
    "LiteralState",
    "parse_literal_definition",
    "chain_order",
]


def _callee_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _kw(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _const_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@dataclass
class LiteralState:
    """A FlowState(...) call whose name/next were literal strings."""

    node: ast.Call
    name: str
    next: Optional[str]
    has_literal_next: bool  # False when `next=` was present but dynamic
    parameters: Optional[ast.AST]
    provider: Optional[str] = None  # None when absent or dynamic


def _literal_states(states_node: Optional[ast.AST]) -> Optional[list[LiteralState]]:
    """Parse a literal tuple/list of FlowState(...) calls; ``None`` when
    anything is dynamic (so callers skip the whole definition)."""
    if not isinstance(states_node, (ast.Tuple, ast.List)):
        return None
    out: list[LiteralState] = []
    for elt in states_node.elts:
        if not (isinstance(elt, ast.Call) and _callee_name(elt) == "FlowState"):
            return None
        name = _const_str(_kw(elt, "name"))
        if name is None and elt.args:
            name = _const_str(elt.args[0])
        if name is None:
            return None
        next_node = _kw(elt, "next")
        if next_node is None:
            nxt, literal_next = None, True
        elif isinstance(next_node, ast.Constant) and next_node.value is None:
            nxt, literal_next = None, True
        else:
            nxt = _const_str(next_node)
            literal_next = nxt is not None
        provider_node = _kw(elt, "provider")
        if provider_node is None and len(elt.args) >= 2:
            provider_node = elt.args[1]
        out.append(
            LiteralState(
                node=elt,
                name=name,
                next=nxt,
                has_literal_next=literal_next,
                parameters=_kw(elt, "parameters"),
                provider=_const_str(provider_node),
            )
        )
    return out


def parse_literal_definition(
    call: ast.Call,
) -> Optional[tuple[Optional[str], list[LiteralState]]]:
    if _callee_name(call) != "FlowDefinition":
        return None
    states = _literal_states(_kw(call, "states"))
    if states is None:
        return None
    return _const_str(_kw(call, "start_at")), states


def chain_order(
    start_at: Optional[str], states: list[LiteralState]
) -> list[str]:
    """State names in execution order from ``start_at`` (cycle-safe)."""
    by_name = {s.name: s for s in states}
    order: list[str] = []
    current = start_at
    while current is not None and current in by_name and current not in order:
        order.append(current)
        s = by_name[current]
        current = s.next if s.has_literal_next else None
    return order


@register
class DanglingTransition(Rule):
    """F301: a literal ``next``/``start_at`` naming a state that does not
    exist fails only when the definition is finally constructed."""

    rule_id = "F301"
    severity = Severity.ERROR
    summary = "literal FlowDefinition has a dangling next/start_at target"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        parsed = parse_literal_definition(node)
        if parsed is None:
            return
        start_at, states = parsed
        names = {s.name for s in states}
        if start_at is not None and start_at not in names:
            ctx.report(
                self,
                node,
                f"start_at={start_at!r} is not among states "
                f"{sorted(names)}",
            )
        for s in states:
            if s.has_literal_next and s.next is not None and s.next not in names:
                ctx.report(
                    self,
                    s.node,
                    f"state {s.name!r} transitions to unknown state "
                    f"{s.next!r}",
                )


@register
class UnreachableState(Rule):
    """F302: states never visited from ``start_at`` are dead weight at
    best and a mis-wired flow at worst."""

    rule_id = "F302"
    severity = Severity.ERROR
    summary = "literal FlowDefinition contains unreachable states"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        parsed = parse_literal_definition(node)
        if parsed is None:
            return
        start_at, states = parsed
        names = {s.name for s in states}
        if start_at is None or start_at not in names:
            return  # F301's finding; reachability is meaningless
        if any(s.has_literal_next and s.next is not None and s.next not in names
               for s in states):
            return  # dangling target: chain is broken, F301 reports it
        reachable = set(chain_order(start_at, states))
        for s in states:
            if s.name not in reachable:
                ctx.report(
                    self,
                    s.node,
                    f"state {s.name!r} is unreachable from start_at="
                    f"{start_at!r}",
                )


def _template_refs(parameters: ast.AST) -> list[tuple[ast.AST, str]]:
    """All literal ``$.states.<name>`` references nested in a parameters
    expression, with the node carrying each."""
    out: list[tuple[ast.AST, str]] = []
    for sub in ast.walk(parameters):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            text = sub.value
            if text.startswith("$.states."):
                rest = text[len("$.states."):]
                state = rest.split(".", 1)[0]
                if state:
                    out.append((sub, state))
    return out


@register
class ForwardStateReference(Rule):
    """F303: ``$.states.X`` parameter templates resolve against *already
    completed* steps; referencing the current or a later state can never
    resolve at run time."""

    rule_id = "F303"
    severity = Severity.ERROR
    summary = "$.states template references a state that has not run yet"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        parsed = parse_literal_definition(node)
        if parsed is None:
            return
        start_at, states = parsed
        order = chain_order(start_at, states)
        position = {name: i for i, name in enumerate(order)}
        names = {s.name for s in states}
        for s in states:
            if s.parameters is None or s.name not in position:
                continue
            for ref_node, ref in _template_refs(s.parameters):
                if ref not in names:
                    ctx.report(
                        self,
                        ref_node,
                        f"state {s.name!r} references '$.states.{ref}' but "
                        f"no state {ref!r} exists in this flow",
                    )
                elif ref not in position or position[ref] >= position[s.name]:
                    ctx.report(
                        self,
                        ref_node,
                        f"state {s.name!r} references '$.states.{ref}', "
                        f"which cannot have completed before {s.name!r} "
                        f"runs",
                    )


@register
class UnknownProvider(Rule):
    """F304: a provider name outside the action-provider registry means
    the flow deploys but every run fails at that step."""

    rule_id = "F304"
    severity = Severity.ERROR
    summary = "FlowState provider not in the provider registry"
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        if _callee_name(node) != "FlowState":
            return
        provider_node = _kw(node, "provider")
        if provider_node is None and len(node.args) >= 2:
            provider_node = node.args[1]
        provider = _const_str(provider_node)
        if provider is None:
            return
        known = ctx.config.known_providers
        if known and provider not in known:
            ctx.report(
                self,
                provider_node,
                f"provider {provider!r} is not registered "
                f"(known: {sorted(known)})",
            )
