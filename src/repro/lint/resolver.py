"""Import-aware name resolution for one module.

Rules match on **canonical dotted names** ("``time.monotonic``",
"``numpy.random.seed``"), not surface syntax, so aliases cannot dodge
them: ``import time as _t; _t.monotonic()`` and
``from time import monotonic as now; now()`` both resolve to
``time.monotonic``.  Local rebindings shadow imports — after
``time = FakeClock()``, ``time.monotonic`` no longer resolves.
"""

from __future__ import annotations

import ast
from typing import Optional

__all__ = ["ImportResolver"]


class ImportResolver:
    """Maps names in a parsed module back to canonical dotted paths.

    ``module`` (optional) is the dotted name of the module being
    analyzed (``"repro.chaos.controller"``); with it, relative imports
    resolve to absolute names too: ``from .gate import ServiceGate``
    inside ``repro.chaos.controller`` binds ``ServiceGate`` to
    ``repro.chaos.gate.ServiceGate``, so the call-graph layer sees
    intra-package edges instead of silently dropping them.  Set
    ``is_package`` when the module is a package ``__init__`` (one fewer
    level to strip).  Without ``module``, relative imports are skipped,
    matching the historical behaviour.
    """

    def __init__(
        self,
        tree: ast.AST,
        module: Optional[str] = None,
        is_package: bool = False,
    ) -> None:
        #: local alias -> canonical dotted prefix ("np" -> "numpy",
        #: "monotonic" -> "time.monotonic")
        self.aliases: dict[str, str] = {}
        self.module = module
        shadowed: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    local = a.asname or a.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds c -> a.b
                    self.aliases[local] = a.name if a.asname else a.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    prefix = self._relative_base(node.level, module, is_package)
                    if prefix is None:
                        continue  # no module context: stays unresolved
                    base = f"{prefix}.{base}" if base else prefix
                for a in node.names:
                    if a.name == "*":
                        continue
                    local = a.asname or a.name
                    self.aliases[local] = f"{base}.{a.name}"
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    if isinstance(t, ast.Name):
                        shadowed.add(t.id)
        for name in shadowed:
            self.aliases.pop(name, None)

    @staticmethod
    def _relative_base(
        level: int, module: Optional[str], is_package: bool
    ) -> Optional[str]:
        """Absolute package prefix a ``from ...x import y`` refers to.

        ``level`` dots climb ``level`` packages up from the current
        module (a package ``__init__`` already *is* its package, so it
        climbs one fewer).
        """
        if not module:
            return None
        parts = module.split(".")
        drop = level if not is_package else level - 1
        if drop >= len(parts):
            return None  # climbs above the top-level package
        return ".".join(parts[: len(parts) - drop]) if drop else module

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name for a ``Name``/``Attribute`` chain, or
        ``None`` when the root is not a recognized import."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Canonical dotted name of a call's callee."""
        return self.resolve(call.func)
