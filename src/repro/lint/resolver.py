"""Import-aware name resolution for one module.

Rules match on **canonical dotted names** ("``time.monotonic``",
"``numpy.random.seed``"), not surface syntax, so aliases cannot dodge
them: ``import time as _t; _t.monotonic()`` and
``from time import monotonic as now; now()`` both resolve to
``time.monotonic``.  Local rebindings shadow imports — after
``time = FakeClock()``, ``time.monotonic`` no longer resolves.
"""

from __future__ import annotations

import ast
from typing import Optional

__all__ = ["ImportResolver"]


class ImportResolver:
    """Maps names in a parsed module back to canonical dotted paths."""

    def __init__(self, tree: ast.AST) -> None:
        #: local alias -> canonical dotted prefix ("np" -> "numpy",
        #: "monotonic" -> "time.monotonic")
        self.aliases: dict[str, str] = {}
        shadowed: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    local = a.asname or a.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds c -> a.b
                    self.aliases[local] = a.name if a.asname else a.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: stays package-internal
                    continue
                for a in node.names:
                    if a.name == "*":
                        continue
                    local = a.asname or a.name
                    self.aliases[local] = f"{node.module}.{a.name}"
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    if isinstance(t, ast.Name):
                        shadowed.add(t.id)
        for name in shadowed:
            self.aliases.pop(name, None)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name for a ``Name``/``Attribute`` chain, or
        ``None`` when the root is not a recognized import."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Canonical dotted name of a call's callee."""
        return self.resolve(call.func)
