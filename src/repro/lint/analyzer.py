"""The analyzer framework: rule registry, AST walker, suppressions.

One :class:`Analyzer` holds a rule set and a :class:`LintConfig`; calling
:meth:`Analyzer.lint_paths` parses each ``.py`` file once, walks the tree
in source order with scope tracking, and dispatches nodes to every rule
whose ``interests`` match.  Rules are stateless visitors: all per-file
information (import resolution, parent links, enclosing-function flags)
comes through the :class:`FileContext`.

Suppressions
------------
A finding is dropped when its line carries a marker comment::

    t0 = time.time()   # repro: noqa[D101]  calibration needs wall time
    t1 = time.time()   # repro: noqa        (blanket: any rule)

when the file carries a file-level marker anywhere (typically at the
top)::

    # repro: noqa-file[D101,D102]  this module bridges to the wall clock
    # repro: noqa-file             (blanket: any rule, use sparingly)

and when the config's path-scoped allowances permit the rule for the
file (see :mod:`repro.lint.config`).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from typing import Iterable, Optional, Sequence

from .config import LintConfig
from .diagnostics import Diagnostic, Severity
from .resolver import ImportResolver

__all__ = ["Rule", "FileContext", "Analyzer", "LintStats", "register", "all_rules"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?(?:\[(?P<ids>[\w\s,]+)\])?", re.IGNORECASE
)

_HOTPATH_RE = re.compile(r"#\s*repro:\s*hotpath\b", re.IGNORECASE)

#: Bumped whenever rule logic changes in a way that invalidates cached
#: findings; part of the incremental cache's environment fingerprint.
RULES_VERSION = 4

#: rule_id -> rule class, in registration order (report order is by
#: location anyway; the dict keeps lookup and ``--select`` validation O(1)).
_REGISTRY: dict[str, type["Rule"]] = {}


def register(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to the global registry."""
    rid = cls.rule_id
    if not re.fullmatch(r"[DSFRPN]\d{3}", rid):
        raise ValueError(
            f"rule id must look like D101/S201/F301/R501/P601/N701, got {rid!r}"
        )
    if rid in _REGISTRY and _REGISTRY[rid] is not cls:
        raise ValueError(f"duplicate rule id {rid!r}")
    _REGISTRY[rid] = cls
    return cls


def all_rules() -> dict[str, type["Rule"]]:
    """The registered rule catalog (importing :mod:`repro.lint.rules`
    populates it)."""
    from . import rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


class Rule:
    """Base class for analyzer rules.

    Subclasses set ``rule_id`` (``D``/``S``/``F`` + 3 digits),
    ``severity``, a one-line ``summary``, and ``interests`` — the AST
    node types their :meth:`visit` wants to see.
    """

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""
    interests: tuple[type, ...] = ()

    def visit(self, ctx: "FileContext", node: ast.AST) -> None:
        raise NotImplementedError


class _FunctionFrame:
    """Scope info for one enclosing function during the walk."""

    __slots__ = ("node", "is_generator", "is_process")

    def __init__(self, node: ast.AST, is_generator: bool, is_process: bool) -> None:
        self.node = node
        self.is_generator = is_generator
        self.is_process = is_process


def _yields_at_level(fn: ast.AST) -> bool:
    """True if ``fn`` contains a yield at its own nesting level (i.e. it
    is a generator function, ignoring nested defs/lambdas)."""
    stack = [c for c in ast.iter_child_nodes(fn)]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # new scope: its yields are not ours
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _touches_env(fn: ast.AST) -> bool:
    """Heuristic for DES process generators: the function takes or uses
    an ``env`` (an :class:`~repro.sim.Environment` by strong convention
    throughout this codebase — ``env.timeout``, ``self.env.process``...)."""
    args = getattr(fn, "args", None)
    if args is not None:
        for a in list(args.args) + list(args.kwonlyargs) + list(args.posonlyargs):
            if a.arg == "env":
                return True
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id == "env":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "env":
            return True
    return False


class FileContext:
    """Everything a rule may ask about the file being analyzed."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        config: LintConfig,
        graph=None,
        taint=None,
    ) -> None:
        from .callgraph import module_name_for_path

        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.module_name = (
            module_name_for_path(path) if path != "<string>" else None
        )
        self.resolver = ImportResolver(
            tree,
            module=self.module_name,
            is_package=os.path.basename(path) == "__init__.py",
        )
        #: the project-wide call graph (interprocedural cleanup facts);
        #: built lazily from this file alone when no project scan ran.
        self._graph = graph
        #: the project-wide order/host taint index (same lazy contract).
        self._taint = taint
        self.diagnostics: list[Diagnostic] = []
        self._noqa, self._noqa_file = _collect_noqa(source)
        self._hotpath_lines = _collect_hotpath_lines(source)
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._function_stack: list[_FunctionFrame] = []
        self._cfgs: dict[int, "object"] = {}

    # -- scope ----------------------------------------------------------
    @property
    def enclosing_function(self) -> Optional[ast.AST]:
        return self._function_stack[-1].node if self._function_stack else None

    @property
    def in_generator(self) -> bool:
        return bool(self._function_stack) and self._function_stack[-1].is_generator

    @property
    def in_process_generator(self) -> bool:
        """Inside a generator that drives the DES kernel (yields events)."""
        return bool(self._function_stack) and self._function_stack[-1].is_process

    def parent(self, node: ast.AST, depth: int = 1) -> Optional[ast.AST]:
        """The ``depth``-th syntactic ancestor of ``node`` (1 = direct)."""
        current: Optional[ast.AST] = node
        for _ in range(depth):
            if current is None:
                return None
            current = self._parents.get(id(current))
        return current

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a ``Name``/``Attribute`` chain."""
        return self.resolver.resolve(node)

    # -- path-sensitive engine ------------------------------------------
    def cfg(self, fn: ast.AST):
        """The (memoized) control-flow graph of a function node."""
        from .cfg import build_cfg

        key = id(fn)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(fn)
        return self._cfgs[key]

    @property
    def graph(self):
        """The interprocedural :class:`~repro.lint.callgraph.ProjectGraph`.
        When the analyzer ran over a project, this covers every linted
        file; for a standalone source it covers just this module (so
        intra-file facts still propagate)."""
        if self._graph is None:
            from .callgraph import build_graph

            self._graph = build_graph(
                {self.path: (self.module_name, self.tree)}
            )
        return self._graph

    @property
    def taint(self):
        """The :class:`~repro.lint.taint.TaintIndex`.  Project-wide when
        the analyzer scanned a project; single-module for standalone
        sources (intra-file flows still resolve)."""
        if self._taint is None:
            from .taint import build_taint_index

            self._taint = build_taint_index(
                {self.path: (self.module_name, self.tree)}
            )
        return self._taint

    def taint_findings(self) -> list:
        """Resolved :class:`~repro.lint.taint.TaintFinding`\\ s for this
        file — the N7xx rules' query surface."""
        return self.taint.findings_for(self.path)

    def is_hotpath(self, fn: ast.AST) -> bool:
        """Is ``fn`` marked ``# repro: hotpath``?  The marker counts on
        the ``def`` line, the line above it, or the first body line."""
        body = getattr(fn, "body", None)
        if not body:
            return False
        lo = getattr(fn, "lineno", 0) - 1
        hi = body[0].lineno
        return any(lo <= line <= hi for line in self._hotpath_lines)

    # -- reporting ------------------------------------------------------
    def report(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> None:
        """File a diagnostic unless suppressed by noqa or path config."""
        line = getattr(node, "lineno", 1)
        if self.config.allowed_for_path(self.path, rule.rule_id):
            return
        if self._noqa_file is not None and (
            not self._noqa_file or rule.rule_id in self._noqa_file
        ):
            return
        suppressed = self._noqa.get(line)
        if suppressed is not None and (not suppressed or rule.rule_id in suppressed):
            return
        self.diagnostics.append(
            Diagnostic(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                rule_id=rule.rule_id,
                severity=severity or rule.severity,
                message=message,
            )
        )


def _collect_noqa(
    source: str,
) -> tuple[dict[int, frozenset[str]], Optional[frozenset[str]]]:
    """Line suppressions and the file-level suppression.

    Returns ``(line -> suppressed rule ids, file-level rule ids)``; an
    empty id set means "all rules", a ``None`` file-level entry means no
    ``noqa-file`` marker was present.  Multiple ``noqa-file`` markers
    union their ids (any blanket marker wins).
    """
    out: dict[int, frozenset[str]] = {}
    file_level: Optional[frozenset[str]] = None
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if not m:
                continue
            ids = m.group("ids")
            id_set = (
                frozenset(x.strip().upper() for x in ids.split(",") if x.strip())
                if ids
                else frozenset()
            )
            if m.group("file"):
                if file_level is None:
                    file_level = id_set
                elif not file_level or not id_set:
                    file_level = frozenset()  # any blanket marker wins
                else:
                    file_level |= id_set
            else:
                out[tok.start[0]] = id_set
    except tokenize.TokenError:
        pass  # a syntactically broken file already failed ast.parse
    return out, file_level


def _collect_hotpath_lines(source: str) -> frozenset[int]:
    """Lines carrying a ``# repro: hotpath`` marker comment."""
    out: set[int] = set()
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT and _HOTPATH_RE.search(tok.string):
                out.add(tok.start[0])
    except tokenize.TokenError:
        pass
    return frozenset(out)


class LintStats:
    """Per-run accounting for ``--statistics`` and the bench suite."""

    __slots__ = ("files_analyzed", "files_cached", "rule_counts",
                 "taint_recomputed")

    def __init__(self) -> None:
        self.files_analyzed = 0
        self.files_cached = 0
        self.rule_counts: dict[str, int] = {}
        #: modules whose taint summary was recomputed (vs. cache-served)
        self.taint_recomputed = 0

    @property
    def files_total(self) -> int:
        return self.files_analyzed + self.files_cached

    @property
    def cache_hit_rate(self) -> float:
        total = self.files_total
        return self.files_cached / total if total else 0.0

    def count(self, diagnostics: Iterable[Diagnostic]) -> None:
        for d in diagnostics:
            self.rule_counts[d.rule_id] = self.rule_counts.get(d.rule_id, 0) + 1

    def as_dict(self) -> dict:
        return {
            "files_total": self.files_total,
            "files_analyzed": self.files_analyzed,
            "files_cached": self.files_cached,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "taint_recomputed": self.taint_recomputed,
            "rule_counts": dict(sorted(self.rule_counts.items())),
        }


class Analyzer:
    """Run a rule set over files, sources, or directory trees."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        rules: Optional[Sequence[Rule]] = None,
    ) -> None:
        self.config = config or LintConfig()
        if rules is None:
            rules = [cls() for cls in all_rules().values()]
        self.rules = [r for r in rules if self.config.rule_enabled(r.rule_id)]
        #: accounting for the most recent lint_paths run
        self.stats = LintStats()

    # -- entry points ---------------------------------------------------
    def lint_source(
        self, source: str, path: str = "<string>", graph=None, taint=None
    ) -> list[Diagnostic]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Diagnostic(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) or 1,
                    rule_id="E000",
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        ctx = FileContext(path, source, tree, self.config, graph=graph, taint=taint)
        self._walk(ctx, tree)
        return sorted(ctx.diagnostics)

    def lint_file(self, path: str) -> list[Diagnostic]:
        with open(path, "r", encoding="utf-8") as fh:
            return self.lint_source(fh.read(), path=path)

    def lint_paths(self, paths: Iterable[str], cache=None) -> list[Diagnostic]:
        """Lint files and/or directory trees (``.py`` files, sorted walk
        order so output is stable).

        With ``cache`` (a :class:`~repro.lint.cache.LintCache`), files
        whose content hash matches a previous run under the same
        environment fingerprint are served from the cache; the caller
        is responsible for :meth:`~repro.lint.cache.LintCache.save`.
        """
        from .callgraph import build_graph, module_name_for_path
        from .taint import build_taint_index

        self.stats = LintStats()
        files: list[str] = []
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames.sort()
                    for name in sorted(filenames):
                        if name.endswith(".py"):
                            files.append(os.path.join(dirpath, name))
            else:
                files.append(path)

        sources: dict[str, str] = {}
        trees: dict[str, tuple[Optional[str], ast.Module]] = {}
        broken: dict[str, list[Diagnostic]] = {}
        for path in files:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    sources[path] = fh.read()
                trees[path] = (
                    module_name_for_path(path),
                    ast.parse(sources[path], filename=path),
                )
            except SyntaxError:
                broken[path] = self.lint_source(sources[path], path=path)
            except OSError:
                continue

        graph = build_graph(trees)
        # The taint index consumes per-module summaries keyed by content
        # hash alone, so it must be built *before* set_fingerprint (its
        # own fingerprint is part of the environment fingerprint).
        taint = build_taint_index(trees, texts=sources, cache=cache)
        self.stats.taint_recomputed = taint.recomputed
        if cache is not None:
            cache.set_fingerprint(self._fingerprint(graph, taint))

        out: list[Diagnostic] = []
        for path in files:
            if path in broken:
                out.extend(broken[path])
                self.stats.files_analyzed += 1
                continue
            if path not in sources:
                continue
            if cache is not None:
                hit = cache.get(path, sources[path])
                if hit is not None:
                    out.extend(hit)
                    self.stats.files_cached += 1
                    continue
            diags = self.lint_source(
                sources[path], path=path, graph=graph, taint=taint
            )
            if cache is not None:
                cache.put(path, sources[path], diags)
            out.extend(diags)
            self.stats.files_analyzed += 1
        result = sorted(out)
        self.stats.count(result)
        return result

    def _fingerprint(self, graph, taint=None) -> str:
        """Everything that can change a file's findings without its
        bytes changing: rule set + config + interprocedural facts
        (call-graph cleanup summaries *and* the resolved taint index)."""
        import hashlib

        h = hashlib.sha256()
        h.update(f"rules-v{RULES_VERSION};".encode())
        for r in sorted(self.rules, key=lambda r: r.rule_id):
            h.update(f"{r.rule_id}:{int(r.severity)};".encode())
        h.update(repr(sorted(self.config.select)).encode())
        h.update(repr(sorted(self.config.ignore)).encode())
        h.update(
            repr(
                sorted(
                    (pat, tuple(sorted(ids)))
                    for pat, ids in self.config.allow.items()
                )
            ).encode()
        )
        h.update(repr(sorted(self.config.provider_schemas)).encode())
        h.update(graph.fingerprint().encode())
        if taint is not None:
            h.update(taint.fingerprint().encode())
        return h.hexdigest()

    # -- walking --------------------------------------------------------
    def _walk(self, ctx: FileContext, node: ast.AST) -> None:
        is_fn = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if is_fn:
            gen = _yields_at_level(node)
            ctx._function_stack.append(
                _FunctionFrame(node, gen, gen and _touches_env(node))
            )
        for rule in self.rules:
            if isinstance(node, rule.interests):
                rule.visit(ctx, node)
        for child in ast.iter_child_nodes(node):
            self._walk(ctx, child)
        if is_fn:
            ctx._function_stack.pop()
