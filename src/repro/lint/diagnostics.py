"""Diagnostic objects emitted by the analyzer.

A :class:`Diagnostic` is one finding: a rule id (``D101``, ``S202``,
``F303``...), a severity, a location (``file:line:col``), and a
human-readable message.  Diagnostics sort by location so reports are
stable regardless of rule execution order — the analyzer itself must be
as deterministic as the code it polices.

:func:`sarif_report` renders a finding list as a SARIF 2.1.0 log so CI
systems (GitHub code scanning, Azure DevOps, ...) can surface lint and
sanitizer results as inline annotations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

__all__ = ["Severity", "Diagnostic", "sarif_report"]


class Severity(enum.IntEnum):
    """Ordered severity levels (comparable: ``ERROR > WARNING``)."""

    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return {"warn": cls.WARNING, "warning": cls.WARNING, "error": cls.ERROR}[
                text.strip().lower()
            ]
        except KeyError:
            raise ValueError(f"unknown severity: {text!r}") from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One analyzer finding, ordered by (path, line, col, rule_id)."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: RULE [severity] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> dict:
        """JSON-serializable representation (for ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Diagnostic":
        """Inverse of :meth:`as_dict` (used by the incremental cache)."""
        return cls(
            path=data["path"],
            line=int(data["line"]),
            col=int(data["col"]),
            rule_id=data["rule"],
            severity=Severity.parse(data["severity"]),
            message=data["message"],
        )


#: SARIF's result levels for our two severities.
_SARIF_LEVELS = {Severity.WARNING: "warning", Severity.ERROR: "error"}


def sarif_report(
    diagnostics: Iterable[Diagnostic],
    rule_summaries: Optional[Mapping[str, str]] = None,
    tool_name: str = "repro.lint",
) -> dict:
    """Render diagnostics as a SARIF 2.1.0 log (a JSON-serializable
    dict).  ``rule_summaries`` maps rule ids to one-line descriptions
    for the driver's rule table; ids appearing only in findings (e.g.
    the sanitizer's dynamic S9xx reports) are listed without one.
    """
    diags = sorted(diagnostics)
    seen_rules: dict[str, str] = {}
    for d in diags:
        if d.rule_id not in seen_rules:
            summary = (rule_summaries or {}).get(d.rule_id, "")
            seen_rules[d.rule_id] = summary
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://github.com/",
                        "rules": [
                            {
                                "id": rid,
                                "shortDescription": {"text": summary or rid},
                            }
                            for rid, summary in sorted(seen_rules.items())
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": d.rule_id,
                        "level": _SARIF_LEVELS[d.severity],
                        "message": {"text": d.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": d.path},
                                    "region": {
                                        "startLine": max(1, d.line),
                                        "startColumn": max(1, d.col),
                                    },
                                }
                            }
                        ],
                    }
                    for d in diags
                ],
            }
        ],
    }
