"""Diagnostic objects emitted by the analyzer.

A :class:`Diagnostic` is one finding: a rule id (``D101``, ``S202``,
``F303``...), a severity, a location (``file:line:col``), and a
human-readable message.  Diagnostics sort by location so reports are
stable regardless of rule execution order — the analyzer itself must be
as deterministic as the code it polices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Diagnostic"]


class Severity(enum.IntEnum):
    """Ordered severity levels (comparable: ``ERROR > WARNING``)."""

    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return {"warn": cls.WARNING, "warning": cls.WARNING, "error": cls.ERROR}[
                text.strip().lower()
            ]
        except KeyError:
            raise ValueError(f"unknown severity: {text!r}") from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One analyzer finding, ordered by (path, line, col, rule_id)."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: RULE [severity] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> dict:
        """JSON-serializable representation (for ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }
