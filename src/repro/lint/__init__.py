"""``repro.lint`` — determinism & flow-safety static analysis.

The whole reproduction rests on one invariant: every simulated component
is **deterministic under a seed**, so the paper's 1-hour campaigns
replay identically in milliseconds.  Nothing in Python enforces that —
one stray ``time.time()``, one unseeded ``random`` draw, one
hash-ordered ``set`` iteration in scheduling code silently corrupts
every benchmark.  This package is the enforcement: a self-contained,
stdlib-``ast``-based analyzer with three rule packs,

* **D1xx determinism** — wall-clock reads, sleeps, global RNGs,
  unordered iteration, ``id()`` ordering, env-var reads;
* **S2xx DES safety** — non-Event yields, unreleased resource requests,
  swallowed simulation errors in process generators;
* **F3xx flow validation** — dangling transitions, unreachable states,
  forward ``$.states`` template references, unknown providers in
  literal :class:`~repro.flows.FlowDefinition` constructions;

plus ``# repro: noqa[RULE-ID]`` line suppressions, path-scoped
allowances for the two files that legitimately touch the wall clock,
and a CLI (``python -m repro lint``).  A tier-1 self-check test runs it
over all of ``src/repro`` so any regression fails the ordinary pytest
run.

>>> from repro.lint import Analyzer
>>> Analyzer().lint_source("import time\\nt = time.time()\\n")[0].rule_id
'D101'
"""

from __future__ import annotations

from .analyzer import Analyzer, FileContext, Rule, all_rules, register
from .config import DEFAULT_ALLOW, LintConfig, discover_provider_names
from .diagnostics import Diagnostic, Severity
from .resolver import ImportResolver

__all__ = [
    "Analyzer",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "LintConfig",
    "DEFAULT_ALLOW",
    "discover_provider_names",
    "Diagnostic",
    "Severity",
    "ImportResolver",
]
