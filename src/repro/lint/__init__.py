"""``repro.lint`` — determinism & flow-safety static analysis.

The whole reproduction rests on one invariant: every simulated component
is **deterministic under a seed**, so the paper's 1-hour campaigns
replay identically in milliseconds.  Nothing in Python enforces that —
one stray ``time.time()``, one unseeded ``random`` draw, one
hash-ordered ``set`` iteration in scheduling code silently corrupts
every benchmark.  This package is the enforcement: a self-contained,
stdlib-``ast``-based analyzer with three rule packs,

* **D1xx determinism** — wall-clock reads, sleeps, global RNGs,
  unordered iteration, ``id()`` ordering, env-var reads;
* **S2xx DES safety** — non-Event yields, unreleased resource requests,
  swallowed simulation errors in process generators;
* **F3xx flow validation** — dangling transitions, unreachable states,
  forward ``$.states`` template references, unknown providers in
  literal :class:`~repro.flows.FlowDefinition` constructions;
* **F4xx flow dataflow** — an interprocedural symbolic execution of
  literal flow definitions that propagates each provider's declared
  ``output_schema`` through the state chain: dangling ``$.`` payload
  references, parameters outside a provider's ``input_schema``, type
  conflicts where a payload key flows into a parameter of another type,
  and providers missing schema declarations;
* **R5xx resource lifecycle** — path-sensitive leak detection over
  per-function CFGs (:mod:`.cfg`) refined by interprocedural cleanup
  summaries (:mod:`.callgraph`): scheduled events without a matching
  ``Environment.cancel``, tracer spans open on an exception edge, temp
  files with cleanup-free failure paths, resources held across
  sim-yields;
* **P6xx hot-path performance** — allocation/closure creation in
  ``# repro: hotpath`` functions, per-element array loops in the
  instrument/analysis data plane, invariant lookups in hot loops;
* **N7xx ordering taint** — an interprocedural forward taint analysis
  (:mod:`.taint`) tracking order-, host-, and identity-tainted values
  through assignments, returns, call arguments, and comprehensions to
  scheduling, tie-break, metrics, and accumulation sinks: the
  flow-aware layer that catches an unsorted ``listdir`` laundered
  through three helpers into ``env.schedule``;

plus ``# repro: noqa[RULE-ID]`` line suppressions, whole-file
``# repro: noqa-file[RULE-ID]`` suppressions, path-scoped allowances
for the two files that legitimately touch the wall clock, and a CLI
(``python -m repro lint``, with ``text``/``json``/``sarif`` output, a
content-hash incremental cache, ``--changed-only`` git mode,
``--baseline`` ratchet mode, and ``--statistics``).  A tier-1
self-check test runs it over all of ``src/repro`` so any regression
fails the ordinary pytest run.

>>> from repro.lint import Analyzer
>>> Analyzer().lint_source("import time\\nt = time.time()\\n")[0].rule_id
'D101'
"""

from __future__ import annotations

from .analyzer import Analyzer, FileContext, LintStats, Rule, all_rules, register
from .baseline import Baseline
from .cache import LintCache
from .callgraph import ProjectGraph, build_graph
from .cfg import CFG, Block, build_cfg
from .config import (
    DEFAULT_ALLOW,
    LintConfig,
    ProviderSchema,
    discover_provider_names,
    discover_provider_schemas,
)
from .diagnostics import Diagnostic, Severity, sarif_report
from .resolver import ImportResolver
from .taint import TaintFinding, TaintIndex, analyze_module, build_taint_index

__all__ = [
    "Analyzer",
    "FileContext",
    "LintStats",
    "Rule",
    "register",
    "all_rules",
    "Baseline",
    "LintCache",
    "ProjectGraph",
    "build_graph",
    "CFG",
    "Block",
    "build_cfg",
    "LintConfig",
    "DEFAULT_ALLOW",
    "ProviderSchema",
    "discover_provider_names",
    "discover_provider_schemas",
    "Diagnostic",
    "Severity",
    "sarif_report",
    "ImportResolver",
    "TaintFinding",
    "TaintIndex",
    "analyze_module",
    "build_taint_index",
]
