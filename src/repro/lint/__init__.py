"""``repro.lint`` — determinism & flow-safety static analysis.

The whole reproduction rests on one invariant: every simulated component
is **deterministic under a seed**, so the paper's 1-hour campaigns
replay identically in milliseconds.  Nothing in Python enforces that —
one stray ``time.time()``, one unseeded ``random`` draw, one
hash-ordered ``set`` iteration in scheduling code silently corrupts
every benchmark.  This package is the enforcement: a self-contained,
stdlib-``ast``-based analyzer with three rule packs,

* **D1xx determinism** — wall-clock reads, sleeps, global RNGs,
  unordered iteration, ``id()`` ordering, env-var reads;
* **S2xx DES safety** — non-Event yields, unreleased resource requests,
  swallowed simulation errors in process generators;
* **F3xx flow validation** — dangling transitions, unreachable states,
  forward ``$.states`` template references, unknown providers in
  literal :class:`~repro.flows.FlowDefinition` constructions;
* **F4xx flow dataflow** — an interprocedural symbolic execution of
  literal flow definitions that propagates each provider's declared
  ``output_schema`` through the state chain: dangling ``$.`` payload
  references, parameters outside a provider's ``input_schema``, type
  conflicts where a payload key flows into a parameter of another type,
  and providers missing schema declarations;

plus ``# repro: noqa[RULE-ID]`` line suppressions, whole-file
``# repro: noqa-file[RULE-ID]`` suppressions, path-scoped allowances
for the two files that legitimately touch the wall clock, and a CLI
(``python -m repro lint``, with ``text``/``json``/``sarif`` output).  A
tier-1 self-check test runs it over all of ``src/repro`` so any
regression fails the ordinary pytest run.

>>> from repro.lint import Analyzer
>>> Analyzer().lint_source("import time\\nt = time.time()\\n")[0].rule_id
'D101'
"""

from __future__ import annotations

from .analyzer import Analyzer, FileContext, Rule, all_rules, register
from .config import (
    DEFAULT_ALLOW,
    LintConfig,
    ProviderSchema,
    discover_provider_names,
    discover_provider_schemas,
)
from .diagnostics import Diagnostic, Severity, sarif_report
from .resolver import ImportResolver

__all__ = [
    "Analyzer",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "LintConfig",
    "DEFAULT_ALLOW",
    "ProviderSchema",
    "discover_provider_names",
    "discover_provider_schemas",
    "Diagnostic",
    "Severity",
    "sarif_report",
    "ImportResolver",
]
