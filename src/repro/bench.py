"""Machine-readable substrate benchmarks: the perf trajectory as data.

``python -m repro bench`` times the three hot layers the scale-up work
optimizes — the DES kernel, the max–min fair network fabric, and the
campaign/sweep runner — and emits one JSON file per suite
(``BENCH_kernel.json``, ``BENCH_fabric.json``, ``BENCH_campaign.json``)
with ops/s, wall-clock, and peak RSS.  The committed baselines at the
repository root are the regression gate: ``python -m repro bench
--check`` re-measures and fails when any throughput metric regresses by
more than 25% (or a wall-clock metric inflates by the same factor).

These are *substrate* benchmarks: they measure the simulator, not the
paper's testbed.  The pytest-benchmark files under ``benchmarks/``
remain the interactive view; this module is the trend line across PRs.
"""

# repro: noqa-file[D101]  benchmarks measure the wall clock on purpose

from __future__ import annotations

import json
import os
import resource as _resource
import sys
import time
from typing import Any, Callable, Optional

from .sim import Environment, Resource, Store
from .units import Gbps, MB

__all__ = [
    "SUITES",
    "check_against_baseline",
    "run_campaign_bench",
    "run_fabric_bench",
    "run_integrity_bench",
    "run_kernel_bench",
    "run_lint_bench",
    "run_stream_bench",
    "run_suite",
    "write_suite",
]

#: Regression tolerance for ``--check``: a metric may lose up to this
#: fraction of its baseline throughput before the gate fails.
CHECK_TOLERANCE = 0.25


def _best_of(fn: Callable[[], Any], repeat: int = 3) -> tuple[float, Any]:
    """Minimum wall-clock of ``repeat`` runs (first run warms caches)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, result


def _peak_rss_kb() -> int:
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


# -- kernel suite ----------------------------------------------------------

def _kernel_ticker() -> int:
    """Pure event dispatch: 20 ping-pong processes x 500 timeouts."""
    env = Environment()

    def ticker(env, n):
        for _ in range(n):
            yield env.timeout(1.0)

    for _ in range(20):
        env.process(ticker(env, 500))
    env.run()
    return 20 * 500 + 40  # timeouts + init/terminate events


def _kernel_store() -> int:
    env = Environment()
    q = Store(env)
    moved = 2000

    def producer(env):
        for i in range(moved):
            yield q.put(i)

    def consumer(env):
        for _ in range(moved):
            yield q.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return 2 * moved


def _kernel_resource() -> int:
    env = Environment()
    res = Resource(env, capacity=4)
    users = 800

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    for _ in range(users):
        env.process(user(env))
    env.run()
    return 2 * users


def run_kernel_bench(repeat: int = 3) -> dict[str, Any]:
    metrics: dict[str, Any] = {}
    for name, fn in (
        ("event_throughput", _kernel_ticker),
        ("store_pipeline", _kernel_store),
        ("resource_contention", _kernel_resource),
    ):
        wall, n_ops = _best_of(fn, repeat)
        metrics[name] = {
            "n_ops": n_ops,
            "wall_s": wall,
            "ops_per_s": n_ops / wall,
        }
    return metrics


# -- fabric suite ----------------------------------------------------------

def _fabric_multisite(n_sites: int, per_site: int) -> Callable[[], int]:
    """The scale-out scenario: ``n_sites`` facilities, each streaming
    ``per_site`` concurrent datasets from instrument to site storage.

    Streams at one site share that site's uplink (the allocation
    couples them); sites are independent — the workload the related
    facility-streaming work (Welborn et al., Bicer et al.) runs at
    thousands-of-streams scale.
    """
    from .net import NetworkFabric, Topology

    def run() -> int:
        env = Environment()
        topo = Topology()
        for s in range(n_sites):
            topo.add_node(f"inst{s}")
            topo.add_node(f"sw{s}", kind="switch")
            topo.add_node(f"stor{s}")
            topo.add_link(f"inst{s}", f"sw{s}", Gbps(1))
            topo.add_link(f"sw{s}", f"stor{s}", Gbps(10))
        fabric = NetworkFabric(env, topo)
        done = []

        def submit(env, site, i):
            yield env.timeout(i * 0.05)
            nbytes = MB(5 + (7 * (site * per_site + i)) % 45)
            stream = yield fabric.transfer(f"inst{site}", f"stor{site}", nbytes)
            done.append(stream.stream_id)

        for site in range(n_sites):
            for i in range(per_site):
                env.process(submit(env, site, i))
        env.run()
        assert len(done) == n_sites * per_site
        return len(done)

    return run


def _fabric_shared_hub(n_streams: int) -> Callable[[], int]:
    """Worst case for incrementality: every stream crosses one switch."""
    from .net import NetworkFabric, Topology

    def run() -> int:
        env = Environment()
        topo = Topology()
        topo.add_node("hub", kind="switch")
        n_hosts = 20
        for h in range(n_hosts):
            topo.add_node(f"h{h}")
            topo.add_link(f"h{h}", "hub", Gbps(1))
        fabric = NetworkFabric(env, topo)
        done = []

        def submit(env, i):
            yield env.timeout(i * 0.05)
            src, dst = f"h{i % n_hosts}", f"h{(i + 7) % n_hosts}"
            stream = yield fabric.transfer(src, dst, MB(5 + (7 * i) % 45))
            done.append(stream.stream_id)

        for i in range(n_streams):
            env.process(submit(env, i))
        env.run()
        assert len(done) == n_streams
        return len(done)

    return run


def run_fabric_bench(repeat: int = 3, scale: float = 1.0) -> dict[str, Any]:
    """``scale`` shrinks the scenarios (used to time slow baselines)."""
    metrics: dict[str, Any] = {}
    cases = (
        ("multisite_2000_streams", _fabric_multisite(40, max(1, int(50 * scale)))),
        ("shared_hub_200_streams", _fabric_shared_hub(max(1, int(200 * scale)))),
    )
    for name, fn in cases:
        wall, n_streams = _best_of(fn, repeat)
        metrics[name] = {
            "n_ops": n_streams,
            "wall_s": wall,
            "ops_per_s": n_streams / wall,
        }
    return metrics


# -- lint suite ------------------------------------------------------------

def run_lint_bench(repeat: int = 3) -> dict[str, Any]:
    """The static analyzer over the full ``repro`` package: cold run,
    fully warm cache, and the incremental single-file-changed case.

    The warm cases assert their cache-hit counts — the suite doubles as
    the proof that the incremental cache re-analyzes exactly the
    changed files and nothing else.
    """
    import shutil
    import tempfile

    from .lint import Analyzer, LintCache

    target = os.path.dirname(os.path.abspath(__file__))
    metrics: dict[str, Any] = {}

    def cold() -> int:
        analyzer = Analyzer()
        analyzer.lint_paths([target])
        return analyzer.stats.files_total

    wall, n_files = _best_of(cold, repeat)
    metrics["cold_full_tree"] = {
        "n_ops": n_files,
        "wall_s": wall,
        "ops_per_s": n_files / wall,
    }

    # The taint phase in isolation: parse once, then time the local
    # analysis + global RET/SINKPARAM resolution over every module.
    import ast as _ast

    from .lint.callgraph import module_name_for_path
    from .lint.taint import build_taint_index

    trees: dict[str, tuple] = {}
    for dirpath, dirnames, filenames in os.walk(target):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            p = os.path.join(dirpath, name)
            try:
                with open(p, "r", encoding="utf-8") as fh:
                    trees[p] = (module_name_for_path(p), _ast.parse(fh.read()))
            except (OSError, SyntaxError):
                continue

    def taint_cold() -> int:
        index = build_taint_index(trees)
        assert index.recomputed == len(trees)
        return len(trees)

    wall_t, n_mods = _best_of(taint_cold, repeat)
    metrics["taint_index_cold"] = {
        "n_ops": n_mods,
        "wall_s": wall_t,
        "ops_per_s": n_mods / wall_t,
    }

    with tempfile.TemporaryDirectory() as td:
        cache_path = os.path.join(td, "cache.json")
        primer = Analyzer()
        cache = LintCache(cache_path)
        primer.lint_paths([target], cache=cache)
        cache.save()

        def warm() -> int:
            analyzer = Analyzer()
            c = LintCache(cache_path)
            analyzer.lint_paths([target], cache=c)
            assert analyzer.stats.files_cached == analyzer.stats.files_total
            # unchanged bytes must serve every taint summary from cache
            assert analyzer.stats.taint_recomputed == 0
            return analyzer.stats.files_total

        wall_w, n = _best_of(warm, repeat)
        metrics["warm_cache_full_tree"] = {
            "n_ops": n,
            "wall_s": wall_w,
            "ops_per_s": n / wall_w,
            "cache_hit_rate": 1.0,
            "taint_recomputed": 0,
        }

        # Single-file incrementality on a throwaway copy of the tree:
        # each run touches one file, so exactly one miss per run.
        work = os.path.join(td, "repro")
        shutil.copytree(target, work, ignore=shutil.ignore_patterns("__pycache__"))
        inc_cache_path = os.path.join(td, "inc-cache.json")
        primer = Analyzer()
        cache = LintCache(inc_cache_path)
        primer.lint_paths([work], cache=cache)
        cache.save()
        victim = os.path.join(work, "units.py")
        tick = 0

        def one_changed() -> int:
            nonlocal tick
            tick += 1
            with open(victim, "a", encoding="utf-8") as fh:
                fh.write(f"# bench touch {tick}\n")
            analyzer = Analyzer()
            c = LintCache(inc_cache_path)
            analyzer.lint_paths([work], cache=c)
            c.save()
            assert analyzer.stats.files_analyzed == 1
            assert analyzer.stats.files_cached == analyzer.stats.files_total - 1
            # taint re-analysis is limited to exactly the changed file
            assert analyzer.stats.taint_recomputed == 1
            return analyzer.stats.files_total

        wall_1, n1 = _best_of(one_changed, repeat)
        metrics["warm_one_file_changed"] = {
            "n_ops": n1,
            "wall_s": wall_1,
            "ops_per_s": n1 / wall_1,
            "files_reanalyzed": 1,
            "taint_recomputed": 1,
        }
    return metrics


# -- stream suite ----------------------------------------------------------

def _stream_delivery(n_sessions: int, chunks_per_session: int) -> Callable[[], int]:
    """Publisher → receiver chunk delivery over a two-hop fabric path:
    the streaming fast path's credit/ack/drain machinery under load."""
    from .net import NetworkFabric, Topology
    from .stream import StreamPublisher, StreamReceiver

    def run() -> int:
        env = Environment()
        topo = Topology()
        topo.add_node("inst")
        topo.add_node("sw", kind="switch")
        topo.add_node("node")
        topo.add_link("inst", "sw", Gbps(1))
        topo.add_link("sw", "node", Gbps(10))
        fabric = NetworkFabric(env, topo)
        receiver = StreamReceiver(env, host="node", ingest_bytes_per_s=400e6)
        publisher = StreamPublisher(
            env, fabric, receiver, src_host="inst",
            chunk_bytes=MB(4), handshake_s=0.0,
        )
        sessions = []

        def submit(env, i):
            yield env.timeout(i * 0.2)
            sessions.append(
                publisher.start(f"/f{i}.emd", MB(4) * chunks_per_session)
            )

        for i in range(n_sessions):
            env.process(submit(env, i))
        env.run()
        delivered = sum(1 for s in sessions if s.status == "DELIVERED")
        assert delivered == n_sessions
        return n_sessions * chunks_per_session

    return run


def run_stream_bench(repeat: int = 3) -> dict[str, Any]:
    from .core import run_campaign

    metrics: dict[str, Any] = {}
    wall, n_chunks = _best_of(_stream_delivery(50, 16), repeat)
    metrics["delivery_800_chunks"] = {
        "n_ops": n_chunks,
        "wall_s": wall,
        "ops_per_s": n_chunks / wall,
    }
    wall, res = _best_of(
        lambda: run_campaign(
            "hyperspectral", duration_s=1800.0, seed=1, ingest="stream"
        ),
        repeat,
    )
    n_published = len(res.app.published_sessions)
    metrics["campaign_stream_half_hour"] = {
        "n_ops": n_published,
        "wall_s": wall,
        "ops_per_s": n_published / wall,
    }
    return metrics


# -- integrity suite -------------------------------------------------------

def _stream_delivery_with_digests(
    n_sessions: int, chunks_per_session: int, verified: bool
) -> Callable[[], int]:
    """The stream-delivery workload with per-chunk verification on or
    off — the pair behind the integrity-overhead metric."""
    from .net import NetworkFabric, Topology
    from .stream import StreamPublisher, StreamReceiver

    def run() -> int:
        env = Environment()
        topo = Topology()
        topo.add_node("inst")
        topo.add_node("sw", kind="switch")
        topo.add_node("node")
        topo.add_link("inst", "sw", Gbps(1))
        topo.add_link("sw", "node", Gbps(10))
        fabric = NetworkFabric(env, topo)
        receiver = StreamReceiver(env, host="node", ingest_bytes_per_s=400e6)
        publisher = StreamPublisher(
            env, fabric, receiver, src_host="inst",
            chunk_bytes=MB(4), handshake_s=0.0,
        )
        sessions = []

        def submit(env, i):
            yield env.timeout(i * 0.2)
            sessions.append(
                publisher.start(
                    f"/f{i}.emd",
                    MB(4) * chunks_per_session,
                    digest=f"digest-{i:04d}" if verified else None,
                )
            )

        for i in range(n_sessions):
            env.process(submit(env, i))
        env.run()
        delivered = sum(1 for s in sessions if s.status == "DELIVERED")
        assert delivered == n_sessions
        if verified:
            assert all(s.naks == 0 for s in sessions)
        return n_sessions * chunks_per_session

    return run


def run_integrity_bench(repeat: int = 3) -> dict[str, Any]:
    """Integrity is free when disabled and cheap when enabled: the same
    chunk-delivery workload with verification off vs on (the committed
    baseline pins both; ``benchmarks/bench_integrity.py`` asserts the
    on/off ratio), plus a full corruption campaign with its audit."""
    from .integrity import run_integrity_campaign

    metrics: dict[str, Any] = {}
    wall_plain, n_chunks = _best_of(
        _stream_delivery_with_digests(50, 16, verified=False), repeat
    )
    metrics["delivery_800_chunks_plain"] = {
        "n_ops": n_chunks,
        "wall_s": wall_plain,
        "ops_per_s": n_chunks / wall_plain,
    }
    wall_verified, n_chunks = _best_of(
        _stream_delivery_with_digests(50, 16, verified=True), repeat
    )
    metrics["delivery_800_chunks_verified"] = {
        "n_ops": n_chunks,
        "wall_s": wall_verified,
        "ops_per_s": n_chunks / wall_verified,
        "overhead_pct": 100.0 * (wall_verified - wall_plain) / wall_plain,
    }
    wall, out = _best_of(
        lambda: run_integrity_campaign(
            duration_s=600.0, seed=3, ingest="stream"
        ),
        repeat,
    )
    result, report = out
    n_sessions = len(result.app.sessions)
    metrics["corruption_campaign_10min"] = {
        "n_ops": n_sessions,
        "wall_s": wall,
        "ops_per_s": n_sessions / wall,
        "injections": report.counts["injections"],
        "audit_ok": report.ok,
    }
    return metrics


# -- campaign suite --------------------------------------------------------

def run_campaign_bench(repeat: int = 3, include_sweep: bool = True) -> dict[str, Any]:
    from .core import run_campaign

    metrics: dict[str, Any] = {}
    wall, res = _best_of(
        lambda: run_campaign("hyperspectral", duration_s=3600.0, seed=1), repeat
    )
    metrics["hyperspectral_hour"] = {
        "n_ops": len(res.completed_runs),
        "wall_s": wall,
        "ops_per_s": len(res.completed_runs) / wall,
    }
    if include_sweep:
        from .core.sweep import chaos_grid, run_sweep

        variants = chaos_grid(seeds=(0,), duration_s=1800.0)
        wall_serial, serial = _best_of(lambda: run_sweep(variants, jobs=1), 1)
        metrics["chaos_sweep_serial"] = {
            "n_ops": len(serial),
            "wall_s": wall_serial,
            "ops_per_s": len(serial) / wall_serial,
        }
        jobs = min(4, os.cpu_count() or 1)
        if jobs > 1:
            wall_par, par = _best_of(lambda: run_sweep(variants, jobs=jobs), 1)
            metrics["chaos_sweep_parallel"] = {
                "n_ops": len(par),
                "wall_s": wall_par,
                "ops_per_s": len(par) / wall_par,
                "jobs": jobs,
                "identical_to_serial": [o.payload() for o in par]
                == [o.payload() for o in serial],
            }
    return metrics


SUITES: dict[str, Callable[..., dict[str, Any]]] = {
    "kernel": run_kernel_bench,
    "fabric": run_fabric_bench,
    "campaign": run_campaign_bench,
    "lint": run_lint_bench,
    "stream": run_stream_bench,
    "integrity": run_integrity_bench,
}


def run_suite(name: str, repeat: int = 3) -> dict[str, Any]:
    """Run one suite and wrap its metrics with environment context."""
    metrics = SUITES[name](repeat=repeat)
    return {
        "suite": name,
        "metrics": metrics,
        "peak_rss_kb": _peak_rss_kb(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }


def write_suite(payload: dict[str, Any], directory: str = ".") -> str:
    path = os.path.join(directory, f"BENCH_{payload['suite']}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def check_against_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = CHECK_TOLERANCE,
) -> list[str]:
    """Compare a fresh measurement against a committed baseline.

    Returns a list of human-readable regression descriptions (empty
    means the gate passes).  Only throughput (``ops_per_s``) gates;
    peak RSS is reported but informational — it depends on allocator
    and interpreter details the repo does not control.
    """
    problems: list[str] = []
    base_metrics = baseline.get("metrics", {})
    for name, cur in current.get("metrics", {}).items():
        base = base_metrics.get(name)
        if base is None:
            continue  # new metric: no baseline yet
        floor = base["ops_per_s"] * (1.0 - tolerance)
        if cur["ops_per_s"] < floor:
            problems.append(
                f"{current['suite']}.{name}: {cur['ops_per_s']:.0f} ops/s "
                f"< {floor:.0f} (baseline {base['ops_per_s']:.0f} "
                f"- {tolerance:.0%} tolerance)"
            )
    for name in base_metrics:
        if name not in current.get("metrics", {}):
            problems.append(f"{current['suite']}.{name}: metric disappeared")
    return problems


def run_bench_cli(
    suites: "list[str]",
    output_dir: str,
    check: bool,
    baseline_dir: str,
    repeat: int = 3,
) -> int:
    """The ``python -m repro bench`` entry point."""
    failures: list[str] = []
    for name in suites:
        payload = run_suite(name, repeat=repeat)
        for metric, vals in sorted(payload["metrics"].items()):
            print(
                f"{name:>8s}.{metric:<24s} {vals['ops_per_s']:>12.0f} ops/s  "
                f"(wall {vals['wall_s'] * 1e3:8.2f} ms)"
            )
        print(f"{name:>8s}.peak_rss_kb             {payload['peak_rss_kb']:>12d}")
        if check:
            base_path = os.path.join(baseline_dir, f"BENCH_{name}.json")
            if not os.path.exists(base_path):
                failures.append(f"{name}: no baseline at {base_path}")
                continue
            with open(base_path, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
            failures.extend(check_against_baseline(payload, baseline))
        else:
            path = write_suite(payload, output_dir)
            print(f"wrote {path}")
    if check:
        if failures:
            print("\nREGRESSIONS (>25% below committed baseline):")
            for f in failures:
                print(f"  {f}")
            return 1
        print("\nbench --check: all metrics within tolerance of baselines")
    return 0
