"""Machine-readable substrate benchmarks: the perf trajectory as data.

``python -m repro bench`` times the three hot layers the scale-up work
optimizes — the DES kernel, the max–min fair network fabric, and the
campaign/sweep runner — and emits one JSON file per suite
(``BENCH_kernel.json``, ``BENCH_fabric.json``, ``BENCH_campaign.json``)
with ops/s, wall-clock, and peak RSS.  The committed baselines at the
repository root are the regression gate: ``python -m repro bench
--check`` re-measures and fails when any throughput metric regresses by
more than 25% (or a wall-clock metric inflates by the same factor).

These are *substrate* benchmarks: they measure the simulator, not the
paper's testbed.  The pytest-benchmark files under ``benchmarks/``
remain the interactive view; this module is the trend line across PRs.
"""

# repro: noqa-file[D101]  benchmarks measure the wall clock on purpose

from __future__ import annotations

import json
import os
import resource as _resource
import sys
import time
from typing import Any, Callable, Optional

from .sim import Environment, Resource, Store
from .units import Gbps, MB

__all__ = [
    "SUITES",
    "check_against_baseline",
    "run_campaign_bench",
    "run_dataplane_bench",
    "run_fabric_bench",
    "run_integrity_bench",
    "run_kernel_bench",
    "run_lint_bench",
    "run_stream_bench",
    "run_suite",
    "write_suite",
]

#: Regression tolerance for ``--check``: a metric may lose up to this
#: fraction of its baseline throughput before the gate fails.
CHECK_TOLERANCE = 0.25


def _best_of(fn: Callable[[], Any], repeat: int = 3) -> tuple[float, Any]:
    """Minimum wall-clock of ``repeat`` runs (first run warms caches)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, result


def _peak_rss_kb() -> int:
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


# -- kernel suite ----------------------------------------------------------

def _kernel_ticker() -> int:
    """Pure event dispatch: 20 ping-pong processes x 500 timeouts."""
    env = Environment()

    def ticker(env, n):
        for _ in range(n):
            yield env.timeout(1.0)

    for _ in range(20):
        env.process(ticker(env, 500))
    env.run()
    return 20 * 500 + 40  # timeouts + init/terminate events


def _kernel_store() -> int:
    env = Environment()
    q = Store(env)
    moved = 2000

    def producer(env):
        for i in range(moved):
            yield q.put(i)

    def consumer(env):
        for _ in range(moved):
            yield q.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return 2 * moved


def _kernel_resource() -> int:
    env = Environment()
    res = Resource(env, capacity=4)
    users = 800

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    for _ in range(users):
        env.process(user(env))
    env.run()
    return 2 * users


def run_kernel_bench(repeat: int = 3) -> dict[str, Any]:
    metrics: dict[str, Any] = {}
    for name, fn in (
        ("event_throughput", _kernel_ticker),
        ("store_pipeline", _kernel_store),
        ("resource_contention", _kernel_resource),
    ):
        wall, n_ops = _best_of(fn, repeat)
        metrics[name] = {
            "n_ops": n_ops,
            "wall_s": wall,
            "ops_per_s": n_ops / wall,
        }
    return metrics


# -- fabric suite ----------------------------------------------------------

def _fabric_multisite(n_sites: int, per_site: int) -> Callable[[], int]:
    """The scale-out scenario: ``n_sites`` facilities, each streaming
    ``per_site`` concurrent datasets from instrument to site storage.

    Streams at one site share that site's uplink (the allocation
    couples them); sites are independent — the workload the related
    facility-streaming work (Welborn et al., Bicer et al.) runs at
    thousands-of-streams scale.
    """
    from .net import NetworkFabric, Topology

    def run() -> int:
        env = Environment()
        topo = Topology()
        for s in range(n_sites):
            topo.add_node(f"inst{s}")
            topo.add_node(f"sw{s}", kind="switch")
            topo.add_node(f"stor{s}")
            topo.add_link(f"inst{s}", f"sw{s}", Gbps(1))
            topo.add_link(f"sw{s}", f"stor{s}", Gbps(10))
        fabric = NetworkFabric(env, topo)
        done = []

        def submit(env, site, i):
            yield env.timeout(i * 0.05)
            nbytes = MB(5 + (7 * (site * per_site + i)) % 45)
            stream = yield fabric.transfer(f"inst{site}", f"stor{site}", nbytes)
            done.append(stream.stream_id)

        for site in range(n_sites):
            for i in range(per_site):
                env.process(submit(env, site, i))
        env.run()
        assert len(done) == n_sites * per_site
        return len(done)

    return run


def _fabric_shared_hub(n_streams: int) -> Callable[[], int]:
    """Worst case for incrementality: every stream crosses one switch."""
    from .net import NetworkFabric, Topology

    def run() -> int:
        env = Environment()
        topo = Topology()
        topo.add_node("hub", kind="switch")
        n_hosts = 20
        for h in range(n_hosts):
            topo.add_node(f"h{h}")
            topo.add_link(f"h{h}", "hub", Gbps(1))
        fabric = NetworkFabric(env, topo)
        done = []

        def submit(env, i):
            yield env.timeout(i * 0.05)
            src, dst = f"h{i % n_hosts}", f"h{(i + 7) % n_hosts}"
            stream = yield fabric.transfer(src, dst, MB(5 + (7 * i) % 45))
            done.append(stream.stream_id)

        for i in range(n_streams):
            env.process(submit(env, i))
        env.run()
        assert len(done) == n_streams
        return len(done)

    return run


def run_fabric_bench(repeat: int = 3, scale: float = 1.0) -> dict[str, Any]:
    """``scale`` shrinks the scenarios (used to time slow baselines)."""
    metrics: dict[str, Any] = {}
    cases = (
        ("multisite_2000_streams", _fabric_multisite(40, max(1, int(50 * scale)))),
        ("shared_hub_200_streams", _fabric_shared_hub(max(1, int(200 * scale)))),
    )
    for name, fn in cases:
        wall, n_streams = _best_of(fn, repeat)
        metrics[name] = {
            "n_ops": n_streams,
            "wall_s": wall,
            "ops_per_s": n_streams / wall,
        }
    return metrics


# -- lint suite ------------------------------------------------------------

def run_lint_bench(repeat: int = 3) -> dict[str, Any]:
    """The static analyzer over the full ``repro`` package: cold run,
    fully warm cache, and the incremental single-file-changed case.

    The warm cases assert their cache-hit counts — the suite doubles as
    the proof that the incremental cache re-analyzes exactly the
    changed files and nothing else.
    """
    import shutil
    import tempfile

    from .lint import Analyzer, LintCache

    target = os.path.dirname(os.path.abspath(__file__))
    metrics: dict[str, Any] = {}

    def cold() -> int:
        analyzer = Analyzer()
        analyzer.lint_paths([target])
        return analyzer.stats.files_total

    wall, n_files = _best_of(cold, repeat)
    metrics["cold_full_tree"] = {
        "n_ops": n_files,
        "wall_s": wall,
        "ops_per_s": n_files / wall,
    }

    # The taint phase in isolation: parse once, then time the local
    # analysis + global RET/SINKPARAM resolution over every module.
    import ast as _ast

    from .lint.callgraph import module_name_for_path
    from .lint.taint import build_taint_index

    trees: dict[str, tuple] = {}
    for dirpath, dirnames, filenames in os.walk(target):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            p = os.path.join(dirpath, name)
            try:
                with open(p, "r", encoding="utf-8") as fh:
                    trees[p] = (module_name_for_path(p), _ast.parse(fh.read()))
            except (OSError, SyntaxError):
                continue

    def taint_cold() -> int:
        index = build_taint_index(trees)
        assert index.recomputed == len(trees)
        return len(trees)

    wall_t, n_mods = _best_of(taint_cold, repeat)
    metrics["taint_index_cold"] = {
        "n_ops": n_mods,
        "wall_s": wall_t,
        "ops_per_s": n_mods / wall_t,
    }

    with tempfile.TemporaryDirectory() as td:
        cache_path = os.path.join(td, "cache.json")
        primer = Analyzer()
        cache = LintCache(cache_path)
        primer.lint_paths([target], cache=cache)
        cache.save()

        def warm() -> int:
            analyzer = Analyzer()
            c = LintCache(cache_path)
            analyzer.lint_paths([target], cache=c)
            assert analyzer.stats.files_cached == analyzer.stats.files_total
            # unchanged bytes must serve every taint summary from cache
            assert analyzer.stats.taint_recomputed == 0
            return analyzer.stats.files_total

        wall_w, n = _best_of(warm, repeat)
        metrics["warm_cache_full_tree"] = {
            "n_ops": n,
            "wall_s": wall_w,
            "ops_per_s": n / wall_w,
            "cache_hit_rate": 1.0,
            "taint_recomputed": 0,
        }

        # Single-file incrementality on a throwaway copy of the tree:
        # each run touches one file, so exactly one miss per run.
        work = os.path.join(td, "repro")
        shutil.copytree(target, work, ignore=shutil.ignore_patterns("__pycache__"))
        inc_cache_path = os.path.join(td, "inc-cache.json")
        primer = Analyzer()
        cache = LintCache(inc_cache_path)
        primer.lint_paths([work], cache=cache)
        cache.save()
        victim = os.path.join(work, "units.py")
        tick = 0

        def one_changed() -> int:
            nonlocal tick
            tick += 1
            with open(victim, "a", encoding="utf-8") as fh:
                fh.write(f"# bench touch {tick}\n")
            analyzer = Analyzer()
            c = LintCache(inc_cache_path)
            analyzer.lint_paths([work], cache=c)
            c.save()
            assert analyzer.stats.files_analyzed == 1
            assert analyzer.stats.files_cached == analyzer.stats.files_total - 1
            # taint re-analysis is limited to exactly the changed file
            assert analyzer.stats.taint_recomputed == 1
            return analyzer.stats.files_total

        wall_1, n1 = _best_of(one_changed, repeat)
        metrics["warm_one_file_changed"] = {
            "n_ops": n1,
            "wall_s": wall_1,
            "ops_per_s": n1 / wall_1,
            "files_reanalyzed": 1,
            "taint_recomputed": 1,
        }
    return metrics


# -- stream suite ----------------------------------------------------------

def _stream_delivery(n_sessions: int, chunks_per_session: int) -> Callable[[], int]:
    """Publisher → receiver chunk delivery over a two-hop fabric path:
    the streaming fast path's credit/ack/drain machinery under load."""
    from .net import NetworkFabric, Topology
    from .stream import StreamPublisher, StreamReceiver

    def run() -> int:
        env = Environment()
        topo = Topology()
        topo.add_node("inst")
        topo.add_node("sw", kind="switch")
        topo.add_node("node")
        topo.add_link("inst", "sw", Gbps(1))
        topo.add_link("sw", "node", Gbps(10))
        fabric = NetworkFabric(env, topo)
        receiver = StreamReceiver(env, host="node", ingest_bytes_per_s=400e6)
        publisher = StreamPublisher(
            env, fabric, receiver, src_host="inst",
            chunk_bytes=MB(4), handshake_s=0.0,
        )
        sessions = []

        def submit(env, i):
            yield env.timeout(i * 0.2)
            sessions.append(
                publisher.start(f"/f{i}.emd", MB(4) * chunks_per_session)
            )

        for i in range(n_sessions):
            env.process(submit(env, i))
        env.run()
        delivered = sum(1 for s in sessions if s.status == "DELIVERED")
        assert delivered == n_sessions
        return n_sessions * chunks_per_session

    return run


def run_stream_bench(repeat: int = 3) -> dict[str, Any]:
    from .core import run_campaign

    metrics: dict[str, Any] = {}
    wall, n_chunks = _best_of(_stream_delivery(50, 16), repeat)
    metrics["delivery_800_chunks"] = {
        "n_ops": n_chunks,
        "wall_s": wall,
        "ops_per_s": n_chunks / wall,
    }
    wall, res = _best_of(
        lambda: run_campaign(
            "hyperspectral", duration_s=1800.0, seed=1, ingest="stream"
        ),
        repeat,
    )
    n_published = len(res.app.published_sessions)
    metrics["campaign_stream_half_hour"] = {
        "n_ops": n_published,
        "wall_s": wall,
        "ops_per_s": n_published / wall,
    }
    return metrics


# -- integrity suite -------------------------------------------------------

def _stream_delivery_with_digests(
    n_sessions: int, chunks_per_session: int, verified: bool
) -> Callable[[], int]:
    """The stream-delivery workload with per-chunk verification on or
    off — the pair behind the integrity-overhead metric."""
    from .net import NetworkFabric, Topology
    from .stream import StreamPublisher, StreamReceiver

    def run() -> int:
        env = Environment()
        topo = Topology()
        topo.add_node("inst")
        topo.add_node("sw", kind="switch")
        topo.add_node("node")
        topo.add_link("inst", "sw", Gbps(1))
        topo.add_link("sw", "node", Gbps(10))
        fabric = NetworkFabric(env, topo)
        receiver = StreamReceiver(env, host="node", ingest_bytes_per_s=400e6)
        publisher = StreamPublisher(
            env, fabric, receiver, src_host="inst",
            chunk_bytes=MB(4), handshake_s=0.0,
        )
        sessions = []

        def submit(env, i):
            yield env.timeout(i * 0.2)
            sessions.append(
                publisher.start(
                    f"/f{i}.emd",
                    MB(4) * chunks_per_session,
                    digest=f"digest-{i:04d}" if verified else None,
                )
            )

        for i in range(n_sessions):
            env.process(submit(env, i))
        env.run()
        delivered = sum(1 for s in sessions if s.status == "DELIVERED")
        assert delivered == n_sessions
        if verified:
            assert all(s.naks == 0 for s in sessions)
        return n_sessions * chunks_per_session

    return run


def run_integrity_bench(repeat: int = 3) -> dict[str, Any]:
    """Integrity is free when disabled and cheap when enabled: the same
    chunk-delivery workload with verification off vs on (the committed
    baseline pins both; ``benchmarks/bench_integrity.py`` asserts the
    on/off ratio), plus a full corruption campaign with its audit."""
    from .integrity import run_integrity_campaign

    metrics: dict[str, Any] = {}
    wall_plain, n_chunks = _best_of(
        _stream_delivery_with_digests(50, 16, verified=False), repeat
    )
    metrics["delivery_800_chunks_plain"] = {
        "n_ops": n_chunks,
        "wall_s": wall_plain,
        "ops_per_s": n_chunks / wall_plain,
    }
    wall_verified, n_chunks = _best_of(
        _stream_delivery_with_digests(50, 16, verified=True), repeat
    )
    metrics["delivery_800_chunks_verified"] = {
        "n_ops": n_chunks,
        "wall_s": wall_verified,
        "ops_per_s": n_chunks / wall_verified,
        "overhead_pct": 100.0 * (wall_verified - wall_plain) / wall_plain,
    }
    wall, out = _best_of(
        lambda: run_integrity_campaign(
            duration_s=600.0, seed=3, ingest="stream"
        ),
        repeat,
    )
    result, report = out
    n_sessions = len(result.app.sessions)
    metrics["corruption_campaign_10min"] = {
        "n_ops": n_sessions,
        "wall_s": wall,
        "ops_per_s": n_sessions / wall,
        "injections": report.counts["injections"],
        "audit_ok": report.ok,
    }
    return metrics


# -- dataplane suite -------------------------------------------------------

def run_dataplane_bench(repeat: int = 3) -> dict[str, Any]:
    """The numeric data plane: instrument synthesis, analysis kernels,
    the fp64→uint8 video pass, zero-copy h5lite slicing, and the
    kernel's same-timestamp cohort drain.

    Every vectorized kernel is timed against its frozen pre-PR loop
    reference from ``instrument/_loops.py`` / ``analysis/_loops.py``
    (bit-identity between the two is pinned by
    ``tests/test_dataplane_identity.py``); the loop wall and the
    resulting ``speedup_vs_loop`` ride along as informational keys.
    Only ``ops_per_s`` of the vectorized path gates in ``--check``.
    """
    import tempfile

    import numpy as np

    from .analysis import _loops as aloops
    from .analysis.detection import BlobDetector, Detection, DetectorParams
    from .analysis.hyperspectral import identify_elements
    from .analysis.video import _movie_bounds, movie_to_uint8
    from .emd.h5lite import H5LiteFile, H5LiteWriter
    from .instrument import _loops as iloops
    from .instrument.phantoms import Particle, particle_mask
    from .instrument.spatiotemporal import MovieSpec, generate_movie
    from .instrument.xray import ELEMENT_LINES

    metrics: dict[str, Any] = {}

    def entry(name: str, n_ops: int, wall: float, loop_wall: "float | None" = None,
              **extra: Any) -> None:
        m: dict[str, Any] = {
            "n_ops": n_ops, "wall_s": wall, "ops_per_s": n_ops / wall,
        }
        if loop_wall is not None:
            m["loop_wall_s"] = loop_wall
            m["speedup_vs_loop"] = loop_wall / wall
        m.update(extra)
        metrics[name] = m

    # Instrument: movie synthesis (batched RNG + frame-batched scatter).
    spec = MovieSpec(n_frames=30, shape=(256, 256), n_particles=12)
    wall, _ = _best_of(lambda: generate_movie(spec, np.random.default_rng(0)), repeat)
    loop_wall, _ = _best_of(
        lambda: iloops.generate_movie_loops(spec, np.random.default_rng(0)), 1
    )
    entry("instrument_movie", spec.n_frames, wall, loop_wall)

    # Instrument: soft-disk phantom masks (windowed vs full-frame).
    rng = np.random.default_rng(1)
    particles = [
        Particle(row=float(r), col=float(c), radius=float(rad), element="Au")
        for r, c, rad in zip(
            rng.uniform(20, 492, 40), rng.uniform(20, 492, 40), rng.uniform(4, 14, 40)
        )
    ]
    wall, _ = _best_of(lambda: particle_mask((512, 512), particles), repeat)
    loop_wall, _ = _best_of(lambda: iloops.particle_mask_loops((512, 512), particles), 1)
    entry("instrument_phantom_mask", len(particles), wall, loop_wall)

    # Analysis: blob detection over a frame stack.
    dspec = MovieSpec(n_frames=8, shape=(256, 256), n_particles=10)
    dmovie, _ = generate_movie(dspec, np.random.default_rng(2))
    params = DetectorParams()
    det = BlobDetector(params)
    wall, dets = _best_of(lambda: det.detect_movie(dmovie), repeat)
    loop_wall, _ = _best_of(lambda: aloops.detect_movie_loops(dmovie, params), 1)
    entry(
        "analysis_detect_movie", dspec.n_frames, wall, loop_wall,
        detections=sum(len(d) for d in dets),
    )

    # Analysis: NMS over a dense synthetic candidate field.
    rng = np.random.default_rng(3)
    xs, ys = rng.uniform(0, 2000, 800), rng.uniform(0, 2000, 800)
    cands = [
        Detection(
            x0=float(x), y0=float(y),
            x1=float(x + s), y1=float(y + s),
            confidence=float(c), scale=2.0,
        )
        for x, y, s, c in zip(xs, ys, rng.uniform(8, 30, 800), rng.uniform(0.1, 1.0, 800))
    ]
    from .analysis.detection import nms
    wall, kept = _best_of(lambda: nms(cands, 0.4), repeat)
    loop_wall, _ = _best_of(lambda: aloops.nms_loops(cands, 0.4), 1)
    entry("analysis_nms", len(cands), wall, loop_wall, kept=len(kept))

    # Analysis: spectrum peak → line matching.
    energies = np.linspace(0.0, 20000.0, 4096)
    rng = np.random.default_rng(4)
    spectrum = 50.0 * np.exp(-energies / 6000.0) + rng.poisson(5.0, size=energies.shape)
    for _el, lines in list(ELEMENT_LINES.items())[:8]:
        for line in lines:
            spectrum += 400.0 * np.exp(
                -0.5 * ((energies - line.energy_ev) / 40.0) ** 2
            )

    def match_many(fn) -> int:
        n = 0
        for _ in range(20):
            n += len(fn(spectrum, energies))
        return n

    wall, n_hits = _best_of(lambda: match_many(identify_elements), repeat)
    loop_wall, _ = _best_of(lambda: match_many(aloops.identify_elements_loops), 1)
    entry("analysis_hyperspectral", 20, wall, loop_wall, hits=n_hits // 20)

    # Video: normalization bounds + the fp64→uint8 cast, block-batched.
    vmovie = np.abs(np.random.default_rng(5).normal(120.0, 40.0, size=(48, 256, 256)))

    def cast_pipeline() -> int:
        lo, hi = _movie_bounds(vmovie)
        movie_to_uint8(vmovie)
        return vmovie.shape[0]

    def cast_pipeline_loops() -> int:
        lo, hi = aloops.movie_bounds_loops(vmovie)
        movie_to_uint8(vmovie)
        return vmovie.shape[0]

    wall, n_frames = _best_of(cast_pipeline, repeat)
    loop_wall, _ = _best_of(cast_pipeline_loops, 1)
    entry("video_cast_bounds", n_frames, wall, loop_wall)

    # h5lite: sliced reads.  A chunk-aligned band view against the full
    # read the pre-view API forced, and a crossing tile gather.
    with tempfile.TemporaryDirectory() as td:
        path = os.path.join(td, "cube.h5l")
        cube = np.random.default_rng(6).normal(size=(64, 256, 256))
        with H5LiteWriter(path) as w:
            w.create_dataset("/cube", data=cube, chunks=(4, 256, 256))
        with H5LiteFile(path) as f:
            ds = f["cube"]

            def band_reads() -> int:
                for b in range(16):
                    ds.view((slice(4 * b, 4 * b + 4),))
                return 16

            def full_reads() -> int:
                for _ in range(16):
                    ds.read()
                return 16

            wall, n_reads = _best_of(band_reads, repeat)
            loop_wall, _ = _best_of(full_reads, 1)
            entry("h5lite_band_read", n_reads, wall, loop_wall)

            def tile_reads() -> int:
                for b in range(16):
                    ds.view((slice(None), slice(64, 192), slice(64, 192)))
                return 16

            wall, n_reads = _best_of(tile_reads, repeat)
            loop_wall, _ = _best_of(full_reads, 1)
            entry("h5lite_tile_read", n_reads, wall, loop_wall)

    # Kernel: same-timestamp cohort drain under an observer (the traced
    # loop's "any work left?" test is now O(1); the reference below is
    # the pre-PR O(#buckets)-per-event scan, same dispatch order).
    n_flows, n_ticks, period = 400, 20, 10.0

    def build_env() -> tuple[Environment, list]:
        env = Environment()
        dispatched: list = []
        env._trace_hook = lambda t, p, e: dispatched.append(None)

        def flow(env, i):
            # one distinct far-future deadline → one live bucket per flow
            deadline = env.timeout(10_000.0 + i)
            for _ in range(n_ticks):
                yield env.timeout(period)
            env.cancel(deadline)

        for i in range(n_flows):
            env.process(flow(env, i))
        return env, dispatched

    def cohort_new() -> int:
        env, dispatched = build_env()
        env.run()
        return len(dispatched)

    def cohort_old_scan() -> int:
        env, dispatched = build_env()
        while env._n_pending() > env._cancelled_count:
            env.step()
        return len(dispatched)

    wall, n_events = _best_of(cohort_new, repeat)
    loop_wall, n_ref = _best_of(cohort_old_scan, 1)
    assert n_events == n_ref
    entry("kernel_cohort_drain", n_events, wall, loop_wall)
    return metrics


# -- campaign suite --------------------------------------------------------

def run_campaign_bench(repeat: int = 3, include_sweep: bool = True) -> dict[str, Any]:
    from .core import run_campaign

    metrics: dict[str, Any] = {}
    wall, res = _best_of(
        lambda: run_campaign("hyperspectral", duration_s=3600.0, seed=1), repeat
    )
    metrics["hyperspectral_hour"] = {
        "n_ops": len(res.completed_runs),
        "wall_s": wall,
        "ops_per_s": len(res.completed_runs) / wall,
    }
    if include_sweep:
        from .core.sweep import chaos_grid, run_sweep

        variants = chaos_grid(seeds=(0,), duration_s=1800.0)
        wall_serial, serial = _best_of(lambda: run_sweep(variants, jobs=1), 1)
        metrics["chaos_sweep_serial"] = {
            "n_ops": len(serial),
            "wall_s": wall_serial,
            "ops_per_s": len(serial) / wall_serial,
        }
        jobs = min(4, os.cpu_count() or 1)
        if jobs > 1:
            wall_par, par = _best_of(lambda: run_sweep(variants, jobs=jobs), 1)
            metrics["chaos_sweep_parallel"] = {
                "n_ops": len(par),
                "wall_s": wall_par,
                "ops_per_s": len(par) / wall_par,
                "jobs": jobs,
                "identical_to_serial": [o.payload() for o in par]
                == [o.payload() for o in serial],
            }
    return metrics


SUITES: dict[str, Callable[..., dict[str, Any]]] = {
    "kernel": run_kernel_bench,
    "fabric": run_fabric_bench,
    "campaign": run_campaign_bench,
    "lint": run_lint_bench,
    "stream": run_stream_bench,
    "integrity": run_integrity_bench,
    "dataplane": run_dataplane_bench,
}


def run_suite(name: str, repeat: int = 3) -> dict[str, Any]:
    """Run one suite and wrap its metrics with environment context."""
    metrics = SUITES[name](repeat=repeat)
    return {
        "suite": name,
        "metrics": metrics,
        "peak_rss_kb": _peak_rss_kb(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }


def write_suite(payload: dict[str, Any], directory: str = ".") -> str:
    path = os.path.join(directory, f"BENCH_{payload['suite']}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def check_against_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = CHECK_TOLERANCE,
) -> list[str]:
    """Compare a fresh measurement against a committed baseline.

    Returns a list of human-readable regression descriptions (empty
    means the gate passes).  Only throughput (``ops_per_s``) gates;
    peak RSS is reported but informational — it depends on allocator
    and interpreter details the repo does not control.
    """
    problems: list[str] = []
    base_metrics = baseline.get("metrics", {})
    for name, cur in current.get("metrics", {}).items():
        base = base_metrics.get(name)
        if base is None:
            continue  # new metric: no baseline yet
        floor = base["ops_per_s"] * (1.0 - tolerance)
        if cur["ops_per_s"] < floor:
            problems.append(
                f"{current['suite']}.{name}: {cur['ops_per_s']:.0f} ops/s "
                f"< {floor:.0f} (baseline {base['ops_per_s']:.0f} "
                f"- {tolerance:.0%} tolerance)"
            )
    for name in base_metrics:
        if name not in current.get("metrics", {}):
            problems.append(f"{current['suite']}.{name}: metric disappeared")
    return problems


def run_bench_cli(
    suites: "list[str]",
    output_dir: str,
    check: bool,
    baseline_dir: str,
    repeat: int = 3,
) -> int:
    """The ``python -m repro bench`` entry point."""
    failures: list[str] = []
    for name in suites:
        payload = run_suite(name, repeat=repeat)
        for metric, vals in sorted(payload["metrics"].items()):
            print(
                f"{name:>8s}.{metric:<24s} {vals['ops_per_s']:>12.0f} ops/s  "
                f"(wall {vals['wall_s'] * 1e3:8.2f} ms)"
            )
        print(f"{name:>8s}.peak_rss_kb             {payload['peak_rss_kb']:>12d}")
        if check:
            base_path = os.path.join(baseline_dir, f"BENCH_{name}.json")
            if not os.path.exists(base_path):
                failures.append(f"{name}: no baseline at {base_path}")
                continue
            with open(base_path, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
            failures.extend(check_against_baseline(payload, baseline))
        else:
            path = write_suite(payload, output_dir)
            print(f"wrote {path}")
    if check:
        if failures:
            print("\nREGRESSIONS (>25% below committed baseline):")
            for f in failures:
                print(f"  {f}")
            return 1
        print("\nbench --check: all metrics within tolerance of baselines")
    return 0
