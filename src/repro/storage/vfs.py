"""Virtual filesystem: named stores of metadata-bearing file records.

A :class:`VirtualFS` is one storage system in the testbed — the PicoProbe
user machine's transfer directory, or ALCF's Eagle Lustre store.  Files
are :class:`VirtualFile` records: path, logical size, checksum, creation
time, optional experiment metadata.  Subscribers (the directory watcher)
receive creation events synchronously in simulation order.
"""

from __future__ import annotations

import hashlib
import posixpath
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Optional

from ..emd.schema import AcquisitionMetadata
from ..errors import EndpointError
from ..integrity.digest import mangle

__all__ = ["VirtualFile", "VirtualFS"]


def _norm(path: str) -> str:
    # normpath preserves exactly two leading slashes (POSIX); strip first.
    p = posixpath.normpath("/" + path.strip().lstrip("/"))
    if p == "/":
        raise EndpointError("file path must not be the root")
    return p


@dataclass(frozen=True)
class VirtualFile:
    """One file record in a virtual filesystem."""

    path: str
    size_bytes: float
    checksum: str
    created_at: float
    kind: str = "emd"  # "emd" | "plot" | "video" | "other"
    metadata: Optional[AcquisitionMetadata] = None
    extra: dict[str, Any] = field(default_factory=dict)
    #: Digest of the bytes actually at rest.  ``None`` means the payload
    #: matches :attr:`checksum` (the overwhelmingly common intact case —
    #: kept out of the record so clean campaigns carry no extra state).
    #: Bit rot and metadata mismatch set it to a mangled digest;
    #: ``copy_in`` carries it, so corruption survives staging hops.
    payload: Optional[str] = None

    @property
    def payload_digest(self) -> str:
        """The digest of the bytes at rest (declared checksum if intact)."""
        return self.checksum if self.payload is None else self.payload

    @property
    def intact(self) -> bool:
        """Does the at-rest payload still match the declared checksum?"""
        return self.payload is None or self.payload == self.checksum

    @staticmethod
    def content_checksum(seed: str, size_bytes: float) -> str:
        """Deterministic pseudo-checksum derived from a content seed and
        size — two files 'contain' the same bytes iff both match."""
        h = hashlib.sha256(f"{seed}:{size_bytes:.0f}".encode()).hexdigest()
        return h[:32]


class VirtualFS:
    """A named file namespace with creation-event subscription."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._files: dict[str, VirtualFile] = {}
        self._subscribers: list[Callable[[VirtualFile], None]] = []

    # -- mutation ------------------------------------------------------------
    def create(
        self,
        path: str,
        size_bytes: float,
        created_at: float,
        checksum: Optional[str] = None,
        kind: str = "emd",
        metadata: Optional[AcquisitionMetadata] = None,
        extra: Optional[dict[str, Any]] = None,
        overwrite: bool = False,
    ) -> VirtualFile:
        """Add a file; notifies subscribers.  Overwriting requires
        ``overwrite=True`` (mirrors the copier app re-staging a file)."""
        p = _norm(path)
        if p in self._files and not overwrite:
            raise EndpointError(f"{self.name}:{p} already exists")
        if size_bytes < 0:
            raise EndpointError(f"negative file size: {size_bytes}")
        f = VirtualFile(
            path=p,
            size_bytes=float(size_bytes),
            checksum=checksum or VirtualFile.content_checksum(p, size_bytes),
            created_at=float(created_at),
            kind=kind,
            metadata=metadata,
            extra=dict(extra or {}),
        )
        self._files[p] = f
        for cb in list(self._subscribers):
            cb(f)
        return f

    def copy_in(self, source: VirtualFile, dest_path: str, now: float) -> VirtualFile:
        """Register the arrival of ``source``'s content at ``dest_path``
        (same checksum — used by the transfer service on completion)."""
        p = _norm(dest_path)
        f = replace(source, path=p, created_at=float(now))
        self._files[p] = f
        for cb in list(self._subscribers):
            cb(f)
        return f

    def corrupt(self, path: str, salt: str = "") -> VirtualFile:
        """Silently diverge the at-rest payload from its declared
        checksum (bit rot / metadata mismatch).  Deliberately does
        **not** notify subscribers — rot is only observable by reading
        the file and checking the digest, exactly like real storage."""
        p = _norm(path)
        f = self.stat(p)
        rotten = replace(f, payload=mangle(f.payload_digest, salt))
        self._files[p] = rotten
        return rotten

    def delete(self, path: str) -> None:
        p = _norm(path)
        if p not in self._files:
            raise EndpointError(f"{self.name}:{p} does not exist")
        del self._files[p]

    # -- queries ---------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return _norm(path) in self._files

    def stat(self, path: str) -> VirtualFile:
        p = _norm(path)
        try:
            return self._files[p]
        except KeyError:
            raise EndpointError(f"{self.name}:{p} does not exist") from None

    def listdir(self, prefix: str = "/") -> list[VirtualFile]:
        """Files whose path starts with ``prefix`` (sorted by path).

        ``self._files`` iterates in *mutation-history* order (deletions
        make insertion order diverge from content), so every listing and
        reduction here goes through ``sorted`` first — two stores with
        identical contents must behave identically regardless of the
        create/delete sequence that produced them.
        """
        pre = posixpath.normpath("/" + prefix.strip().lstrip("/"))
        if not pre.endswith("/"):
            pre += "/"
        return [
            self._files[p]
            for p in sorted(self._files)
            if p.startswith(pre) or pre == "/"
        ]

    def __len__(self) -> int:
        return len(self._files)

    def __iter__(self) -> Iterator[VirtualFile]:
        return iter(self._files[p] for p in sorted(self._files))

    @property
    def total_bytes(self) -> float:
        # Summed in sorted-path order: float addition is order-sensitive
        # and the dict's iteration order encodes deletion history.
        return sum(self._files[p].size_bytes for p in sorted(self._files))

    # -- events ----------------------------------------------------------------
    def subscribe(self, callback: Callable[[VirtualFile], None]) -> Callable[[], None]:
        """Register a creation-event callback; returns an unsubscriber."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe
