"""Virtual storage substrate.

Campaign simulations move paper-scale files (91 MB … 1200 MB, hundreds of
them) — materializing those on disk would make the 1-hour experiments
unrunnable.  :class:`~repro.storage.vfs.VirtualFS` models a filesystem
namespace whose files carry *sizes, checksums and metadata* but no
payload bytes; the transfer fabric moves their byte counts, the watcher
observes their creation events, and the analysis step reads their
embedded :class:`~repro.emd.AcquisitionMetadata`.  Content-level
experiments (Figs. 2–3) use real EMD files on the real filesystem
instead.
"""

from .vfs import VirtualFS, VirtualFile

__all__ = ["VirtualFS", "VirtualFile"]
