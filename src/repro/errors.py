"""Exception hierarchy for the PicoProbe data-flow reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish infrastructure faults (transfer failures, scheduler
rejections, authorization denials) from programming errors (which surface as
ordinary :class:`ValueError`/:class:`TypeError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "FormatError",
    "AuthError",
    "PermissionDenied",
    "EndpointError",
    "TransferError",
    "ChecksumError",
    "ComputeError",
    "FunctionNotRegistered",
    "SchedulerError",
    "FlowError",
    "FlowDefinitionError",
    "ActionFailed",
    "ActionTimeout",
    "ServiceUnavailable",
    "SearchError",
    "SchemaError",
    "WatcherError",
    "CheckpointError",
    "CalibrationError",
    "ChaosError",
    "StreamError",
    "IntegrityError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel (e.g. yielding a
    non-event, running a finished environment backwards in time)."""


class FormatError(ReproError):
    """Corrupt or malformed h5lite/EMD container data."""


class AuthError(ReproError):
    """Authentication failure: unknown identity, expired or malformed token."""


class PermissionDenied(AuthError):
    """A token was valid but lacked the scope or ACL required for an action."""


class EndpointError(ReproError):
    """An endpoint (transfer or compute) is unreachable or misconfigured."""


class TransferError(ReproError):
    """A transfer task failed permanently (after exhausting retries)."""


class ChecksumError(TransferError):
    """Destination checksum did not match the source after a transfer."""


class ComputeError(ReproError):
    """A remotely executed function raised, or the task was lost."""


class FunctionNotRegistered(ComputeError):
    """A task referenced a function id unknown to the compute service."""


class SchedulerError(ComputeError):
    """The batch scheduler rejected a job (bad resource request, shutdown)."""


class FlowError(ReproError):
    """A flow run failed permanently."""


class FlowDefinitionError(FlowError):
    """A flow definition is structurally invalid (unknown state, no start,
    unreachable states, duplicate state names)."""


class ActionFailed(FlowError):
    """An action provider reported a terminal FAILED status."""


class ActionTimeout(FlowError):
    """A flow action exceeded its per-attempt sim-time timeout."""


class ServiceUnavailable(ReproError):
    """A cloud service was called during an outage window.

    Raised by a chaos :class:`~repro.chaos.ServiceGate` after the caller
    has burned ``connect_timeout_s`` of simulated time waiting for a
    connection; retry machinery reads that attribute to charge the wait.
    """

    def __init__(self, message: str, connect_timeout_s: float = 0.0) -> None:
        super().__init__(message)
        self.connect_timeout_s = float(connect_timeout_s)


class ChaosError(ReproError):
    """A chaos plan or scenario is inconsistent (bad window, bad scale,
    unknown service name)."""


class SearchError(ReproError):
    """Search-index ingest or query failure."""


class SchemaError(SearchError):
    """A metadata document failed DataCite-style schema validation."""


class WatcherError(ReproError):
    """Directory-observer failure (e.g. watched root disappeared)."""


class CheckpointError(WatcherError):
    """Checkpoint store corruption or concurrent-writer conflict."""


class CalibrationError(ReproError):
    """Testbed calibration parameters are inconsistent or out of range."""


class StreamError(ReproError):
    """Streaming-ingest failure (publisher/receiver protocol violation)."""


class IntegrityError(ReproError):
    """A payload failed digest verification against its declared
    checksum — at rest (bit rot), in flight (chunk corruption), or on
    read before analysis.  Raising it marks the consuming task FAILED;
    the record is then quarantined rather than published."""
