"""Deterministic random-number streams.

Every stochastic component (instrument noise, service-latency jitter, fault
injection) draws from its **own named stream** derived from a single campaign
seed, so adding a new consumer never perturbs the draws seen by existing
ones.  Streams are NumPy :class:`~numpy.random.Generator` objects seeded via
:class:`~numpy.random.SeedSequence` spawning keyed on a stable hash of the
stream name.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry", "stream", "lognormal_from_median"]


def _name_key(name: str) -> int:
    """Stable 32-bit key for a stream name (process-independent, unlike
    builtin ``hash``)."""
    return zlib.crc32(name.encode("utf-8"))


class RngRegistry:
    """A family of independent, reproducible random streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("transfer.jitter")
    >>> b = rngs.stream("instrument.noise")
    >>> a is rngs.stream("transfer.jitter")   # memoized
    True

    Two registries built with the same seed produce identical streams for
    identical names regardless of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (memoized) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(_name_key(name),))
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are independent of this one (for
        replicated experiments: one fork per repetition)."""
        return RngRegistry(seed=(self.seed * 1_000_003 + int(salt)) & 0x7FFF_FFFF)


_DEFAULT = RngRegistry(seed=0)


def stream(name: str) -> np.random.Generator:
    """Stream from the module-level default registry (seed 0).

    Library code should prefer accepting an explicit :class:`RngRegistry`;
    this helper exists for scripts and doctests.
    """
    return _DEFAULT.stream(name)


def lognormal_from_median(rng: np.random.Generator, median: float, sigma: float) -> float:
    """Draw a lognormal variate parameterized by its **median** (not its
    underlying mu), which is how service latencies are calibrated from the
    paper's reported medians.

    ``sigma`` is the shape parameter of the underlying normal; ``sigma=0``
    returns ``median`` exactly.
    """
    if median < 0:
        raise ValueError(f"median must be >= 0, got {median}")
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if median == 0 or sigma == 0:
        return float(median)
    return float(median * np.exp(rng.normal(0.0, sigma)))
