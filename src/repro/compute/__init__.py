"""Globus-Compute-style federated function serving.

A cloud routing service, per-site endpoint agents, and a PBS-like batch
scheduler with cold-start (queue + boot + library-cache) and warm-node
reuse dynamics — the "Data Analysis" step of every flow (Sec. 2.2.2).
"""

from .endpoint import ComputeEndpoint, TaskOutcome
from .function import FunctionRegistry, RegisteredFunction, constant_cost
from .scheduler import BatchScheduler, Node
from .service import ComputeService, ComputeTask, ComputeTaskStatus

__all__ = [
    "ComputeService",
    "ComputeTask",
    "ComputeTaskStatus",
    "ComputeEndpoint",
    "TaskOutcome",
    "BatchScheduler",
    "Node",
    "FunctionRegistry",
    "RegisteredFunction",
    "constant_cost",
]
