"""Compute endpoint agent: node leasing, warm reuse, task execution.

The endpoint receives tasks from the compute service, runs them on
batch nodes, and keeps finished nodes *warm* for an idle window so that
subsequent flows skip provisioning entirely (the paper's key cold/warm
dynamic).  The first task on each fresh node additionally pays the
Python-environment cache warm-up ("cache the Python libraries required
for analysis", Sec. 3.3).

Internally, leased nodes live in a FIFO :class:`~repro.sim.Store`: a
task takes the first available warm node, or triggers a provisioner
that queues on the batch scheduler.  Whichever node shows up first —
freshly booted or just parked by a finishing task — goes to the
longest-waiting task, so demand never deadlocks behind a parked node.
A provisioner that finishes after demand has evaporated returns its
node to the scheduler immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..errors import ComputeError
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_SPAN, NULL_TRACER
from ..rng import RngRegistry, lognormal_from_median
from ..sim import Environment, Event, Store
from .function import RegisteredFunction
from .scheduler import BatchScheduler, Node

__all__ = ["ComputeEndpoint", "TaskOutcome"]


@dataclass
class TaskOutcome:
    """What the endpoint reports back per task."""

    result: Any = None
    error: Optional[str] = None
    node_id: str = ""
    cold_start: bool = False  # first task ever on its node?
    env_cache_paid: bool = False  # did it pay library warm-up?
    queued_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    node_failures: int = 0  # chaos: nodes lost under this task

    @property
    def ok(self) -> bool:
        return self.error is None


class ComputeEndpoint:
    """A user-deployed endpoint agent on the HPC side.

    Parameters
    ----------
    env, name, scheduler:
        Environment, endpoint id, and the batch system behind it.
    env_cache_median_s / env_cache_sigma:
        Library warm-up on a node's first task.
    idle_timeout_s:
        Warm nodes are parked this long before being released back to
        the batch pool.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        scheduler: BatchScheduler,
        env_cache_median_s: float = 60.0,
        env_cache_sigma: float = 0.2,
        idle_timeout_s: float = 600.0,
        rngs: Optional[RngRegistry] = None,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        if env_cache_median_s < 0 or idle_timeout_s < 0:
            raise ComputeError("durations must be >= 0")
        self.env = env
        self.name = name
        self.scheduler = scheduler
        self.env_cache_median_s = float(env_cache_median_s)
        self.env_cache_sigma = float(env_cache_sigma)
        self.idle_timeout_s = float(idle_timeout_s)
        self.rngs = rngs or RngRegistry(seed=0)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        m = metrics if metrics is not None else NULL_METRICS
        self._m_tasks = m.counter(f"endpoint.{name}.tasks")
        self._m_cold = m.counter(f"endpoint.{name}.cold_starts")
        self._m_warm = m.gauge(f"endpoint.{name}.warm_nodes")
        self._m_queue_wait = m.histogram(f"endpoint.{name}.queue_wait_s")
        self._available: Store = Store(env)  # parked warm + fresh nodes
        self._park_epoch: dict[str, int] = {}  # reaper invalidation tokens
        self._metrics = m
        self._lazy_counters: dict[str, Any] = {}
        #: Chaos hooks: a node-failure spec (duck-typed, see
        #: :class:`repro.chaos.NodeFailureSpec`) plus its RNG stream.
        #: ``None`` (the default) makes zero draws and zero extra events.
        self.node_chaos: Any = None
        self.chaos_rng: Any = None
        #: Observability.
        self.tasks_executed = 0
        self.cold_starts = 0
        self.provisions_wasted = 0
        self.node_failures = 0

    # -- node pool management -------------------------------------------------
    @property
    def warm_nodes(self) -> int:
        return len(self._available)

    def _bump_epoch(self, node: Node) -> int:
        epoch = self._park_epoch.get(node.node_id, 0) + 1
        self._park_epoch[node.node_id] = epoch
        return epoch

    def _park(self, node: Node) -> None:
        """Make ``node`` available again; reap it if idle past timeout."""
        epoch = self._bump_epoch(node)
        self._available.put(node)
        self._m_warm.set(len(self._available))
        self.env.process(self._reap_after_idle(node, epoch))

    def _reap_after_idle(self, node: Node, epoch: int) -> Generator:
        yield self.env.timeout(self.idle_timeout_s)
        still_parked = node in self._available.items
        if still_parked and self._park_epoch.get(node.node_id) == epoch:
            self._available.items.remove(node)
            self._m_warm.set(len(self._available))
            self.scheduler.release(node)

    def _provisioner(self) -> Generator:
        node = yield from self.scheduler.provision()
        if self._available.pending_getters == 0:
            # Demand evaporated while we sat in the batch queue (another
            # task's node was reused instead): hand the node straight back.
            self.provisions_wasted += 1
            self.scheduler.release(node)
            return
        self._bump_epoch(node)
        yield self._available.put(node)
        self._m_warm.set(len(self._available))

    # -- task execution ----------------------------------------------------------
    def execute(
        self,
        func: RegisteredFunction,
        args: tuple,
        kwargs: dict,
        span: Any = NULL_SPAN,
    ) -> Event:
        """Run a task; returns an event succeeding with a
        :class:`TaskOutcome` (the outcome's ``error`` is set rather than
        failing the event, so pollers see FAILED status).  ``span`` is
        the caller's task span; endpoint phases trace as its children."""
        done = self.env.event()
        self.env.process(self._run(func, args, kwargs, done, span))
        return done

    def _counter(self, name: str):
        """Lazily registered counter — chaos-path instruments must not
        appear in a clean campaign's metrics export."""
        c = self._lazy_counters.get(name)
        if c is None:
            c = self._metrics.counter(name)
            self._lazy_counters[name] = c
        return c

    def _run(
        self,
        func: RegisteredFunction,
        args: tuple,
        kwargs: dict,
        done: Event,
        span: Any = NULL_SPAN,
    ) -> Generator:
        outcome = TaskOutcome(queued_at=self.env.now)
        while True:
            wait_span = self.tracer.start("compute.queue_wait", span)
            try:
                if len(self._available) == 0:
                    # No warm node parked right now: ask the batch system
                    # for one.  If a warm node frees up first, we take it
                    # and the fresh node is returned (see _provisioner).
                    self.env.process(self._provisioner())
                node: Node = yield self._available.get()
                self._m_warm.set(len(self._available))
                self._bump_epoch(node)  # invalidate any pending reaper
                outcome.node_id = node.node_id
                outcome.cold_start = node.tasks_run == 0
                if outcome.cold_start:
                    self.cold_starts += 1
                    self._m_cold.inc()
                outcome.started_at = self.env.now
                wait_span.set("node_id", node.node_id).set(
                    "cold_start", outcome.cold_start
                )
            finally:
                wait_span.finish()
            self._m_queue_wait.observe(outcome.started_at - outcome.queued_at)
            node_lost = False
            try:
                if not node.env_cached:
                    warm_span = self.tracer.start("compute.env_cache", span)
                    try:
                        warmup = lognormal_from_median(
                            self.rngs.stream("endpoint.envcache"),
                            self.env_cache_median_s,
                            self.env_cache_sigma,
                        )
                        if warmup > 0:
                            yield self.env.timeout(warmup)
                        node.env_cached = True
                        outcome.env_cache_paid = True
                        warm_span.set("node_id", node.node_id)
                    finally:
                        warm_span.finish()
                exec_span = self.tracer.start("compute.exec", span).set(
                    "function", func.name
                )
                try:
                    charge = func.charge(args, kwargs)
                    fail_frac = (
                        self.node_chaos.draw(self.chaos_rng)
                        if self.node_chaos is not None
                        else None
                    )
                    if fail_frac is not None:
                        # The node dies mid-task: burn part of the work,
                        # lose the node (back to the batch pool, not the
                        # warm store), and re-queue under the budget.
                        burn = charge * fail_frac
                        if burn > 0:
                            yield self.env.timeout(burn)
                        node_lost = True
                        outcome.node_failures += 1
                        self.node_failures += 1
                        self._counter(
                            f"endpoint.{self.name}.node_failures"
                        ).inc()
                        exec_span.set("ok", False).set("node_failed", True)
                        self.scheduler.release(node)
                        if outcome.node_failures <= self.node_chaos.retry_budget:
                            continue
                        outcome.error = (
                            f"node {node.node_id} died mid-task; retry budget "
                            f"({self.node_chaos.retry_budget}) exhausted after "
                            f"{outcome.node_failures} node failures"
                        )
                    else:
                        if charge > 0:
                            yield self.env.timeout(charge)
                        try:
                            outcome.result = func.fn(*args, **kwargs)
                        except Exception as exc:  # the *user function* failed
                            outcome.error = f"{type(exc).__name__}: {exc}"
                        exec_span.set("ok", outcome.ok)
                        node.tasks_run += 1
                        self.tasks_executed += 1
                        self._m_tasks.inc()
                finally:
                    exec_span.finish()
            finally:
                outcome.finished_at = self.env.now
                if not node_lost:
                    self._park(node)
            done.succeed(outcome)
            return
