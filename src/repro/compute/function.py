"""Function registry for the federated compute service.

Globus Compute executes *registered functions*: a client registers a
Python function body and later submits invocations by function id.  Our
registry keeps that model, with one simulation twist: each function
carries a **cost model** mapping its arguments to charged compute
seconds.  The callable itself really runs (producing real metadata
documents, plots, detection results); the cost model decides how long
the node is occupied in simulated time — including data-dependent terms
like "conversion time proportional to tensor bytes", which is what makes
the Fig. 4 compute-phase breakdown mechanistic rather than curve-fit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import FunctionNotRegistered

__all__ = ["RegisteredFunction", "FunctionRegistry", "constant_cost"]

CostModel = Callable[[tuple, dict], float]


def constant_cost(seconds: float) -> CostModel:
    """A cost model that charges a fixed duration per invocation."""

    def model(args: tuple, kwargs: dict) -> float:
        return float(seconds)

    return model


@dataclass(frozen=True)
class RegisteredFunction:
    """A function registered with the compute service."""

    function_id: str
    name: str
    fn: Callable[..., Any]
    cost_model: CostModel

    def charge(self, args: tuple, kwargs: dict) -> float:
        cost = float(self.cost_model(args, kwargs))
        if cost < 0:
            raise ValueError(f"cost model for {self.name!r} returned {cost}")
        return cost


class FunctionRegistry:
    """Id-addressed store of registered functions."""

    def __init__(self) -> None:
        self._functions: dict[str, RegisteredFunction] = {}
        self._ids = itertools.count(1)

    def register(
        self,
        fn: Callable[..., Any],
        cost_model: Optional[CostModel] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register ``fn``; returns its function id.

        ``cost_model`` defaults to a zero-cost model (useful for
        negligible publication helpers).
        """
        func_id = f"func-{next(self._ids):04d}"
        self._functions[func_id] = RegisteredFunction(
            function_id=func_id,
            name=name or getattr(fn, "__name__", "anonymous"),
            fn=fn,
            cost_model=cost_model or constant_cost(0.0),
        )
        return func_id

    def get(self, function_id: str) -> RegisteredFunction:
        try:
            return self._functions[function_id]
        except KeyError:
            raise FunctionNotRegistered(
                f"unknown function id: {function_id!r}"
            ) from None

    def __len__(self) -> int:
        return len(self._functions)
