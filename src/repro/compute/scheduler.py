"""A PBS-like batch scheduler for the Polaris stand-in.

The paper's compute endpoint "is configured to acquire compute nodes on
the Polaris supercomputer by using the PBS scheduler" — and its maximum
flow runtimes come from exactly this path: the *first* flow pays a queue
wait, a node boot, and Python-library cache warm-up, while subsequent
flows "are able to reuse nodes already provisioned to the previous
flows" (Sec. 3.3).

:class:`BatchScheduler` models a bounded node pool with FCFS granting,
a stochastic queue delay (the PBS scheduling cycle plus backfill luck),
and a node-boot delay.  The environment-cache cost is charged by the
endpoint on each node's first task.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..errors import SchedulerError
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from ..rng import RngRegistry, lognormal_from_median
from ..sim import Environment, Resource
from ..sim.resources import Request

__all__ = ["Node", "BatchScheduler"]


@dataclass
class Node:
    """A provisioned compute node."""

    node_id: str
    provisioned_at: float
    request: Request  # the scheduler-pool claim backing this node
    env_cached: bool = False  # Python libraries warmed up?
    tasks_run: int = 0
    released: bool = False


class BatchScheduler:
    """Bounded pool of batch nodes with queue + boot delays.

    Parameters
    ----------
    env:
        Simulation environment.
    n_nodes:
        Pool size available to this endpoint's queue.
    queue_median_s / queue_sigma:
        Lognormal PBS queue delay when nodes are free (scheduler cycle,
        prologue).  Real contention (no free node) adds FCFS wait on top.
    boot_median_s / boot_sigma:
        Node startup: prologue scripts, filesystem mounts.
    """

    def __init__(
        self,
        env: Environment,
        n_nodes: int = 4,
        queue_median_s: float = 30.0,
        queue_sigma: float = 0.4,
        boot_median_s: float = 30.0,
        boot_sigma: float = 0.2,
        rngs: Optional[RngRegistry] = None,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        if n_nodes < 1:
            raise SchedulerError(f"n_nodes must be >= 1, got {n_nodes}")
        for name, v in (
            ("queue_median_s", queue_median_s),
            ("boot_median_s", boot_median_s),
        ):
            if v < 0:
                raise SchedulerError(f"{name} must be >= 0, got {v}")
        self.env = env
        self.pool = Resource(env, capacity=n_nodes)
        self.queue_median_s = float(queue_median_s)
        self.queue_sigma = float(queue_sigma)
        self.boot_median_s = float(boot_median_s)
        self.boot_sigma = float(boot_sigma)
        self.rngs = rngs or RngRegistry(seed=0)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        m = metrics if metrics is not None else NULL_METRICS
        self._m_provisions = m.counter("scheduler.provisions")
        self._m_releases = m.counter("scheduler.releases")
        self._m_busy = m.gauge("scheduler.busy_nodes")
        self._m_queue_wait = m.histogram("scheduler.queue_wait_s")
        self._ids = itertools.count(1)
        #: Observability counters.
        self.provision_count = 0
        self.release_count = 0

    @property
    def busy_nodes(self) -> int:
        return self.pool.count

    def provision(self) -> Generator:
        """DES sub-process: claim a pool slot, pay queue + boot delays,
        and return a fresh (cold) :class:`Node`.

        Use as ``node = yield from scheduler.provision()``.
        """
        rng = self.rngs.stream("scheduler.delays")
        span = self.tracer.start("scheduler.provision")
        try:
            requested_at = self.env.now
            req = self.pool.request()
            try:
                queue_span = self.tracer.start("scheduler.queue", span)
                try:
                    yield req
                    queue_delay = lognormal_from_median(
                        rng, self.queue_median_s, self.queue_sigma
                    )
                    if queue_delay > 0:
                        yield self.env.timeout(queue_delay)
                finally:
                    queue_span.finish()
                self._m_queue_wait.observe(self.env.now - requested_at)
                boot_span = self.tracer.start("scheduler.boot", span)
                try:
                    boot_delay = lognormal_from_median(
                        rng, self.boot_median_s, self.boot_sigma
                    )
                    if boot_delay > 0:
                        yield self.env.timeout(boot_delay)
                finally:
                    boot_span.finish()
                self.env.touch(self, "w")
                self.provision_count += 1
                self._m_provisions.inc()
                self._m_busy.set(self.pool.count)
                node = Node(
                    node_id=f"node-{next(self._ids):03d}",
                    provisioned_at=self.env.now,
                    request=req,
                )
            except BaseException:
                # The kernel threw into us mid-provision (interrupt,
                # campaign teardown): the pool claim must not outlive
                # the generator or the slot is gone for the whole run.
                req.release()
                raise
            span.set("node_id", node.node_id)
            return node
        finally:
            span.finish()

    def release(self, node: Node) -> None:
        """Return a node to the pool (idempotence guarded)."""
        if node.released:
            raise SchedulerError(f"{node.node_id} already released")
        node.released = True
        self.env.touch(self, "w")
        node.request.release()
        self.release_count += 1
        self._m_releases.inc()
        self._m_busy.set(self.pool.count)
