"""The federated compute service (Globus Compute / funcX stand-in).

Clients register functions, then submit invocations addressed to an
endpoint; the cloud service routes the task, the endpoint executes it on
batch resources, and clients poll the task id for status and results —
the exact interaction pattern of Sec. 2.2.2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Generator, Optional

from ..auth import ScopeAuthorizer, Token
from ..auth.identity import COMPUTE_SCOPE, AuthClient
from ..errors import ComputeError, EndpointError
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_SPAN, NULL_TRACER
from ..rng import RngRegistry, lognormal_from_median
from ..sim import Environment, Event
from .endpoint import ComputeEndpoint, TaskOutcome
from .function import CostModel, FunctionRegistry

__all__ = ["ComputeService", "ComputeTaskStatus", "ComputeTask"]


class ComputeTaskStatus(str, Enum):
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    SUCCESS = "SUCCESS"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        return self in (ComputeTaskStatus.SUCCESS, ComputeTaskStatus.FAILED)


@dataclass
class ComputeTask:
    """One submitted invocation and its observable record."""

    task_id: str
    owner: str
    endpoint: str
    function_id: str
    submitted_at: float
    status: ComputeTaskStatus = ComputeTaskStatus.PENDING
    outcome: Optional[TaskOutcome] = None
    completed_at: Optional[float] = None

    def snapshot(self) -> dict:
        doc = {
            "task_id": self.task_id,
            "status": self.status.value,
            "endpoint": self.endpoint,
            "function_id": self.function_id,
        }
        if self.outcome is not None:
            doc["result"] = self.outcome.result
            doc["error"] = self.outcome.error
            doc["node_id"] = self.outcome.node_id
            doc["cold_start"] = self.outcome.cold_start
        return doc


class ComputeService:
    """Routes function invocations to registered endpoints."""

    def __init__(
        self,
        env: Environment,
        auth: AuthClient,
        rngs: Optional[RngRegistry] = None,
        api_latency_s: float = 0.2,
        latency_sigma: float = 0.3,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        self.env = env
        self.authorizer = ScopeAuthorizer(auth, COMPUTE_SCOPE)
        self.rngs = rngs or RngRegistry(seed=0)
        self.api_latency_s = float(api_latency_s)
        self.latency_sigma = float(latency_sigma)
        #: Chaos hook: a duck-typed outage gate (see
        #: :class:`repro.chaos.ServiceGate`).  ``None`` means always up.
        self.gate: Any = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        m = metrics if metrics is not None else NULL_METRICS
        self._m_submitted = m.counter("compute.tasks_submitted")
        self._m_succeeded = m.counter("compute.tasks_succeeded")
        self._m_failed = m.counter("compute.tasks_failed")
        self._m_duration = m.histogram("compute.task_duration_s")
        self.functions = FunctionRegistry()
        self._endpoints: dict[str, ComputeEndpoint] = {}
        self._tasks: dict[str, ComputeTask] = {}
        self._task_events: dict[str, Event] = {}
        self._ids = itertools.count(1)

    # -- registry ---------------------------------------------------------------
    def register_endpoint(self, endpoint: ComputeEndpoint) -> None:
        if endpoint.name in self._endpoints:
            raise EndpointError(f"endpoint already registered: {endpoint.name!r}")
        self._endpoints[endpoint.name] = endpoint

    def endpoint(self, name: str) -> ComputeEndpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise EndpointError(f"unknown compute endpoint: {name!r}") from None

    def register_function(
        self,
        fn: Callable[..., Any],
        cost_model: Optional[CostModel] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register ``fn`` with an optional simulated cost model."""
        return self.functions.register(fn, cost_model, name)

    # -- client API ---------------------------------------------------------------
    def check_available(self) -> None:
        """Raise :class:`~repro.errors.ServiceUnavailable` when a chaos
        gate has the cloud API inside an outage window.  Tasks already
        routed to an endpoint keep executing — only the API is down."""
        if self.gate is not None:
            self.gate.check(self.env.now)

    def submit(
        self,
        token: Token,
        endpoint: str,
        function_id: str,
        *args: Any,
        **kwargs: Any,
    ) -> str:
        """Submit an invocation; returns a task id immediately."""
        self.check_available()
        identity = self.authorizer.authorize(token, self.env.now)
        ep = self.endpoint(endpoint)
        func = self.functions.get(function_id)  # raises if unknown
        task = ComputeTask(
            task_id=f"ctask-{next(self._ids):06d}",
            owner=identity.username,
            endpoint=endpoint,
            function_id=function_id,
            submitted_at=self.env.now,
        )
        self._tasks[task.task_id] = task
        self._task_events[task.task_id] = self.env.event()
        # The task span opens at ``submitted_at`` and closes exactly at
        # ``completed_at`` so its duration equals the active time the
        # compute action provider reports for Fig. 4.
        self._m_submitted.inc()
        span = (
            self.tracer.start("compute.task")
            .set("action_id", task.task_id)
            .set("endpoint", endpoint)
            .set("function", function_id)
        )
        self.env.process(self._drive(task, ep, func, args, kwargs, span))
        return task.task_id

    def get_task(self, token: Token, task_id: str) -> dict:
        """Poll task status/result (authenticated)."""
        self.authorizer.authorize(token, self.env.now)
        try:
            return self._tasks[task_id].snapshot()
        except KeyError:
            raise ComputeError(f"unknown task: {task_id!r}") from None

    def task_record(self, task_id: str) -> ComputeTask:
        self.check_available()
        try:
            return self._tasks[task_id]
        except KeyError:
            raise ComputeError(f"unknown task: {task_id!r}") from None

    def wait(self, task_id: str) -> Event:
        """DES event firing at task completion (diagnostic convenience)."""
        try:
            return self._task_events[task_id]
        except KeyError:
            raise ComputeError(f"unknown task: {task_id!r}") from None

    # -- internals -------------------------------------------------------------------
    def _drive(
        self,
        task: ComputeTask,
        ep: ComputeEndpoint,
        func,
        args: tuple,
        kwargs: dict,
        span: Any = NULL_SPAN,
    ) -> Generator:
        # Cloud routing hop: service receives the task, ships it to the
        # endpoint's queue.
        try:
            rng = self.rngs.stream("compute.latency")
            yield self.env.timeout(
                lognormal_from_median(rng, self.api_latency_s, self.latency_sigma)
            )
            task.status = ComputeTaskStatus.RUNNING
            outcome: TaskOutcome = yield ep.execute(func, args, kwargs, span=span)
            task.outcome = outcome
            task.completed_at = self.env.now
            task.status = (
                ComputeTaskStatus.SUCCESS if outcome.ok else ComputeTaskStatus.FAILED
            )
            span.set("status", task.status.value).set(
                "node_id", outcome.node_id
            ).set("cold_start", outcome.cold_start)
        finally:
            span.finish()
        if outcome.ok:
            self._m_succeeded.inc()
        else:
            self._m_failed.inc()
        self._m_duration.observe(task.completed_at - task.submitted_at)
        self._task_events[task.task_id].succeed(task)
