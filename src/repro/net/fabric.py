"""Flow-level network simulation with max–min fair bandwidth sharing.

Packet-level simulation of multi-hundred-MB transfers would be absurd;
transfer tools like Globus are well modeled at *flow level*: each active
stream gets a rate from a max–min fair allocation over the links it
traverses (progressive filling), and rates are recomputed whenever a
stream starts or finishes.  This captures exactly the contention the
paper measures — concurrent flows sharing the 1 Gbps site switch.

The fabric is a DES component: :meth:`NetworkFabric.transfer` returns an
event that fires when the last byte arrives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..errors import EndpointError
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_SPAN, NULL_TRACER
from ..sim import Environment, Event, Interrupt, Process
from .topology import Link, Topology

__all__ = ["NetworkFabric", "Stream", "max_min_fair_rates"]

# A millibyte of slack absorbs float dust when settling GB-scale streams.
_EPS_BYTES = 1e-3
_EPS_RATE = 1e-9


@dataclass
class Stream:
    """One active transfer flow."""

    stream_id: int
    src: str
    dst: str
    links: tuple[Link, ...]
    remaining_bytes: float
    done: Event
    total_bytes: float = 0.0
    rate: float = 0.0
    efficiency: float = 1.0  # protocol efficiency (<=1) applied to its share
    last_update: float = 0.0
    started_at: float = 0.0
    span: Any = NULL_SPAN  # tracing handle (NULL_SPAN when tracing is off)

    @property
    def eta(self) -> float:
        if self.rate <= _EPS_RATE:
            return float("inf")
        return self.remaining_bytes / self.rate


def max_min_fair_rates(
    streams: "list[Stream]", capacities: "dict[tuple[str, str], float]"
) -> dict[int, float]:
    """Progressive-filling max–min fair allocation.

    Each stream's share on every link it crosses is equal among unfrozen
    streams; the most-contended link freezes its streams at the current
    fair share each round.  Streams with an ``efficiency`` factor < 1
    achieve only that fraction of their allocated share (protocol
    overhead), with the unused remainder left on the table — a deliberate
    simplification that keeps the allocation strictly fair.
    """
    rates: dict[int, float] = {}
    unfrozen = {s.stream_id: s for s in streams if s.links}
    for s in streams:
        if not s.links:  # same-host transfer: effectively infinite rate
            rates[s.stream_id] = float("inf")
    cap_left = dict(capacities)
    # Link -> set of unfrozen stream ids crossing it.
    while unfrozen:
        users: dict[tuple[str, str], list[int]] = {}
        for sid, s in unfrozen.items():
            for link in s.links:
                users.setdefault(link.key, []).append(sid)
        # Fair share offered by each occupied link.
        bottleneck_key = None
        bottleneck_share = float("inf")
        for key, sids in users.items():
            share = cap_left[key] / len(sids)
            if share < bottleneck_share:
                bottleneck_share = share
                bottleneck_key = key
        assert bottleneck_key is not None
        # Freeze every stream crossing the bottleneck.
        for sid in users[bottleneck_key]:
            s = unfrozen.pop(sid)
            rates[sid] = bottleneck_share * s.efficiency
            for link in s.links:
                cap_left[link.key] = max(0.0, cap_left[link.key] - bottleneck_share)
    return rates


class NetworkFabric:
    """Shared-bandwidth transfer engine over a :class:`Topology`."""

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        self.env = env
        self.topology = topology
        self.tracer = tracer if tracer is not None else NULL_TRACER
        m = metrics if metrics is not None else NULL_METRICS
        self._metrics = m
        self._m_streams = m.counter("net.streams_started")
        self._m_bytes = m.counter("net.bytes_delivered")
        self._m_active = m.gauge("net.active_streams")
        self._m_aborted: Any = None  # lazy; only aborting campaigns register it
        self._streams: dict[int, Stream] = {}
        #: Link key -> set of active stream ids crossing it.  The index
        #: behind component-restricted reallocation: a membership or
        #: link-health change only recomputes the connected component
        #: (streams coupled through shared links) it touches.
        self._users: dict[tuple[str, str], set[int]] = {}
        #: (src, dst) -> insertion-ordered {sid: Stream}; makes
        #: :meth:`throughput` proportional to the pair's streams, not
        #: the whole fabric, while preserving the summation order of
        #: the old full scan (both are admission-ordered).
        self._by_pair: dict[tuple[str, str], dict[int, Stream]] = {}
        #: Cached :attr:`active_streams` view; None after membership
        #: changes.  Admission order is ascending stream_id, so the
        #: rebuild's sort is a no-op pass over an already-sorted dict.
        self._active_cache: Optional[list[Stream]] = []
        #: Timestamp of the last full settle; settling twice at one
        #: timestamp is arithmetically the identity (zero elapsed time),
        #: so repeat calls return immediately.
        self._last_settle: Optional[float] = None
        self._ids = itertools.count(1)
        self._wake: Optional[Event] = None
        #: Link key -> health scale in [0, 1]; absent means healthy.
        #: Chaos degradation events write this via :meth:`set_link_health`.
        self._link_scale: dict[tuple[str, str], float] = {}
        self._scheduler: Process = env.process(self._run())

    # -- public API ------------------------------------------------------------
    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        efficiency: float = 1.0,
    ) -> Event:
        """Start moving ``nbytes`` from ``src`` to ``dst``.

        Returns an event that succeeds with the :class:`Stream` when the
        transfer completes.  The path's one-way latency is charged before
        bytes start flowing.
        """
        if nbytes < 0:
            raise EndpointError(f"negative transfer size: {nbytes}")
        if not 0 < efficiency <= 1.0:
            raise EndpointError(f"efficiency must be in (0, 1], got {efficiency}")
        links = tuple(self.topology.route(src, dst))
        done = self.env.event()
        stream = Stream(
            stream_id=next(self._ids),
            src=src,
            dst=dst,
            links=links,
            remaining_bytes=float(nbytes),
            done=done,
            total_bytes=float(nbytes),
            efficiency=float(efficiency),
            last_update=self.env.now,
            started_at=self.env.now,
        )
        stream.span = (
            self.tracer.start("net.stream")
            .set("stream_id", stream.stream_id)
            .set("src", src)
            .set("dst", dst)
            .set("bytes", float(nbytes))
        )
        self._m_streams.inc()
        latency = sum(l.latency_s for l in links)
        self.env.process(self._admit_after(stream, latency))
        return done

    @property
    def active_streams(self) -> list[Stream]:
        """Active streams ordered by stream id.

        The list is a cached view rebuilt only after membership changes;
        treat it as read-only.
        """
        cache = self._active_cache
        if cache is None:
            cache = self._active_cache = sorted(
                self._streams.values(), key=lambda s: s.stream_id
            )
        return cache

    def throughput(self, src: str, dst: str) -> float:
        """Aggregate current rate (bytes/s) of active src→dst streams."""
        pair = self._by_pair.get((src, dst))
        if not pair:
            return 0.0
        return sum(s.rate for s in pair.values())

    def set_link_health(self, a: str, b: str, scale: float) -> None:
        """Scale the ``a``–``b`` link's capacity by ``scale`` in [0, 1].

        ``scale=1.0`` restores full health; ``0.0`` blacks the link out
        (in-flight streams stall at zero rate and resume when health
        returns).  Settles accrued bytes, reallocates fair shares, and
        kicks the scheduler — the same re-admission machinery a new
        stream uses, so flapping a link mid-transfer is safe.
        """
        if not 0.0 <= scale <= 1.0:
            raise EndpointError(f"link health scale must be in [0, 1], got {scale}")
        link = self.topology.link(a, b)  # raises for unknown links
        if scale >= 1.0:
            self._link_scale.pop(link.key, None)
        else:
            self._link_scale[link.key] = float(scale)
        if self._streams:
            self._reallocate(self._users.get(link.key, ()))
            self._kick()

    def link_health(self, a: str, b: str) -> float:
        """Current health scale of the ``a``–``b`` link (1.0 = healthy)."""
        return self._link_scale.get(self.topology.link(a, b).key, 1.0)

    def abort(self, done: Event) -> bool:
        """Withdraw the in-flight transfer whose completion event is
        ``done`` (the event :meth:`transfer` returned).

        Returns ``True`` when a live stream was withdrawn; the event
        then succeeds with the partially-delivered :class:`Stream`
        (``remaining_bytes > 0`` marks the abort).  Returns ``False``
        when the transfer already completed, or when the stream is
        still inside its admission-latency window — in that case it
        will be admitted and run to completion normally, so callers
        that re-send the payload must be prepared to deduplicate.

        This is the renegotiation hook for ``repro.stream``: a
        publisher that times out on a blacked-out link withdraws the
        stalled chunk streams before re-sending from the receiver's
        acknowledged sequence number.
        """
        if done.triggered:
            return False
        stream = None
        for s in self.active_streams:
            if s.done is done:
                stream = s
                break
        if stream is None:
            return False
        self._settle()
        sid = stream.stream_id
        del self._streams[sid]
        del self._by_pair[(stream.src, stream.dst)][sid]
        users = self._users
        seeds: set[int] = set()
        for link in stream.links:
            key = link.key
            remaining = users[key]
            remaining.discard(sid)
            if remaining:
                seeds |= remaining
            else:
                del users[key]
        self._active_cache = None
        self._m_active.set(len(self._streams))
        # Aborted partials do not count toward ``net.bytes_delivered``;
        # aborts get their own (lazily created) counter so the chaos
        # instrument never appears in a clean campaign's export.
        if self._m_aborted is None:
            self._m_aborted = self._metrics.counter("net.streams_aborted")
        self._m_aborted.inc()
        stream.rate = 0.0
        stream.span.set("status", "aborted").finish()
        done.succeed(stream)
        if self._streams:
            self._reallocate(seeds)
        self._kick()
        return True

    # -- internals -----------------------------------------------------------
    def _admit_after(self, stream: Stream, latency: float):
        if latency > 0:
            yield self.env.timeout(latency)
        if stream.remaining_bytes <= _EPS_BYTES:
            stream.span.set("status", "done").finish()
            stream.done.succeed(stream)
            return
        stream.last_update = self.env.now
        sid = stream.stream_id
        self._streams[sid] = stream
        for link in stream.links:
            self._users.setdefault(link.key, set()).add(sid)
        self._by_pair.setdefault((stream.src, stream.dst), {})[sid] = stream
        self._active_cache = None
        self._m_active.set(len(self._streams))
        self._reallocate((sid,))
        self._kick()

    def _settle(self) -> None:
        """Account bytes moved since each stream's last update.

        A repeat call at the same timestamp is skipped outright: with
        zero elapsed time the accrual is ``remaining - rate * 0`` — the
        arithmetic identity — so the skip cannot change any value.
        """
        now = self.env.now
        if now == self._last_settle:
            return
        for s in self._streams.values():
            if s.rate > 0:
                s.remaining_bytes = max(
                    0.0, s.remaining_bytes - s.rate * (now - s.last_update)
                )
            s.last_update = now
        self._last_settle = now

    def _component(self, seeds: "Iterable[int]") -> list[Stream]:
        """Every active stream fair-share-coupled to ``seeds``.

        Breadth-first over the per-link user index: two streams are
        coupled when they share a link, directly or transitively.
        Returned in ascending stream-id order — identical to the
        relative order the old full-fabric scan presented to
        :func:`max_min_fair_rates` (ids are assigned in admission
        order), so link tie-breaking inside the allocator is preserved
        bit for bit.
        """
        comp: set[int] = set()
        stack = [sid for sid in seeds if sid in self._streams]
        streams = self._streams
        users = self._users
        while stack:
            sid = stack.pop()
            if sid in comp:
                continue
            comp.add(sid)
            for link in streams[sid].links:
                for other in users[link.key]:
                    if other not in comp:
                        stack.append(other)
        return [streams[sid] for sid in sorted(comp)]

    # repro: hotpath
    def _reallocate(self, seeds: "Iterable[int] | None" = None) -> None:
        """Settle, then recompute fair shares.

        With ``seeds`` (stream ids whose membership, size, or link
        health changed) only their connected component is recomputed.
        Progressive filling decomposes exactly across components — a
        link's residual capacity evolves only through freezes of its
        own users, and the freeze order *within* a component is
        independent of how other components interleave — so the
        restricted recomputation reproduces the global allocation's
        floats bit for bit.  ``None`` recomputes everything (the
        pre-index behaviour).
        """
        self._settle()
        if seeds is None:
            comp = list(self._streams.values())
        else:
            comp = self._component(seeds)
            if not comp:
                return
        caps: dict[tuple[str, str], float] = {}
        scale = self._link_scale
        for s in comp:
            for link in s.links:
                caps[link.key] = link.capacity_bps * scale.get(link.key, 1.0)
        rates = max_min_fair_rates(comp, caps)
        for s in comp:
            s.rate = rates.get(s.stream_id, 0.0)

    def _kick(self) -> None:
        """Wake the scheduler after membership/allocation changes."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
            self._wake = None

    def _run(self):
        inf = float("inf")
        while True:
            if not self._streams:
                self._wake = self.env.event()
                yield self._wake
                continue
            # Inlined ``min(s.eta for ...)``: one pass, no property
            # dispatch per stream.  Same expression, same order, same
            # minimum.
            dt = inf
            for s in self._streams.values():
                rate = s.rate
                if rate > _EPS_RATE:
                    eta = s.remaining_bytes / rate
                    if eta < dt:
                        dt = eta
            if dt == inf:
                if not self._link_scale:
                    # No degraded links: a zero-rate admitted stream is a
                    # fabric bug, not a stall — fail loudly.
                    raise EndpointError("active stream with zero allocated rate")
                # Every stream is stalled behind a blacked-out link: sleep
                # until membership or link health changes.
                self._wake = self.env.event()
                yield self._wake
                continue
            wake = self.env.event()
            self._wake = wake
            # dt is a pure min over stream ETAs: the same value for any
            # iteration order of _streams, so the order taint is vacuous.
            timer = self.env.timeout(dt)  # repro: noqa[N701]  min is order-free
            yield self.env.any_of([timer, wake])
            if self._wake is wake and not wake.triggered:
                # Timer fired: settle and collect the drained streams in
                # one fused pass (same per-stream arithmetic and order
                # as settle-then-scan).
                self._wake = None
                now = self.env.now
                finished = []
                if now == self._last_settle:
                    # Zero-elapsed settle is the identity for every
                    # finite rate; an infinite rate (same-host stream)
                    # must still drain, as the full settle's
                    # ``inf * 0 -> nan -> max(0, nan) = 0`` arithmetic
                    # would have done.
                    for s in self._streams.values():
                        if s.rate == inf:
                            s.remaining_bytes = 0.0
                        if s.remaining_bytes <= _EPS_BYTES:
                            finished.append(s)
                else:
                    for s in self._streams.values():
                        rate = s.rate
                        if rate > 0:
                            s.remaining_bytes = max(
                                0.0,
                                s.remaining_bytes - rate * (now - s.last_update),
                            )
                        s.last_update = now
                        if s.remaining_bytes <= _EPS_BYTES:
                            finished.append(s)
                    self._last_settle = now
                # Batched removal: one index update and (below) one
                # component-restricted reallocation for the whole
                # same-tick completion batch.
                users = self._users
                seeds: set[int] = set()
                for s in finished:
                    del self._streams[s.stream_id]
                    del self._by_pair[(s.src, s.dst)][s.stream_id]
                    for link in s.links:
                        key = link.key
                        remaining = users[key]
                        remaining.discard(s.stream_id)
                        if remaining:
                            seeds |= remaining
                        else:
                            del users[key]
                if finished:
                    self._active_cache = None
                self._m_active.set(len(self._streams))
                for s in finished:
                    self._m_bytes.inc(s.total_bytes)
                    s.span.set("status", "done").finish()
                    s.done.succeed(s)
                if self._streams:
                    self._reallocate(seeds)
            else:
                # New stream admitted mid-flight: rates are already
                # updated, but the per-iteration timer is now stale —
                # withdraw it so repeated admissions cannot bloat the
                # event queue with one abandoned Timeout each.
                if not timer.processed:
                    self.env.cancel(timer)
