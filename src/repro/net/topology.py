"""Network topology: hosts, switches, and capacity/latency-weighted links.

The testbed mirrors Sec. 2.1: PicoProbe user machines behind a 1 Gbps
switch, the ANL backbone at up to 200 Gbps, and the ALCF systems (Eagle
storage, Polaris).  Built on a :mod:`networkx` graph so routing is
shortest-path and easily inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from ..errors import EndpointError

__all__ = ["Link", "Topology"]


@dataclass(frozen=True)
class Link:
    """An undirected link with a shared capacity (bytes/s) and one-way
    latency (seconds)."""

    a: str
    b: str
    capacity_bps: float  # bytes per second, shared across streams
    latency_s: float = 0.0

    @property
    def key(self) -> tuple[str, str]:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


class Topology:
    """Named nodes + capacity links with shortest-path routing."""

    def __init__(self) -> None:
        self._g = nx.Graph()
        self._links: dict[tuple[str, str], Link] = {}

    # -- construction ----------------------------------------------------
    def add_node(self, name: str, kind: str = "host") -> None:
        """Add a host or switch (``kind`` is informational)."""
        if name in self._g:
            raise EndpointError(f"node already exists: {name!r}")
        self._g.add_node(name, kind=kind)

    def add_link(self, a: str, b: str, capacity_bps: float, latency_s: float = 0.0) -> Link:
        """Connect two existing nodes."""
        for n in (a, b):
            if n not in self._g:
                raise EndpointError(f"unknown node: {n!r}")
        if a == b:
            raise EndpointError("self-links are not allowed")
        if capacity_bps <= 0:
            raise EndpointError(f"capacity must be positive, got {capacity_bps}")
        link = Link(a, b, float(capacity_bps), float(latency_s))
        if link.key in self._links:
            raise EndpointError(f"link already exists: {link.key}")
        self._links[link.key] = link
        self._g.add_edge(a, b, weight=latency_s if latency_s > 0 else 1e-9)
        return link

    # -- queries -----------------------------------------------------------
    def nodes(self) -> list[str]:
        return sorted(self._g.nodes)

    def node_kind(self, name: str) -> str:
        try:
            return self._g.nodes[name]["kind"]
        except KeyError:
            raise EndpointError(f"unknown node: {name!r}") from None

    def link(self, a: str, b: str) -> Link:
        key = (a, b) if a <= b else (b, a)
        try:
            return self._links[key]
        except KeyError:
            raise EndpointError(f"no link between {a!r} and {b!r}") from None

    def links(self) -> list[Link]:
        return sorted(self._links.values(), key=lambda l: l.key)

    def route(self, src: str, dst: str) -> list[Link]:
        """Latency-weighted shortest path as a list of links."""
        for n in (src, dst):
            if n not in self._g:
                raise EndpointError(f"unknown node: {n!r}")
        if src == dst:
            return []
        try:
            nodes = nx.shortest_path(self._g, src, dst, weight="weight")
        except nx.NetworkXNoPath:
            raise EndpointError(f"no route from {src!r} to {dst!r}") from None
        return [self.link(a, b) for a, b in zip(nodes, nodes[1:])]

    def path_latency(self, src: str, dst: str) -> float:
        """Sum of one-way link latencies along the route."""
        return sum(l.latency_s for l in self.route(src, dst))

    def bottleneck_capacity(self, src: str, dst: str) -> float:
        """Smallest link capacity along the route (inf for src == dst)."""
        route = self.route(src, dst)
        return min((l.capacity_bps for l in route), default=float("inf"))
