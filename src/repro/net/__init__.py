"""Network substrate: topology modeling and max–min fair flow simulation.

Models the paper's data path — PicoProbe user machines behind a 1 Gbps
switch, the 200 Gbps ANL backbone, ALCF storage — at flow level, so that
concurrent Globus-style transfers contend for shared links exactly as in
the Sec. 3.3 experiments.
"""

from .topology import Link, Topology
from .fabric import NetworkFabric, Stream, max_min_fair_rates

__all__ = ["Topology", "Link", "NetworkFabric", "Stream", "max_min_fair_rates"]
