"""In-flight chunk corruption: the streaming fast path's adversary.

A :class:`ChunkCorruptor` is installed on the
:class:`~repro.stream.StreamPublisher` by the
:class:`~repro.chaos.ChaosController` when the plan's
:class:`~repro.chaos.plan.DataCorruptionSpec` arms chunk faults.  The
publisher consults it once per chunk send (including retransmits —
the wire can mangle a retry too); a draw either passes the chunk
through untouched or returns the fault to apply:

* ``chunk_corrupt`` — the payload bytes are mangled in flight; the
  wire digest no longer matches what the receiver derives from the
  session's declared digest;
* ``chunk_truncate`` — the stream is cut short; the chunk arrives
  undersized (and mangled — a partial payload hashes differently).

All draws come from the dedicated ``chaos.corruption`` RNG stream, so
campaigns without corruption never touch it and stay bit-identical.
"""

from __future__ import annotations

from typing import Any, Optional

from .plan import DataCorruptionSpec

__all__ = ["ChunkCorruptor"]


class ChunkCorruptor:
    """Per-chunk wire-fault draws, logged through the controller."""

    def __init__(
        self, spec: DataCorruptionSpec, rng: Any, controller: Any
    ) -> None:
        self.spec = spec
        self.rng = rng
        self.controller = controller

    def draw(
        self, session: Any, seq: int, resend: int
    ) -> Optional[tuple[str, float, str]]:
        """One seeded draw for chunk ``seq`` (send attempt ``resend``).

        Returns ``None`` (clean) or ``(kind, size_fraction, salt)``;
        the salt makes each mangled digest unique per send attempt, so
        a re-corrupted retransmit cannot collide with the original.
        """
        spec = self.spec
        u = float(self.rng.random())
        if u < spec.chunk_corrupt_prob:
            kind, frac = "chunk_corrupt", 1.0
        elif u < spec.chunk_corrupt_prob + spec.chunk_truncate_prob:
            kind, frac = "chunk_truncate", float(self.rng.uniform(0.1, 0.9))
        else:
            return None
        self.controller.record_corruption(
            kind,
            session.path,
            session_id=session.session_id,
            seq=seq,
            resend=resend,
        )
        return kind, frac, f"{session.session_id}:{seq}:{resend}"
