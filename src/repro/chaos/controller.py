"""The chaos controller: schedules a plan's faults onto a live testbed.

``install()`` arms everything the :class:`~repro.chaos.plan.ChaosPlan`
declares:

* **outage gates** on the transfer/compute/search services (the services
  hold them duck-typed; see :mod:`repro.chaos.gate`), with one DES
  process per window that traces the outage and drains the flow
  executor's degraded-action backlog when the window closes;
* **link degradation** processes driving
  :meth:`~repro.net.NetworkFabric.set_link_health` at each event's edges;
* **node failures** by handing the compute endpoint the plan's
  :class:`~repro.chaos.plan.NodeFailureSpec` plus a dedicated
  ``chaos.nodes`` RNG stream;
* **watcher crashes** that stop the directory observer and restart it
  with a checkpoint-deduplicated replay;
* **data corruption** from the plan's
  :class:`~repro.chaos.plan.DataCorruptionSpec`: a
  :class:`~repro.chaos.corruption.ChunkCorruptor` on the stream
  publisher, one bit-rot process per
  :class:`~repro.chaos.plan.BitRotWindow`, and a metadata-mismatch
  subscription on the acquisition filesystem — every hit recorded as a
  ``chaos.corruption`` span so the integrity audit can join injections
  to detections.

Every injection appends to :attr:`injections` — a plain, ordered,
seed-deterministic log that the determinism tests compare across runs.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from ..flows.action import ActionState
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from .corruption import ChunkCorruptor
from .gate import ServiceGate
from .plan import (
    BitRotWindow,
    ChaosPlan,
    DataCorruptionSpec,
    LinkDegradation,
    OutageWindow,
    WatcherCrash,
)

__all__ = ["ChaosController"]

#: Outage-window service name -> flow action-provider name.
_SERVICE_PROVIDER = {
    "transfer": "transfer",
    "compute": "compute",
    "search": "search_ingest",
}


class ChaosController:
    """Arms a :class:`ChaosPlan` against testbed components.

    All parameters are duck-typed handles from the testbed; pass ``None``
    for any subsystem a unit test does not exercise.
    """

    def __init__(
        self,
        env: Any,
        plan: ChaosPlan,
        *,
        transfer: Any = None,
        compute: Any = None,
        search: Any = None,
        fabric: Any = None,
        flows: Any = None,
        compute_endpoints: tuple = (),
        rngs: Any = None,
        observer: Any = None,
        stream: Any = None,
        filesystems: Any = None,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        self.env = env
        self.plan = plan
        self.transfer = transfer
        self.compute = compute
        self.search = search
        self.fabric = fabric
        self.flows = flows
        self.compute_endpoints = tuple(compute_endpoints)
        self.rngs = rngs
        self.observer = observer
        self.stream = stream
        #: Name -> :class:`~repro.storage.VirtualFS`, the targets the
        #: plan's bit-rot windows and metadata mismatches may hit.
        self.filesystems: dict[str, Any] = dict(filesystems or {})
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._lazy: dict[str, Any] = {}
        self.gates: dict[str, ServiceGate] = {}
        #: Ordered, seed-deterministic record of every injection edge.
        self.injections: list[dict[str, Any]] = []
        #: Sim-time from backlog enqueue to successful catch-up.
        self.recovery_latencies: list[float] = []
        self.installed = False

    # -- metrics ----------------------------------------------------------
    def _counter(self, name: str):
        c = self._lazy.get(name)
        if c is None:
            c = self._metrics.counter(name)
            self._lazy[name] = c
        return c

    def _histogram(self, name: str):
        h = self._lazy.get(name)
        if h is None:
            h = self._metrics.histogram(name)
            self._lazy[name] = h
        return h

    def _log(self, kind: str, **detail: Any) -> None:
        self.injections.append({"t": self.env.now, "kind": kind, **detail})

    def record_corruption(self, kind: str, path: str, **detail: Any) -> None:
        """One corruption injection: log it, count it, and emit the
        ``chaos.corruption`` span the integrity audit joins against."""
        self._log(kind, path=path, **detail)
        self._counter("chaos.corruptions").inc()
        span = self.tracer.start("chaos.corruption")
        try:
            span.set("kind", kind).set("path", path)
            for key in ("fs", "session_id", "seq"):
                if key in detail:
                    span.set(key, detail[key])
        finally:
            span.finish()

    # -- arming ----------------------------------------------------------
    def install(self) -> None:
        """Install gates and start one process per scheduled fault."""
        if self.installed:
            return
        self.installed = True
        services = {
            "transfer": self.transfer,
            "compute": self.compute,
            "search": self.search,
        }
        by_service: dict[str, list[OutageWindow]] = {}
        for w in self.plan.outages:
            by_service.setdefault(w.service, []).append(w)
        for name, windows in sorted(by_service.items()):
            svc = services.get(name)
            if svc is None:
                continue
            gate = ServiceGate(name, windows, self.plan.connect_timeout_s)
            svc.gate = gate
            self.gates[name] = gate
            for w in gate.windows:
                self.env.process(self._outage_process(w))
        if self.stream is not None and "transfer" in self.gates:
            # The streaming control plane rides the same data-movement
            # service: a transfer outage also rejects stream handshakes.
            self.stream.gate = self.gates["transfer"]
        for d in self.plan.degradations:
            if self.fabric is not None:
                self.env.process(self._degradation_process(d))
        if self.plan.node_failures is not None and self.plan.node_failures.prob > 0:
            for ep in self.compute_endpoints:
                ep.node_chaos = self.plan.node_failures
                ep.chaos_rng = self.rngs.stream("chaos.nodes")
        for c in self.plan.watcher_crashes:
            if self.observer is not None:
                self.env.process(self._watcher_process(c))
        spec = self.plan.corruption
        if spec is not None and spec.enabled and self.rngs is not None:
            if self.stream is not None and spec.chunk_faults:
                self.stream.corruptor = ChunkCorruptor(
                    spec, self.rngs.stream("chaos.corruption"), self
                )
                self.stream.max_retransmits = spec.max_retransmits
            for w in spec.bitrot:
                fs = self.filesystems.get(w.fs)
                if fs is not None:
                    self.env.process(self._bitrot_window(w, fs))
            if spec.meta_mismatch_prob > 0:
                fs = self.filesystems.get(spec.meta_mismatch_fs)
                if fs is not None:
                    self._arm_meta_mismatch(spec, fs)

    # -- fault processes --------------------------------------------------
    def _outage_process(self, w: OutageWindow) -> Generator:
        if w.start_s > self.env.now:
            yield self.env.timeout(w.start_s - self.env.now)
        span = (
            self.tracer.start("chaos.outage")
            .set("service", w.service)
            .set("until", w.end_s)
        )
        try:
            self._log("outage_start", service=w.service, until=w.end_s)
            self._counter("chaos.outages").inc()
            yield self.env.timeout(w.duration_s)
            gate = self.gates.get(w.service)
            span.set("rejections", gate.rejections if gate else 0)
            self._log(
                "outage_end",
                service=w.service,
                rejections=gate.rejections if gate else 0,
            )
        finally:
            span.finish()
        # Service is back: catch up the non-critical work that degraded
        # while it was away.
        yield from self._drain_backlog(_SERVICE_PROVIDER[w.service])

    def _degradation_process(self, d: LinkDegradation) -> Generator:
        if d.start_s > self.env.now:
            yield self.env.timeout(d.start_s - self.env.now)
        span = (
            self.tracer.start("chaos.degradation")
            .set("link", f"{d.a}--{d.b}")
            .set("scale", d.scale)
        )
        try:
            self._log("link_degraded", a=d.a, b=d.b, scale=d.scale)
            self._counter("chaos.degradations").inc()
            self.fabric.set_link_health(d.a, d.b, d.scale)
            yield self.env.timeout(d.duration_s)
            self.fabric.set_link_health(d.a, d.b, 1.0)
            self._log("link_restored", a=d.a, b=d.b)
        finally:
            span.finish()

    def _watcher_process(self, c: WatcherCrash) -> Generator:
        if c.at_s > self.env.now:
            yield self.env.timeout(c.at_s - self.env.now)
        if not self.observer.running:
            return  # already crashed by an overlapping event
        span = self.tracer.start("chaos.watcher_crash").set("down_s", c.down_s)
        try:
            self._log("watcher_crash", down_s=c.down_s)
            self._counter("chaos.watcher_crashes").inc()
            self.observer.stop()
            yield self.env.timeout(c.down_s)
            replayed = self.observer.restart(replay=True)
            self._log("watcher_restart", replayed=replayed)
            span.set("replayed", replayed)
        finally:
            span.finish()

    # -- data corruption ---------------------------------------------------
    def _bitrot_window(self, w: BitRotWindow, fs: Any) -> Generator:
        """Arm at-rest rot for files created on ``fs`` inside the window.

        Each qualifying creation gets one seeded draw; hits rot
        ``delay_s`` after creation (the file has usually been observed,
        maybe even streamed, by then — the interesting case)."""
        rng = self.rngs.stream("chaos.bitrot")
        if w.start_s > self.env.now:
            yield self.env.timeout(w.start_s - self.env.now)

        def on_create(f: Any) -> None:
            if f.kind != "emd":
                return
            if float(rng.uniform()) < w.prob:
                self.env.process(self._rot_process(fs, f.path, w.delay_s))

        unsubscribe = fs.subscribe(on_create)
        self._log("bitrot_window_start", fs=fs.name, until=w.end_s)
        try:
            yield self.env.timeout(w.duration_s)
        finally:
            unsubscribe()
            self._log("bitrot_window_end", fs=fs.name)

    def _rot_process(self, fs: Any, path: str, delay_s: float) -> Generator:
        if delay_s > 0:
            yield self.env.timeout(delay_s)
        if not fs.exists(path):
            return  # consumed and gone before the rot landed
        fs.corrupt(path, salt=f"bitrot:{path}")
        self.record_corruption("bitrot", path, fs=fs.name)

    def _arm_meta_mismatch(self, spec: DataCorruptionSpec, fs: Any) -> None:
        """Corrupt-at-birth: with ``meta_mismatch_prob`` a freshly
        created acquisition's payload never matched its declared
        checksum.  Stays armed for the whole campaign."""
        rng = self.rngs.stream("chaos.metadata")

        def on_create(f: Any) -> None:
            if f.kind != "emd" or f.payload is not None:
                return
            if float(rng.uniform()) < spec.meta_mismatch_prob:
                fs.corrupt(f.path, salt=f"meta:{f.path}")
                self.record_corruption("meta_mismatch", f.path, fs=fs.name)

        fs.subscribe(on_create)

    # -- degraded-work catch-up ------------------------------------------
    def _drain_backlog(self, provider_name: str) -> Generator:
        """Re-drive backlogged actions for ``provider_name`` to terminal
        state, recording each entry's recovery latency."""
        if self.flows is None:
            return
        pending = [
            e
            for e in self.flows.backlog
            if e.provider == provider_name and not e.recovered and e.error is None
        ]
        for entry in pending:
            span = (
                self.tracer.start("chaos.catch_up")
                .set("run_id", entry.run_id)
                .set("state", entry.state)
            )
            try:
                provider = self.flows.provider(entry.provider)
                try:
                    action_id = provider.run(dict(entry.body))
                except Exception as exc:
                    entry.error = f"{type(exc).__name__}: {exc}"
                    span.set("status", "FAILED")
                    continue
                status = None
                for interval in self.flows.backoff.intervals():
                    yield self.env.timeout(interval + self.flows.poll_latency_s)
                    status = provider.status(action_id)
                    if status.state.terminal:
                        break
                if status is not None and status.state is ActionState.SUCCEEDED:
                    entry.caught_up_at = self.env.now
                    latency = entry.recovery_latency_s or 0.0
                    self.recovery_latencies.append(latency)
                    self._histogram("chaos.recovery_latency_s").observe(latency)
                    span.set("status", "SUCCEEDED").set("latency_s", latency)
                else:
                    entry.error = (
                        status.error if status else None
                    ) or "catch-up failed"
                    span.set("status", "FAILED")
            finally:
                # `provider.status` can raise ServiceUnavailable mid-poll
                # and the kernel can throw into the generator; the span
                # must end on those edges too (finish() is idempotent).
                span.finish()

    def drain_remaining(self) -> Generator:
        """Catch up every still-pending backlog entry (end-of-campaign
        sweep for entries whose outage window outlived the run)."""
        for provider_name in sorted({e.provider for e in (self.flows.backlog if self.flows else [])}):
            yield from self._drain_backlog(provider_name)

    # -- reporting --------------------------------------------------------
    def report(self) -> dict[str, Any]:
        """Seed-deterministic summary of what chaos did and what recovered."""
        flows = self.flows
        retries = 0
        degraded_runs = 0
        if flows is not None:
            for run in flows.runs:
                if run.degraded:
                    degraded_runs += 1
                for step in run.steps:
                    retries += max(0, step.attempts - 1)
        backlog = list(flows.backlog) if flows is not None else []
        recovered = [e for e in backlog if e.recovered]
        latencies = sorted(self.recovery_latencies)
        percentiles: dict[str, float] = {}
        if latencies:
            arr = np.asarray(latencies)
            percentiles = {
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
                "max": float(arr.max()),
            }
        return {
            "injections": list(self.injections),
            "gate_rejections": {
                name: gate.rejections for name, gate in sorted(self.gates.items())
            },
            "node_failures": sum(
                getattr(ep, "node_failures", 0) for ep in self.compute_endpoints
            ),
            "flow_retries": retries,
            "degraded_runs": degraded_runs,
            "dead_letters": [
                d.summary() for d in (flows.dead_letters if flows is not None else [])
            ],
            "backlog_total": len(backlog),
            "backlog_recovered": len(recovered),
            "backlog_pending": len(backlog) - len(recovered),
            "recovery_latency_s": percentiles,
        }
