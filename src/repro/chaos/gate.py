"""Outage gates installed on cloud services by the chaos controller.

A :class:`ServiceGate` is the duck-typed object behind each service's
``gate`` attribute (``TransferService.gate``, ``ComputeService.gate``,
``SearchService.gate``): services call ``gate.check(env.now)`` at their
API entry points and never import this module, so the chaos subsystem
stays an optional layer with no import cycle into the substrate.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ServiceUnavailable
from .plan import OutageWindow

__all__ = ["ServiceGate"]


class ServiceGate:
    """Time-windowed availability for one cloud service.

    ``check(now)`` raises :class:`~repro.errors.ServiceUnavailable`
    (carrying the connect timeout the caller must burn) whenever ``now``
    falls inside an outage window; outside every window it is a no-op.
    """

    def __init__(
        self,
        service: str,
        windows: "tuple[OutageWindow, ...] | list[OutageWindow]",
        connect_timeout_s: float = 15.0,
    ) -> None:
        self.service = service
        self.windows = tuple(sorted(windows, key=lambda w: w.start_s))
        self.connect_timeout_s = float(connect_timeout_s)
        #: Calls rejected by this gate (deterministic under seed).
        self.rejections = 0

    def window_at(self, now: float) -> Optional[OutageWindow]:
        for w in self.windows:
            if w.covers(now):
                return w
        return None

    def down(self, now: float) -> bool:
        return self.window_at(now) is not None

    def next_restore(self, now: float) -> Optional[float]:
        """End of the window covering ``now`` (None when the service is up)."""
        w = self.window_at(now)
        return None if w is None else w.end_s

    def check(self, now: float) -> None:
        w = self.window_at(now)
        if w is None:
            return
        self.rejections += 1
        raise ServiceUnavailable(
            f"{self.service} service unavailable "
            f"(outage until t={w.end_s:.1f}s)",
            connect_timeout_s=self.connect_timeout_s,
        )
