"""Named chaos scenarios and the chaos campaign runner.

Each scenario is a complete :class:`~repro.chaos.plan.ChaosPlan` sized
for the standard 1-hour campaign; ``python -m repro chaos`` runs one by
name and prints the delivered-vs-dropped breakdown.
"""

from __future__ import annotations

from typing import Any

from ..errors import ChaosError
from ..flows.backoff import ExponentialBackoff
from ..flows.retry import RetryPolicy
from ..transfer.faults import FaultPlan
from ..units import hours, minutes
from .plan import (
    BitRotWindow,
    ChaosPlan,
    DataCorruptionSpec,
    LinkDegradation,
    NodeFailureSpec,
    OutageWindow,
    WatcherCrash,
)

__all__ = ["SCENARIOS", "scenario", "run_chaos_campaign", "delivery_breakdown"]

# Retry policies shared by the scenarios: jittered backoff spreads the
# retry storm after an outage; search publication is non-critical and
# degrades to the catch-up backlog instead of failing the run.
_TRANSFER_RETRY = RetryPolicy(
    max_attempts=4,
    backoff=ExponentialBackoff(initial=60.0, factor=2.0, max_interval=600.0, jitter=0.25),
)
_COMPUTE_RETRY = RetryPolicy(
    max_attempts=3,
    backoff=ExponentialBackoff(initial=45.0, factor=2.0, max_interval=600.0, jitter=0.25),
)
_SEARCH_RETRY = RetryPolicy(
    max_attempts=2,
    backoff=ExponentialBackoff(initial=30.0, factor=2.0, max_interval=240.0, jitter=0.25),
    critical=False,
)
_RETRIES = (
    ("transfer", _TRANSFER_RETRY),
    ("compute", _COMPUTE_RETRY),
    ("search_ingest", _SEARCH_RETRY),
)

SCENARIOS: dict[str, ChaosPlan] = {
    # Cloud outages: transfer drops for 7 minutes mid-campaign, search
    # for 10.  Transfer retries bridge the window; search degrades and
    # catches up from the backlog when the outage lifts.
    "outage": ChaosPlan(
        outages=(
            OutageWindow("transfer", start_s=minutes(15), duration_s=minutes(7)),
            OutageWindow("search", start_s=minutes(30), duration_s=minutes(10)),
        ),
        connect_timeout_s=20.0,
        retry_policies=_RETRIES,
    ),
    # Compute nodes die under tasks; the endpoint re-queues within its
    # budget and the executor retries the action above it.
    "node-flap": ChaosPlan(
        node_failures=NodeFailureSpec(prob=0.3, retry_budget=3, min_frac=0.2, max_frac=0.8),
        retry_policies=_RETRIES,
    ),
    # The site uplink sags to 10% for 10 minutes, then the backbone
    # blacks out entirely for 2 — in-flight streams stall and resume.
    "degraded-net": ChaosPlan(
        degradations=(
            LinkDegradation(
                "picoprobe-user-machine", "site-switch",
                start_s=minutes(10), duration_s=minutes(10), scale=0.1,
            ),
            LinkDegradation(
                "site-switch", "anl-backbone",
                start_s=minutes(40), duration_s=minutes(2), scale=0.0,
            ),
        ),
        retry_policies=_RETRIES,
    ),
    # The watcher app crashes mid-campaign and restarts cold, replaying
    # the directory through its checkpoint store.
    "watcher-crash": ChaosPlan(
        watcher_crashes=(WatcherCrash(at_s=minutes(12), down_s=minutes(8)),),
        retry_policies=_RETRIES,
    ),
    # Everything at once, plus the transfer layer's own per-attempt
    # fault plan.
    "full-storm": ChaosPlan(
        outages=(
            OutageWindow("transfer", start_s=minutes(15), duration_s=minutes(7)),
            OutageWindow("search", start_s=minutes(30), duration_s=minutes(10)),
        ),
        degradations=(
            LinkDegradation(
                "picoprobe-user-machine", "site-switch",
                start_s=minutes(45), duration_s=minutes(5), scale=0.2,
            ),
        ),
        node_failures=NodeFailureSpec(prob=0.15, retry_budget=3),
        watcher_crashes=(WatcherCrash(at_s=minutes(25), down_s=minutes(5)),),
        transfer_faults=FaultPlan(transient_prob=0.15, corrupt_prob=0.05, max_attempts=4),
        connect_timeout_s=20.0,
        retry_policies=_RETRIES,
    ),
    # Data goes bad everywhere it can: chunks mangled on the wire,
    # at-rest rot on the acquisition store mid-campaign, acquisitions
    # whose metadata never matched their payload, and the transfer
    # layer's own per-attempt checksum faults.  The integrity ledger
    # (auto-enabled) must repair or quarantine every one of them.
    "corruption": ChaosPlan(
        corruption=DataCorruptionSpec(
            chunk_corrupt_prob=0.04,
            chunk_truncate_prob=0.02,
            bitrot=(
                BitRotWindow(
                    fs="picoprobe-user",
                    start_s=minutes(5),
                    duration_s=minutes(20),
                    prob=0.25,
                    delay_s=1.0,
                ),
            ),
            meta_mismatch_prob=0.08,
            max_retransmits=4,
        ),
        transfer_faults=FaultPlan(corrupt_prob=0.08, max_attempts=4),
        retry_policies=_RETRIES,
    ),
}


def scenario(name: str) -> ChaosPlan:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ChaosError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


def run_chaos_campaign(
    plan: "ChaosPlan | str",
    use_case: str = "hyperspectral",
    duration_s: float = hours(1),
    seed: int = 0,
    obs: bool = False,
    tiebreak: str = "fifo",
    trace: bool = False,
    ingest: str = "file",
):
    """Run a campaign under ``plan`` and drain it to quiescence.

    After the timed window closes, the event queue is run dry so every
    in-flight run reaches a terminal state — the no-hung-runs guarantee
    — and any backlog entries still pending (their outage outlived the
    campaign) are caught up.  Returns the
    :class:`~repro.core.campaign.CampaignResult`; the controller (and
    its :meth:`~repro.chaos.controller.ChaosController.report`) is at
    ``result.chaos``.
    """
    from ..core.campaign import run_campaign  # deferred: core imports chaos

    if isinstance(plan, str):
        plan = scenario(plan)
    result = run_campaign(
        use_case, duration_s=duration_s, seed=seed, chaos=plan, obs=obs,
        tiebreak=tiebreak, trace=trace, ingest=ingest,
    )
    env = result.testbed.env
    env.run()  # drain in-flight work past the campaign window
    ctrl = result.chaos
    if ctrl is not None and ctrl.flows is not None:
        if any(e for e in ctrl.flows.backlog if not e.recovered and e.error is None):
            env.process(ctrl.drain_remaining())
            env.run()
    return result


def delivery_breakdown(result: Any) -> dict[str, Any]:
    """Delivered-vs-dropped accounting for a drained chaos campaign."""
    delivered = degraded = dead = failed = active = 0
    for run in result.runs:
        if not run.status.terminal:
            active += 1
        elif run.status.value == "SUCCEEDED":
            if run.degraded:
                degraded += 1
            else:
                delivered += 1
        else:
            flows = result.testbed.flows
            if any(d.run_id == run.run_id for d in flows.dead_letters):
                dead += 1
            else:
                failed += 1
    return {
        "runs": len(result.runs),
        "delivered": delivered,
        "degraded": degraded,
        "dead_lettered": dead,
        "failed_other": failed,
        "still_active": active,
    }
