"""Declarative, seeded fault-injection plans.

A :class:`ChaosPlan` is the campaign-wide generalization of the transfer
layer's per-attempt :class:`~repro.transfer.faults.FaultPlan`: one frozen
description of every fault the campaign will suffer — cloud-service
outage windows, network-link degradation events, compute-node failures,
and watcher crash/restart cycles — plus the recovery configuration
(per-provider :class:`~repro.flows.retry.RetryPolicy` and the connect
timeout an outage charges each caller).

All randomness is drawn from dedicated :mod:`repro.rng` streams at
injection time, so two campaigns with the same plan and seed suffer an
identical fault schedule; and :data:`NO_CHAOS` (the default everywhere)
injects nothing, draws nothing, and schedules nothing, keeping the clean
campaign bit-identical to one built before this subsystem existed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ChaosError
from ..flows.retry import RetryPolicy
from ..transfer.faults import NO_FAULTS, FaultPlan

__all__ = [
    "CHAOS_SERVICES",
    "OutageWindow",
    "LinkDegradation",
    "NodeFailureSpec",
    "WatcherCrash",
    "BitRotWindow",
    "DataCorruptionSpec",
    "ChaosPlan",
    "NO_CHAOS",
]

#: Cloud services an :class:`OutageWindow` may target.
CHAOS_SERVICES = ("transfer", "compute", "search")


@dataclass(frozen=True)
class OutageWindow:
    """One cloud service is unreachable during ``[start_s, end_s)``.

    Calls made inside the window hang for the plan's connect timeout and
    then raise :class:`~repro.errors.ServiceUnavailable`.  Only the
    control plane is gated: work already handed to the data plane (bytes
    on the fabric, tasks on nodes) keeps running.
    """

    service: str
    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.service not in CHAOS_SERVICES:
            raise ChaosError(
                f"unknown service {self.service!r}; expected one of {CHAOS_SERVICES}"
            )
        if self.start_s < 0:
            raise ChaosError(f"outage start must be >= 0, got {self.start_s}")
        if self.duration_s <= 0:
            raise ChaosError(f"outage duration must be positive, got {self.duration_s}")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def covers(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass(frozen=True)
class LinkDegradation:
    """A network link's capacity drops to ``scale`` of nominal during
    ``[start_s, start_s + duration_s)``.

    ``scale=0.0`` is a full blackout — streams crossing the link stall
    at zero rate and resume when health returns (the fabric's existing
    re-admission machinery handles both edges).
    """

    a: str
    b: str
    start_s: float
    duration_s: float
    scale: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ChaosError(f"degradation start must be >= 0, got {self.start_s}")
        if self.duration_s <= 0:
            raise ChaosError(
                f"degradation duration must be positive, got {self.duration_s}"
            )
        if not 0.0 <= self.scale < 1.0:
            raise ChaosError(f"degradation scale must be in [0, 1), got {self.scale}")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class NodeFailureSpec:
    """Per-task probability that the executing compute node dies.

    On each execution attempt the endpoint draws from its chaos stream:
    with probability ``prob`` the node fails after burning a uniform
    ``[min_frac, max_frac]`` fraction of the task's compute charge.  The
    node is lost (returned to the batch pool cold) and the task re-queues
    until ``retry_budget`` failures have accumulated.
    """

    prob: float
    retry_budget: int = 2
    min_frac: float = 0.1
    max_frac: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ChaosError(f"failure prob must be in [0, 1], got {self.prob}")
        if self.retry_budget < 0:
            raise ChaosError(f"retry_budget must be >= 0, got {self.retry_budget}")
        if not 0.0 <= self.min_frac <= self.max_frac <= 1.0:
            raise ChaosError(
                f"need 0 <= min_frac <= max_frac <= 1, got "
                f"[{self.min_frac}, {self.max_frac}]"
            )

    def draw(self, rng: Any) -> Optional[float]:
        """One seeded draw: ``None`` (no failure) or the fraction of the
        task's charge burned before the node dies."""
        if self.prob <= 0.0:
            return None
        if float(rng.uniform()) >= self.prob:
            return None
        return float(rng.uniform(self.min_frac, self.max_frac))


@dataclass(frozen=True)
class WatcherCrash:
    """The watcher application dies at ``at_s`` and restarts ``down_s``
    later, recovering via a checkpoint-deduplicated directory replay."""

    at_s: float
    down_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ChaosError(f"crash time must be >= 0, got {self.at_s}")
        if self.down_s <= 0:
            raise ChaosError(f"downtime must be positive, got {self.down_s}")


@dataclass(frozen=True)
class BitRotWindow:
    """At-rest corruption: files *created* on filesystem ``fs`` during
    ``[start_s, start_s + duration_s)`` rot with probability ``prob``,
    ``delay_s`` seconds after creation.

    The rot is silent — no subscriber is notified — so only a digest
    verification downstream (transfer re-check, verify-on-read, the
    end-of-campaign scrub) can observe it, exactly like real storage.
    """

    fs: str
    start_s: float
    duration_s: float
    prob: float
    delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ChaosError(f"bit-rot start must be >= 0, got {self.start_s}")
        if self.duration_s <= 0:
            raise ChaosError(
                f"bit-rot duration must be positive, got {self.duration_s}"
            )
        if not 0.0 <= self.prob <= 1.0:
            raise ChaosError(f"bit-rot prob must be in [0, 1], got {self.prob}")
        if self.delay_s < 0:
            raise ChaosError(f"bit-rot delay must be >= 0, got {self.delay_s}")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class DataCorruptionSpec:
    """Seeded data-corruption faults, the integrity subsystem's adversary.

    Three fault classes, all deterministic under the campaign seed:

    * **in-flight chunk corruption/truncation** — each streamed chunk is
      independently mangled on the wire with ``chunk_corrupt_prob`` or
      cut short with ``chunk_truncate_prob`` (single partitioned draw,
      like :class:`~repro.transfer.faults.FaultPlan`);
    * **at-rest bit rot** — :class:`BitRotWindow` entries;
    * **metadata–payload mismatch** — with ``meta_mismatch_prob`` a
      freshly acquired file's payload never matched its declared
      checksum in the first place.

    Arming any of these requires the campaign's integrity ledger (the
    campaign builder enforces it): corruption without verification
    would be *silent*, which is the failure mode this subsystem exists
    to rule out.
    """

    chunk_corrupt_prob: float = 0.0
    chunk_truncate_prob: float = 0.0
    bitrot: tuple[BitRotWindow, ...] = ()
    meta_mismatch_prob: float = 0.0
    meta_mismatch_fs: str = "picoprobe-user"
    #: Per-sequence retransmit budget the publisher applies before
    #: declaring a session unrepairable.
    max_retransmits: int = 4

    def __post_init__(self) -> None:
        for name in ("chunk_corrupt_prob", "chunk_truncate_prob", "meta_mismatch_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ChaosError(f"{name} must be a probability, got {v}")
        total = self.chunk_corrupt_prob + self.chunk_truncate_prob
        if total > 1.0:
            raise ChaosError(
                "chunk_corrupt_prob + chunk_truncate_prob must not exceed 1, "
                f"got {total}"
            )
        if self.max_retransmits < 1:
            raise ChaosError(
                f"max_retransmits must be >= 1, got {self.max_retransmits}"
            )

    @property
    def enabled(self) -> bool:
        return bool(
            self.chunk_corrupt_prob > 0
            or self.chunk_truncate_prob > 0
            or self.bitrot
            or self.meta_mismatch_prob > 0
        )

    @property
    def chunk_faults(self) -> bool:
        return self.chunk_corrupt_prob > 0 or self.chunk_truncate_prob > 0


@dataclass(frozen=True)
class ChaosPlan:
    """Everything that will go wrong in one campaign, declared up front.

    ``retry_policies`` maps action-provider names (``"transfer"``,
    ``"compute"``, ``"search_ingest"``) to the
    :class:`~repro.flows.retry.RetryPolicy` the flow executor applies;
    ``transfer_faults`` rides along as the existing per-attempt
    :class:`~repro.transfer.faults.FaultPlan`; ``connect_timeout_s`` is
    the sim-time a caller burns before an outage surfaces.
    """

    outages: tuple[OutageWindow, ...] = ()
    degradations: tuple[LinkDegradation, ...] = ()
    node_failures: Optional[NodeFailureSpec] = None
    watcher_crashes: tuple[WatcherCrash, ...] = ()
    transfer_faults: FaultPlan = NO_FAULTS
    corruption: Optional[DataCorruptionSpec] = None
    connect_timeout_s: float = 15.0
    retry_policies: tuple[tuple[str, RetryPolicy], ...] = ()

    def __post_init__(self) -> None:
        if self.connect_timeout_s < 0:
            raise ChaosError(
                f"connect_timeout_s must be >= 0, got {self.connect_timeout_s}"
            )
        # Overlapping windows for one service would make "which window
        # rejected me" ambiguous in reports; forbid them.
        by_service: dict[str, list[OutageWindow]] = {}
        for w in self.outages:
            by_service.setdefault(w.service, []).append(w)
        for service, windows in by_service.items():
            windows.sort(key=lambda w: w.start_s)
            for prev, cur in zip(windows, windows[1:]):
                if cur.start_s < prev.end_s:
                    raise ChaosError(
                        f"overlapping outage windows for {service!r}: "
                        f"[{prev.start_s}, {prev.end_s}) and "
                        f"[{cur.start_s}, {cur.end_s})"
                    )
        names = [n for n, _ in self.retry_policies]
        if len(names) != len(set(names)):
            raise ChaosError(f"duplicate retry-policy entries: {names}")

    @property
    def enabled(self) -> bool:
        """True when the plan injects or reconfigures *anything*.

        A disabled plan must leave the campaign bit-identical to one
        that never heard of chaos — the controller is not even built.
        """
        return bool(
            self.outages
            or self.degradations
            or self.watcher_crashes
            or (self.node_failures is not None and self.node_failures.prob > 0)
            or self.transfer_faults is not NO_FAULTS
            or (self.corruption is not None and self.corruption.enabled)
            or self.retry_policies
        )

    def policy_map(self) -> dict[str, RetryPolicy]:
        return dict(self.retry_policies)


#: The default everywhere: inject nothing, reconfigure nothing.
NO_CHAOS = ChaosPlan()
