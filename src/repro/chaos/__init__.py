"""Deterministic fault injection for campaign-scale chaos testing.

The subsystem has three layers:

* :mod:`repro.chaos.plan` — frozen fault declarations
  (:class:`ChaosPlan` and its parts) with :data:`NO_CHAOS` as the
  inject-nothing default;
* :mod:`repro.chaos.gate` — the outage gate services hold duck-typed;
* :mod:`repro.chaos.controller` — arms a plan against a live testbed
  and reports what recovered.

:mod:`repro.chaos.scenarios` ships named, campaign-sized plans and
``run_chaos_campaign`` (the ``python -m repro chaos`` entry point).
"""

from .controller import ChaosController
from .corruption import ChunkCorruptor
from .gate import ServiceGate
from .plan import (
    CHAOS_SERVICES,
    BitRotWindow,
    ChaosPlan,
    DataCorruptionSpec,
    LinkDegradation,
    NO_CHAOS,
    NodeFailureSpec,
    OutageWindow,
    WatcherCrash,
)
from .scenarios import SCENARIOS, delivery_breakdown, run_chaos_campaign, scenario

__all__ = [
    "CHAOS_SERVICES",
    "BitRotWindow",
    "ChaosController",
    "ChaosPlan",
    "ChunkCorruptor",
    "DataCorruptionSpec",
    "LinkDegradation",
    "NO_CHAOS",
    "NodeFailureSpec",
    "OutageWindow",
    "SCENARIOS",
    "ServiceGate",
    "WatcherCrash",
    "delivery_breakdown",
    "run_chaos_campaign",
    "scenario",
]
