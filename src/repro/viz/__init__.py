"""Visualization substrate: PNG encoding, colormaps, SVG charts, and frame
annotation — everything the portal and figure benches render, built from
scratch (matplotlib-free)."""

from .png import encode_png, png_dimensions, write_png
from .colormap import COLORMAPS, apply_colormap, normalize
from .svg import BoxStats, bar_chart, box_chart, image_figure, line_chart, nice_ticks
from .render import ORANGE, annotate_frame, draw_box, to_rgb

__all__ = [
    "encode_png",
    "write_png",
    "png_dimensions",
    "apply_colormap",
    "normalize",
    "COLORMAPS",
    "line_chart",
    "bar_chart",
    "box_chart",
    "image_figure",
    "BoxStats",
    "nice_ticks",
    "annotate_frame",
    "draw_box",
    "to_rgb",
    "ORANGE",
]
