"""Raster annotation helpers: bounding boxes over movie frames (Fig. 3).

The spatiotemporal flow emits an annotated video: each frame is converted
to RGB and the detector's boxes are burned in as colored outlines whose
thickness doubles for high-confidence detections.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["to_rgb", "draw_box", "annotate_frame", "ORANGE"]

#: The paper's Fig. 3 draws boxes in orange.
ORANGE = (255, 140, 0)


def to_rgb(frame: np.ndarray) -> np.ndarray:
    """Promote a grayscale uint8 frame to RGB8 (copies; RGB passes through)."""
    arr = np.asarray(frame)
    if arr.dtype != np.uint8:
        raise ValueError(f"expected uint8 frame, got {arr.dtype}")
    if arr.ndim == 2:
        return np.repeat(arr[:, :, None], 3, axis=2).copy()
    if arr.ndim == 3 and arr.shape[2] == 3:
        return arr.copy()
    raise ValueError(f"unsupported frame shape: {arr.shape}")


def draw_box(
    rgb: np.ndarray,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    color: tuple[int, int, int] = ORANGE,
    thickness: int = 1,
) -> None:
    """Draw a rectangle outline in-place on an RGB8 image.

    Coordinates are (x0, y0, x1, y1) pixel corners; out-of-bounds edges
    are clipped rather than raising.
    """
    h, w = rgb.shape[:2]
    xa, xb = int(round(min(x0, x1))), int(round(max(x0, x1)))
    ya, yb = int(round(min(y0, y1))), int(round(max(y0, y1)))
    xa, xb = max(xa, 0), min(xb, w - 1)
    ya, yb = max(ya, 0), min(yb, h - 1)
    if xb < xa or yb < ya:
        return
    t = max(int(thickness), 1)
    c = np.asarray(color, dtype=np.uint8)
    rgb[max(ya, 0) : min(ya + t, h), xa : xb + 1] = c  # top
    rgb[max(yb - t + 1, 0) : yb + 1, xa : xb + 1] = c  # bottom
    rgb[ya : yb + 1, xa : min(xa + t, w)] = c  # left
    rgb[ya : yb + 1, max(xb - t + 1, 0) : xb + 1] = c  # right


def annotate_frame(
    frame: np.ndarray,
    boxes: Sequence,
    color: tuple[int, int, int] = ORANGE,
    confidence_threshold: float = 0.5,
) -> np.ndarray:
    """Return an RGB copy of ``frame`` with detection ``boxes`` drawn.

    ``boxes`` is a sequence of objects with ``x0, y0, x1, y1, confidence``
    attributes (see :class:`repro.analysis.detection.Detection`); boxes
    with confidence ≥ 0.8 are drawn with doubled thickness.
    """
    rgb = to_rgb(frame)
    for b in boxes:
        if b.confidence < confidence_threshold:
            continue
        thickness = 2 if b.confidence >= 0.8 else 1
        draw_box(rgb, b.x0, b.y0, b.x1, b.y1, color=color, thickness=thickness)
    return rgb
