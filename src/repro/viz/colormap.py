"""Perceptual colormaps (viridis-style) implemented as anchored gradients.

``apply_colormap`` maps a float array to RGB8 via linear interpolation
between a small set of anchor colors sampled from the published viridis /
inferno curves — visually faithful and fully vectorized.
"""

from __future__ import annotations

import numpy as np

__all__ = ["apply_colormap", "normalize", "COLORMAPS"]

# Anchor colors sampled uniformly along each map (RGB in 0..255).
COLORMAPS: dict[str, np.ndarray] = {
    "viridis": np.array(
        [
            (68, 1, 84),
            (71, 44, 122),
            (59, 81, 139),
            (44, 113, 142),
            (33, 144, 141),
            (39, 173, 129),
            (92, 200, 99),
            (170, 220, 50),
            (253, 231, 37),
        ],
        dtype=np.float64,
    ),
    "inferno": np.array(
        [
            (0, 0, 4),
            (40, 11, 84),
            (101, 21, 110),
            (159, 42, 99),
            (212, 72, 66),
            (245, 125, 21),
            (250, 193, 39),
            (252, 255, 164),
        ],
        dtype=np.float64,
    ),
    "gray": np.array([(0, 0, 0), (255, 255, 255)], dtype=np.float64),
}


def normalize(values: np.ndarray, vmin: "float | None" = None, vmax: "float | None" = None) -> np.ndarray:
    """Clip-and-scale ``values`` into [0, 1].  Constant inputs map to 0."""
    v = np.asarray(values, dtype=np.float64)
    lo = float(np.nanmin(v)) if vmin is None else float(vmin)
    hi = float(np.nanmax(v)) if vmax is None else float(vmax)
    if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
        return np.zeros_like(v)
    out = (v - lo) / (hi - lo)
    return np.clip(out, 0.0, 1.0)


def apply_colormap(
    values: np.ndarray,
    name: str = "viridis",
    vmin: "float | None" = None,
    vmax: "float | None" = None,
) -> np.ndarray:
    """Map a float array (any shape) to RGB8 (shape + (3,)).

    Values are normalized to [0, 1] (NaNs render as the low color).
    """
    try:
        anchors = COLORMAPS[name]
    except KeyError:
        raise ValueError(
            f"unknown colormap {name!r}; available: {sorted(COLORMAPS)}"
        ) from None
    t = normalize(values, vmin, vmax)
    t = np.nan_to_num(t, nan=0.0)
    n = len(anchors) - 1
    pos = t * n
    idx = np.minimum(pos.astype(np.int64), n - 1)
    frac = (pos - idx)[..., None]
    lo = anchors[idx]
    hi = anchors[idx + 1]
    rgb = lo + (hi - lo) * frac
    return np.clip(np.rint(rgb), 0, 255).astype(np.uint8)
