"""Minimal from-scratch PNG encoder.

matplotlib is unavailable in this environment, and the portal (Fig. 2) and
the annotated-movie output (Fig. 3) need raster images, so we implement
the subset of PNG we need: 8-bit grayscale and 8-bit RGB, zlib-compressed,
filter type 0 scanlines.  Encoding is vectorized — the filter byte is
prepended per row with a single ``np.hstack``, not a Python loop per
pixel.
"""

from __future__ import annotations

import os
import struct
import zlib

import numpy as np

__all__ = ["encode_png", "write_png", "png_dimensions"]

_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _chunk(kind: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + kind
        + payload
        + struct.pack(">I", zlib.crc32(kind + payload) & 0xFFFFFFFF)
    )


def encode_png(image: np.ndarray, compress_level: int = 6) -> bytes:
    """Encode ``image`` as PNG bytes.

    ``image`` must be ``uint8`` with shape ``(H, W)`` (grayscale) or
    ``(H, W, 3)`` (RGB).
    """
    arr = np.asarray(image)
    if arr.dtype != np.uint8:
        raise ValueError(f"PNG encoder expects uint8, got {arr.dtype}")
    if arr.ndim == 2:
        color_type = 0  # grayscale
        channels = 1
    elif arr.ndim == 3 and arr.shape[2] == 3:
        color_type = 2  # truecolor
        channels = 3
    else:
        raise ValueError(f"unsupported image shape: {arr.shape}")
    h, w = arr.shape[:2]
    if h == 0 or w == 0:
        raise ValueError("image must be non-empty")

    ihdr = struct.pack(">IIBBBBB", w, h, 8, color_type, 0, 0, 0)
    flat = arr.reshape(h, w * channels)
    # Filter byte 0 ("None") prepended to every scanline, vectorized.
    scanlines = np.hstack(
        [np.zeros((h, 1), dtype=np.uint8), np.ascontiguousarray(flat)]
    )
    idat = zlib.compress(scanlines.tobytes(), compress_level)
    return (
        _SIGNATURE
        + _chunk(b"IHDR", ihdr)
        + _chunk(b"IDAT", idat)
        + _chunk(b"IEND", b"")
    )


def write_png(path: "str | os.PathLike", image: np.ndarray, compress_level: int = 6) -> None:
    """Encode and write ``image`` to ``path``."""
    with open(os.fspath(path), "wb") as fh:
        fh.write(encode_png(image, compress_level))


def png_dimensions(data: bytes) -> tuple[int, int]:
    """``(width, height)`` from PNG bytes (validates the signature)."""
    if data[:8] != _SIGNATURE or data[12:16] != b"IHDR":
        raise ValueError("not a PNG")
    w, h = struct.unpack(">II", data[16:24])
    return w, h
