"""From-scratch SVG chart renderer.

Produces the paper's figure types without matplotlib:

* :func:`line_chart` — spectra (Fig. 2B), per-frame particle counts;
* :func:`bar_chart` — aggregate comparisons;
* :func:`box_chart` — the itemized runtime statistics of Fig. 4;
* :func:`image_figure` — a PNG heatmap embedded with axis decorations
  (Fig. 2A).

Charts are standalone SVG documents (also embeddable in portal HTML).
"""

from __future__ import annotations

import base64
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["line_chart", "bar_chart", "box_chart", "image_figure", "BoxStats", "nice_ticks"]

PALETTE = ["#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb"]
FONT = "font-family='Helvetica,Arial,sans-serif'"


def nice_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi] at a 1/2/5×10^k step."""
    if not (math.isfinite(lo) and math.isfinite(hi)):
        return [0.0]
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(target, 1)
    mag = 10 ** math.floor(math.log10(raw_step))
    for m in (1, 2, 5, 10):
        step = m * mag
        if raw_step <= step:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9 * step:
        ticks.append(round(t, 12))
        t += step
    return ticks or [lo]


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e7:
        return str(int(v))
    return f"{v:.3g}"


def _esc(s: str) -> str:
    return (
        str(s)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


@dataclass
class _Frame:
    """Plot geometry + axis scaling shared by every chart type."""

    width: int = 640
    height: int = 400
    margin_l: int = 64
    margin_r: int = 20
    margin_t: int = 40
    margin_b: int = 52
    xmin: float = 0.0
    xmax: float = 1.0
    ymin: float = 0.0
    ymax: float = 1.0
    parts: list[str] = field(default_factory=list)

    @property
    def plot_w(self) -> float:
        return self.width - self.margin_l - self.margin_r

    @property
    def plot_h(self) -> float:
        return self.height - self.margin_t - self.margin_b

    def sx(self, x: float) -> float:
        span = self.xmax - self.xmin or 1.0
        return self.margin_l + (x - self.xmin) / span * self.plot_w

    def sy(self, y: float) -> float:
        span = self.ymax - self.ymin or 1.0
        return self.height - self.margin_b - (y - self.ymin) / span * self.plot_h

    # -- decorations --------------------------------------------------------
    def title(self, text: str) -> None:
        if text:
            self.parts.append(
                f"<text x='{self.width / 2:.1f}' y='22' text-anchor='middle' "
                f"{FONT} font-size='15' font-weight='bold'>{_esc(text)}</text>"
            )

    def axes(
        self,
        xlabel: str = "",
        ylabel: str = "",
        xticks: Optional[Sequence[tuple[float, str]]] = None,
        yticks: Optional[Sequence[tuple[float, str]]] = None,
    ) -> None:
        x0, y0 = self.margin_l, self.height - self.margin_b
        x1, y1 = self.width - self.margin_r, self.margin_t
        if xticks is None:
            xticks = [(t, _fmt(t)) for t in nice_ticks(self.xmin, self.xmax)]
        if yticks is None:
            yticks = [(t, _fmt(t)) for t in nice_ticks(self.ymin, self.ymax)]
        for t, label in yticks:
            if not (self.ymin - 1e-9 <= t <= self.ymax + 1e-9):
                continue
            y = self.sy(t)
            self.parts.append(
                f"<line x1='{x0}' y1='{y:.1f}' x2='{x1}' y2='{y:.1f}' "
                f"stroke='#e0e0e0' stroke-width='1'/>"
            )
            self.parts.append(
                f"<text x='{x0 - 6}' y='{y + 4:.1f}' text-anchor='end' {FONT} "
                f"font-size='11'>{_esc(label)}</text>"
            )
        for t, label in xticks:
            if not (self.xmin - 1e-9 <= t <= self.xmax + 1e-9):
                continue
            x = self.sx(t)
            self.parts.append(
                f"<line x1='{x:.1f}' y1='{y0}' x2='{x:.1f}' y2='{y0 + 4}' "
                f"stroke='#444' stroke-width='1'/>"
            )
            self.parts.append(
                f"<text x='{x:.1f}' y='{y0 + 17}' text-anchor='middle' {FONT} "
                f"font-size='11'>{_esc(label)}</text>"
            )
        self.parts.append(
            f"<rect x='{x0}' y='{y1}' width='{self.plot_w:.1f}' height='{self.plot_h:.1f}' "
            f"fill='none' stroke='#444' stroke-width='1'/>"
        )
        if xlabel:
            self.parts.append(
                f"<text x='{(x0 + x1) / 2:.1f}' y='{self.height - 10}' "
                f"text-anchor='middle' {FONT} font-size='12'>{_esc(xlabel)}</text>"
            )
        if ylabel:
            cy = (y0 + y1) / 2
            self.parts.append(
                f"<text x='16' y='{cy:.1f}' text-anchor='middle' {FONT} font-size='12' "
                f"transform='rotate(-90 16 {cy:.1f})'>{_esc(ylabel)}</text>"
            )

    def legend(self, entries: Sequence[tuple[str, str]]) -> None:
        if not entries:
            return
        x = self.margin_l + 10
        y = self.margin_t + 14
        for i, (label, color) in enumerate(entries):
            yy = y + i * 16
            self.parts.append(
                f"<rect x='{x}' y='{yy - 9}' width='12' height='12' fill='{color}'/>"
            )
            self.parts.append(
                f"<text x='{x + 17}' y='{yy + 1}' {FONT} font-size='11'>{_esc(label)}</text>"
            )

    def render(self) -> str:
        return (
            f"<svg xmlns='http://www.w3.org/2000/svg' width='{self.width}' "
            f"height='{self.height}' viewBox='0 0 {self.width} {self.height}'>"
            f"<rect width='100%' height='100%' fill='white'/>"
            + "".join(self.parts)
            + "</svg>"
        )


def line_chart(
    series: Sequence[tuple[str, Sequence[float], Sequence[float]]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 640,
    height: int = 400,
    show_legend: bool = True,
) -> str:
    """Render ``[(label, xs, ys), ...]`` as an SVG line chart."""
    if not series:
        raise ValueError("line_chart requires at least one series")
    fr = _Frame(width=width, height=height)
    all_x = np.concatenate([np.asarray(xs, dtype=float) for _, xs, _ in series])
    all_y = np.concatenate([np.asarray(ys, dtype=float) for _, _, ys in series])
    if all_x.size == 0:
        raise ValueError("line_chart requires non-empty series")
    fr.xmin, fr.xmax = float(all_x.min()), float(all_x.max())
    fr.ymin, fr.ymax = float(all_y.min()), float(all_y.max())
    if fr.ymax == fr.ymin:
        fr.ymax = fr.ymin + 1.0
    if fr.xmax == fr.xmin:
        fr.xmax = fr.xmin + 1.0
    pad = 0.05 * (fr.ymax - fr.ymin)
    fr.ymin -= pad
    fr.ymax += pad
    fr.title(title)
    fr.axes(xlabel, ylabel)
    legend = []
    for i, (label, xs, ys) in enumerate(series):
        color = PALETTE[i % len(PALETTE)]
        pts = " ".join(
            f"{fr.sx(float(x)):.1f},{fr.sy(float(y)):.1f}" for x, y in zip(xs, ys)
        )
        fr.parts.append(
            f"<polyline points='{pts}' fill='none' stroke='{color}' stroke-width='1.5'/>"
        )
        legend.append((label, color))
    if show_legend and any(lbl for lbl, _ in legend):
        fr.legend(legend)
    return fr.render()


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    ylabel: str = "",
    width: int = 640,
    height: int = 400,
    colors: Optional[Sequence[str]] = None,
) -> str:
    """Categorical bar chart."""
    if len(labels) != len(values) or not labels:
        raise ValueError("labels and values must be equal-length and non-empty")
    fr = _Frame(width=width, height=height)
    vals = np.asarray(values, dtype=float)
    fr.ymin = min(0.0, float(vals.min()))
    fr.ymax = float(vals.max()) * 1.08 if vals.max() > 0 else 1.0
    fr.xmin, fr.xmax = 0.0, float(len(labels))
    fr.title(title)
    xticks = [(i + 0.5, str(lbl)) for i, lbl in enumerate(labels)]
    fr.axes("", ylabel, xticks=xticks)
    bw = 0.6
    for i, v in enumerate(vals):
        color = (colors[i] if colors else PALETTE[i % len(PALETTE)])
        x = fr.sx(i + (1 - bw) / 2)
        w = fr.sx(i + (1 + bw) / 2) - x
        y = fr.sy(max(v, 0.0))
        h = abs(fr.sy(0.0) - fr.sy(v))
        fr.parts.append(
            f"<rect x='{x:.1f}' y='{y:.1f}' width='{w:.1f}' height='{h:.1f}' fill='{color}'/>"
        )
        fr.parts.append(
            f"<text x='{x + w / 2:.1f}' y='{y - 4:.1f}' text-anchor='middle' {FONT} "
            f"font-size='11'>{_fmt(float(v))}</text>"
        )
    return fr.render()


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary for one box in a box chart."""

    label: str
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def from_samples(cls, label: str, samples: Sequence[float]) -> "BoxStats":
        xs = np.asarray(samples, dtype=float)
        if xs.size == 0:
            raise ValueError(f"no samples for box {label!r}")
        q1, med, q3 = np.percentile(xs, [25, 50, 75])
        return cls(label, float(xs.min()), float(q1), float(med), float(q3), float(xs.max()))


def box_chart(
    boxes: Sequence[BoxStats],
    title: str = "",
    ylabel: str = "",
    width: int = 640,
    height: int = 400,
) -> str:
    """Box-and-whisker chart (Fig. 4 style: one box per flow step)."""
    if not boxes:
        raise ValueError("box_chart requires at least one box")
    fr = _Frame(width=width, height=height)
    fr.xmin, fr.xmax = 0.0, float(len(boxes))
    fr.ymin = min(0.0, min(b.minimum for b in boxes))
    fr.ymax = max(b.maximum for b in boxes) * 1.08 or 1.0
    fr.title(title)
    xticks = [(i + 0.5, b.label) for i, b in enumerate(boxes)]
    fr.axes("", ylabel, xticks=xticks)
    bw = 0.5
    for i, b in enumerate(boxes):
        color = PALETTE[i % len(PALETTE)]
        cx = fr.sx(i + 0.5)
        x0 = fr.sx(i + (1 - bw) / 2)
        x1 = fr.sx(i + (1 + bw) / 2)
        # whiskers
        for lo, hi in ((b.minimum, b.q1), (b.q3, b.maximum)):
            fr.parts.append(
                f"<line x1='{cx:.1f}' y1='{fr.sy(lo):.1f}' x2='{cx:.1f}' "
                f"y2='{fr.sy(hi):.1f}' stroke='#444' stroke-width='1'/>"
            )
        for v in (b.minimum, b.maximum):
            fr.parts.append(
                f"<line x1='{cx - 8:.1f}' y1='{fr.sy(v):.1f}' x2='{cx + 8:.1f}' "
                f"y2='{fr.sy(v):.1f}' stroke='#444' stroke-width='1'/>"
            )
        # box
        fr.parts.append(
            f"<rect x='{x0:.1f}' y='{fr.sy(b.q3):.1f}' width='{x1 - x0:.1f}' "
            f"height='{fr.sy(b.q1) - fr.sy(b.q3):.1f}' fill='{color}' "
            f"fill-opacity='0.55' stroke='#444'/>"
        )
        # median
        fr.parts.append(
            f"<line x1='{x0:.1f}' y1='{fr.sy(b.median):.1f}' x2='{x1:.1f}' "
            f"y2='{fr.sy(b.median):.1f}' stroke='#000' stroke-width='2'/>"
        )
        fr.parts.append(
            f"<text x='{x1 + 4:.1f}' y='{fr.sy(b.median) + 4:.1f}' {FONT} "
            f"font-size='10'>{_fmt(b.median)}</text>"
        )
    return fr.render()


def image_figure(
    png_bytes: bytes,
    title: str = "",
    caption: str = "",
    width: int = 520,
) -> str:
    """Embed a PNG (e.g. a colormapped intensity image) in an SVG figure."""
    from .png import png_dimensions

    iw, ih = png_dimensions(png_bytes)
    scale = (width - 40) / iw
    disp_w, disp_h = iw * scale, ih * scale
    total_h = disp_h + (56 if title else 24) + (22 if caption else 0)
    b64 = base64.b64encode(png_bytes).decode("ascii")
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' height='{total_h:.0f}' "
        f"viewBox='0 0 {width} {total_h:.0f}'>",
        "<rect width='100%' height='100%' fill='white'/>",
    ]
    y = 16.0
    if title:
        parts.append(
            f"<text x='{width / 2}' y='22' text-anchor='middle' {FONT} "
            f"font-size='15' font-weight='bold'>{_esc(title)}</text>"
        )
        y = 40.0
    parts.append(
        f"<image x='20' y='{y:.0f}' width='{disp_w:.1f}' height='{disp_h:.1f}' "
        f"href='data:image/png;base64,{b64}'/>"
    )
    if caption:
        parts.append(
            f"<text x='{width / 2}' y='{y + disp_h + 16:.0f}' text-anchor='middle' "
            f"{FONT} font-size='11' fill='#555'>{_esc(caption)}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)
