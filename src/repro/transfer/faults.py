"""Fault injection for the transfer service.

Globus Transfer's headline feature is *reliability*: checksums per file
and automatic retry of faulted transfers.  To exercise those code paths
(and to let the fault-tolerance example show recovery), the service
consults a :class:`FaultPlan` that can inject two failure modes:

* **transient faults** — the data channel drops mid-transfer; the service
  retries from the start of the file (the conservative model);
* **corruption** — all bytes arrive but the destination checksum
  mismatches; the service discards and retransmits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TransferError

__all__ = ["FaultPlan", "NO_FAULTS"]


@dataclass(frozen=True)
class FaultPlan:
    """Per-attempt fault probabilities (independent draws)."""

    transient_prob: float = 0.0
    corrupt_prob: float = 0.0
    max_attempts: int = 4

    def __post_init__(self) -> None:
        for name in ("transient_prob", "corrupt_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise TransferError(f"{name} must be a probability, got {v}")
        total = self.transient_prob + self.corrupt_prob
        if total > 1.0:
            # The single-uniform draw partitions [0, 1); a sum above 1
            # would silently truncate the corrupt region rather than
            # model what the caller asked for.
            raise TransferError(
                "transient_prob + corrupt_prob must not exceed 1, got "
                f"{self.transient_prob} + {self.corrupt_prob} = {total}"
            )
        if self.max_attempts < 1:
            raise TransferError("max_attempts must be >= 1")

    def draw(self, rng: np.random.Generator) -> "str | None":
        """``None`` (clean), ``"transient"`` or ``"corrupt"`` for one attempt."""
        u = rng.random()
        if u < self.transient_prob:
            return "transient"
        if u < self.transient_prob + self.corrupt_prob:
            return "corrupt"
        return None


NO_FAULTS = FaultPlan()
