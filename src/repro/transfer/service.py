"""The transfer service: a cloud-hosted, polled, authenticated mover.

Mirrors the Globus Transfer model the paper relies on (Sec. 2.2.1):

* clients **submit** a task (authenticated, ACL-checked) and receive a
  task id;
* the service drives the data movement through endpoint agents — here,
  streams on the :class:`~repro.net.NetworkFabric` — with per-file
  checksum verification and automatic retry;
* clients **poll** task status by id (which is exactly what the flow
  executor's exponential-backoff loop does).

Timing model: a submission round-trip latency (cloud API), per-endpoint
startup handshakes, fair-share network time scaled by endpoint
efficiency, and a checksum-verification time proportional to file size.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

import numpy as np

from ..auth import ScopeAuthorizer, Token
from ..auth.identity import TRANSFER_SCOPE, AuthClient
from ..errors import EndpointError, TransferError
from ..net import NetworkFabric
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from ..rng import RngRegistry, lognormal_from_median
from ..sim import Environment, Event
from .endpoint import TransferEndpoint
from .faults import NO_FAULTS, FaultPlan
from .task import TaskStatus, TransferTask

__all__ = ["TransferService"]


class TransferService:
    """Authenticated, fault-tolerant file mover over the network fabric.

    Parameters
    ----------
    env, fabric:
        Simulation environment and the shared network.
    auth:
        Identity provider used to validate tokens.
    rngs:
        Random streams for latency jitter and fault draws.
    api_latency_s:
        Median round-trip of one service API call (submit or poll).
    checksum_bytes_per_s:
        Verification throughput used to charge checksum time.
    fault_plan:
        Fault-injection plan applied to every attempt.
    """

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        auth: AuthClient,
        rngs: Optional[RngRegistry] = None,
        api_latency_s: float = 0.25,
        latency_sigma: float = 0.3,
        throughput_sigma: float = 0.0,
        checksum_bytes_per_s: float = 400e6,
        fault_plan: FaultPlan = NO_FAULTS,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.authorizer = ScopeAuthorizer(auth, TRANSFER_SCOPE)
        self.rngs = rngs or RngRegistry(seed=0)
        self.api_latency_s = float(api_latency_s)
        self.latency_sigma = float(latency_sigma)
        self.throughput_sigma = float(throughput_sigma)
        self.checksum_bytes_per_s = float(checksum_bytes_per_s)
        self.fault_plan = fault_plan
        #: Chaos hook: a duck-typed outage gate (see
        #: :class:`repro.chaos.ServiceGate`).  ``None`` means always up.
        self.gate: Any = None
        #: Integrity hook: a duck-typed
        #: :class:`~repro.integrity.IntegrityLedger`.  When set, every
        #: successful transfer re-verifies the at-rest payload digest
        #: (failing fast on bit rot — the recomputed checksum can never
        #: match) and attests the ``transferred`` chain hop.
        self.ledger: Any = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        m = metrics if metrics is not None else NULL_METRICS
        self._m_submitted = m.counter("transfer.tasks_submitted")
        self._m_succeeded = m.counter("transfer.tasks_succeeded")
        self._m_failed = m.counter("transfer.tasks_failed")
        self._m_retries = m.counter("transfer.retries")
        self._m_bytes = m.counter("transfer.bytes_moved")
        self._m_duration = m.histogram("transfer.task_duration_s")
        self._endpoints: dict[str, TransferEndpoint] = {}
        self._tasks: dict[str, TransferTask] = {}
        self._task_events: dict[str, Event] = {}
        self._ids = itertools.count(1)

    # -- endpoint registry ---------------------------------------------------
    def register_endpoint(self, endpoint: TransferEndpoint) -> None:
        if endpoint.name in self._endpoints:
            raise EndpointError(f"endpoint already registered: {endpoint.name!r}")
        self._endpoints[endpoint.name] = endpoint

    def endpoint(self, name: str) -> TransferEndpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise EndpointError(f"unknown endpoint: {name!r}") from None

    # -- client API -----------------------------------------------------------
    def check_available(self) -> None:
        """Raise :class:`~repro.errors.ServiceUnavailable` when a chaos
        gate has the cloud API inside an outage window.  Only the control
        plane is gated — data already moving on the fabric keeps moving."""
        if self.gate is not None:
            self.gate.check(self.env.now)

    def submit(
        self,
        token: Token,
        source_endpoint: str,
        source_path: str,
        dest_endpoint: str,
        dest_path: str,
    ) -> str:
        """Submit a transfer; returns the task id immediately.

        Authentication, ACL checks, and source existence are validated at
        submission (as Globus does); the data movement runs
        asynchronously.
        """
        self.check_available()
        identity = self.authorizer.authorize(token, self.env.now)
        src = self.endpoint(source_endpoint)
        dst = self.endpoint(dest_endpoint)
        src.policy.check_read(identity, what=f"endpoint {src.name}")
        dst.policy.check_write(identity, what=f"endpoint {dst.name}")
        source_file = src.vfs.stat(source_path)  # raises if missing

        task = TransferTask(
            task_id=f"xfer-{next(self._ids):06d}",
            owner=identity.username,
            source_endpoint=source_endpoint,
            source_path=source_path,
            dest_endpoint=dest_endpoint,
            dest_path=dest_path,
            nbytes=source_file.size_bytes,
            requested_at=self.env.now,
        )
        self._tasks[task.task_id] = task
        self._task_events[task.task_id] = self.env.event()
        # The task span opens at ``requested_at`` and closes exactly at
        # ``completed_at`` so its duration equals ``task.duration`` — the
        # provider-reported active time the Fig. 4 gate checks against.
        self._m_submitted.inc()
        span = (
            self.tracer.start("transfer.task")
            .set("action_id", task.task_id)
            .set("src", source_endpoint)
            .set("dst", dest_endpoint)
            .set("bytes", float(source_file.size_bytes))
        )
        self.env.process(self._execute(task, src, dst, span))
        return task.task_id

    def get_task(self, token: Token, task_id: str) -> dict:
        """Poll a task's status snapshot (authenticated)."""
        self.authorizer.authorize(token, self.env.now)
        try:
            return self._tasks[task_id].snapshot()
        except KeyError:
            raise TransferError(f"unknown task: {task_id!r}") from None

    def task_record(self, task_id: str) -> TransferTask:
        """Internal/inspection access to the full task record."""
        self.check_available()
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TransferError(f"unknown task: {task_id!r}") from None

    def wait(self, task_id: str) -> Event:
        """DES event firing when the task reaches a terminal state.

        (Test/diagnostic convenience — production clients poll, as the
        flow executor does.)
        """
        try:
            return self._task_events[task_id]
        except KeyError:
            raise TransferError(f"unknown task: {task_id!r}") from None

    # -- execution -----------------------------------------------------------
    def _jitter(self, median: float) -> float:
        rng = self.rngs.stream("transfer.latency")
        return lognormal_from_median(rng, median, self.latency_sigma)

    def _execute(
        self,
        task: TransferTask,
        src: TransferEndpoint,
        dst: TransferEndpoint,
        span: Any = None,
    ) -> Generator:
        if span is None:
            span = NULL_TRACER.start("transfer.task")
        if self.ledger is not None:
            span.set("path", task.source_path)
        rng = self.rngs.stream("transfer.faults")
        # Submission processing in the cloud service.
        yield self.env.timeout(self._jitter(self.api_latency_s))
        task.status = TaskStatus.ACTIVE
        task.started_at = self.env.now
        try:
            source_file = src.vfs.stat(task.source_path)
        except EndpointError as exc:
            # The source vanished between submission and execution start
            # (chaos node kill, watcher replay race).  Terminate the task
            # instead of letting the process die with it stuck ACTIVE.
            task.status = TaskStatus.FAILED
            task.completed_at = self.env.now
            task.error = f"source disappeared before transfer: {exc}"
            span.set("status", "FAILED").set("attempts", task.attempts).finish()
            self._m_failed.inc()
            self._m_duration.observe(task.duration)
            self._task_events[task.task_id].succeed(task)
            return

        while True:
            task.attempts += 1
            attempt_span = self.tracer.start("transfer.attempt", span).set(
                "attempt", task.attempts
            )
            try:
                # Endpoint handshakes (control channel setup on both sides).
                startup = src.startup_latency_s + dst.startup_latency_s
                if startup > 0:
                    yield self.env.timeout(self._jitter(startup))

                fault = self.fault_plan.draw(rng)
                nbytes = source_file.size_bytes
                efficiency = min(
                    src.effective_efficiency(nbytes), dst.effective_efficiency(nbytes)
                )
                # Per-task throughput jitter (disk contention, TCP luck).
                jitter = lognormal_from_median(
                    self.rngs.stream("transfer.throughput"), 1.0, self.throughput_sigma
                )
                efficiency = float(min(1.0, max(1e-6, efficiency * jitter)))

                if fault == "transient":
                    # Channel drops partway: burn a random fraction of the
                    # transfer time, then retry.
                    frac = float(rng.uniform(0.05, 0.9))
                    partial = self.fabric.transfer(
                        src.host, dst.host, source_file.size_bytes * frac, efficiency
                    )
                    yield partial
                    task.faults.append(f"transient fault on attempt {task.attempts}")
                    attempt_span.set("outcome", "transient")
                else:
                    done = self.fabric.transfer(
                        src.host, dst.host, source_file.size_bytes, efficiency
                    )
                    yield done
                    # Checksum verification at the destination.
                    if self.checksum_bytes_per_s > 0 and source_file.size_bytes > 0:
                        cksum_span = self.tracer.start(
                            "transfer.checksum", attempt_span
                        )
                        try:
                            yield self.env.timeout(
                                source_file.size_bytes / self.checksum_bytes_per_s
                            )
                        finally:
                            cksum_span.finish()
                    if fault == "corrupt":
                        task.faults.append(
                            f"checksum mismatch on attempt {task.attempts}"
                        )
                        attempt_span.set("outcome", "corrupt")
                        if self.ledger is not None:
                            self.ledger.detect(
                                "file", "wire", path=task.source_path
                            )
                    else:
                        if self.ledger is not None:
                            # Re-read the source record: at-rest rot may
                            # have landed since submission or a retry.
                            try:
                                source_file = src.vfs.stat(task.source_path)
                            except EndpointError:
                                pass  # keep the submission-time snapshot
                            if not source_file.intact:
                                # The recomputed checksum can never match
                                # the declared one — retrying is pointless.
                                task.faults.append(
                                    f"at-rest digest mismatch on attempt "
                                    f"{task.attempts}"
                                )
                                task.status = TaskStatus.FAILED
                                task.completed_at = self.env.now
                                task.error = (
                                    "integrity: source payload digest "
                                    f"{source_file.payload_digest} does not "
                                    f"match declared {source_file.checksum}"
                                )
                                attempt_span.set("outcome", "integrity")
                                span.set("status", "FAILED").set(
                                    "attempts", task.attempts
                                ).finish()
                                self.ledger.detect(
                                    "file", "at_rest", path=task.source_path
                                )
                                self._m_failed.inc()
                                self._m_duration.observe(task.duration)
                                self._task_events[task.task_id].succeed(task)
                                return
                        dst.vfs.copy_in(source_file, task.dest_path, now=self.env.now)
                        if self.ledger is not None:
                            if any("checksum mismatch" in f for f in task.faults):
                                self.ledger.repair(
                                    "file", "wire", path=task.source_path
                                )
                            self.ledger.attest(
                                task.source_path,
                                "transferred",
                                digest=source_file.payload_digest,
                                at=self.env.now,
                                by="transfer",
                            )
                        task.status = TaskStatus.SUCCEEDED
                        task.completed_at = self.env.now
                        attempt_span.set("outcome", "succeeded")
                        span.set("status", "SUCCEEDED").set(
                            "attempts", task.attempts
                        ).finish()
                        self._m_succeeded.inc()
                        self._m_bytes.inc(float(source_file.size_bytes))
                        self._m_duration.observe(task.duration)
                        self._task_events[task.task_id].succeed(task)
                        return
            finally:
                attempt_span.finish()

            self._m_retries.inc()
            if task.attempts >= self.fault_plan.max_attempts:
                task.status = TaskStatus.FAILED
                task.completed_at = self.env.now
                task.error = (
                    f"exhausted {task.attempts} attempts: {task.faults[-1]}"
                )
                span.set("status", "FAILED").set("attempts", task.attempts).finish()
                self._m_failed.inc()
                self._m_duration.observe(task.duration)
                self._task_events[task.task_id].succeed(task)
                return
