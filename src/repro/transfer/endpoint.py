"""Globus-Connect-style transfer endpoints.

An endpoint binds a storage namespace (:class:`~repro.storage.VirtualFS`)
to a network host in the topology and carries an access policy.  The
testbed defines one on the PicoProbe user machine and one on ALCF Eagle,
mirroring Sec. 2.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..auth import AccessPolicy
from ..storage import VirtualFS

__all__ = ["TransferEndpoint"]


@dataclass
class TransferEndpoint:
    """A named Globus-Connect-style endpoint.

    Parameters
    ----------
    name:
        Endpoint display name / id (e.g. ``"picoprobe-user"``).
    host:
        Topology node this endpoint's storage is attached to.
    vfs:
        The storage namespace served by this endpoint.
    policy:
        Read/write ACL enforced by the transfer service.
    efficiency:
        Asymptotic fraction of the fair-share network rate this
        endpoint's transfer stack achieves (protocol, TLS, and
        filesystem overhead).  The paper's effective per-task throughput
        (~7-11 MB/s on a 1 Gbps switch) comes from this factor; see
        ``testbed/calibration.py``.
    ramp_bytes:
        TCP/stream ramp-up scale: a transfer of ``n`` bytes achieves
        ``efficiency * n / (n + ramp_bytes)`` of its fair share, so
        small files see proportionally lower throughput (as the paper's
        91 MB files do relative to its 1200 MB files).
    startup_latency_s:
        Per-task handshake time before bytes flow (control channel,
        endpoint activation).
    """

    name: str
    host: str
    vfs: VirtualFS
    policy: AccessPolicy = field(default_factory=AccessPolicy)
    efficiency: float = 1.0
    ramp_bytes: float = 0.0
    startup_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.ramp_bytes < 0:
            raise ValueError("ramp_bytes must be >= 0")
        if self.startup_latency_s < 0:
            raise ValueError("startup latency must be >= 0")

    def effective_efficiency(self, nbytes: float) -> float:
        """Size-dependent achieved fraction of the fair share."""
        if self.ramp_bytes <= 0 or nbytes <= 0:
            return self.efficiency
        return self.efficiency * nbytes / (nbytes + self.ramp_bytes)
