"""Globus-Transfer-style data movement substrate.

Authenticated endpoints over the network fabric with checksums,
automatic retry, and a polled task API — the "Data Transfer" step of
every flow (Sec. 2.2.1).
"""

from .endpoint import TransferEndpoint
from .faults import NO_FAULTS, FaultPlan
from .service import TransferService
from .task import TaskStatus, TransferTask

__all__ = [
    "TransferEndpoint",
    "TransferService",
    "TransferTask",
    "TaskStatus",
    "FaultPlan",
    "NO_FAULTS",
]
