"""Transfer task records and lifecycle states."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = ["TaskStatus", "TransferTask"]


class TaskStatus(str, Enum):
    """Globus-Transfer-style task states."""

    QUEUED = "QUEUED"
    ACTIVE = "ACTIVE"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        return self in (TaskStatus.SUCCEEDED, TaskStatus.FAILED)


@dataclass
class TransferTask:
    """One submitted transfer and its observable history."""

    task_id: str
    owner: str
    source_endpoint: str
    source_path: str
    dest_endpoint: str
    dest_path: str
    nbytes: float
    requested_at: float
    status: TaskStatus = TaskStatus.QUEUED
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    attempts: int = 0
    faults: list[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def duration(self) -> Optional[float]:
        """Wall time from request to terminal state (None while active)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.requested_at

    @property
    def effective_rate(self) -> Optional[float]:
        """Achieved bytes/s over the task's whole lifetime."""
        d = self.duration
        if not d:
            return None
        return self.nbytes / d

    def snapshot(self) -> dict:
        """Plain-dict view, as a polling API would return."""
        return {
            "task_id": self.task_id,
            "status": self.status.value,
            "owner": self.owner,
            "source": f"{self.source_endpoint}:{self.source_path}",
            "destination": f"{self.dest_endpoint}:{self.dest_path}",
            "bytes": self.nbytes,
            "attempts": self.attempts,
            "faults": list(self.faults),
            "error": self.error,
        }
