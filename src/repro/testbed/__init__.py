"""The Argonne-like testbed: one constructor wiring every substrate
together under a calibrated parameter set (see ``calibration.py`` for
how each number is derived from the paper's own arithmetic)."""

from .argonne import (
    EAGLE_EP,
    PICOPROBE_EP,
    POLARIS_EP,
    PORTAL_INDEX,
    Testbed,
    build_testbed,
)
from .calibration import DEFAULT_CALIBRATION, Calibration

__all__ = [
    "Testbed",
    "build_testbed",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "PICOPROBE_EP",
    "EAGLE_EP",
    "POLARIS_EP",
    "PORTAL_INDEX",
]
